//! Kill-a-node chaos for the cluster front-end: a seeded client fleet
//! against a 3-backend ring behind [`Router`], with one backend killed
//! and one added mid-run, under deterministic fault injection on the
//! router's front connections and snapshot shipping.
//!
//! The contract under test lifts `chaos.rs` one layer out: where that
//! suite kills and restarts a single server, this one keeps the fleet's
//! *topology* in motion. Each client speaks the ordinary wire protocol
//! to the router (never to a backend) while the harness, at ~1/3 of
//! total progress, **kills the home backend of the first workload**
//! (accept loop, worker pool, every live session on it) without telling
//! the router — death must be *detected* (retry budget exhausted),
//! the ring shrunk, and every affected session re-homed with its cursor
//! resumed from the last acknowledged token. At ~2/3 progress a fourth
//! backend **joins**: [`Router::add_backend`] ships the snapshots the
//! grown ring re-homes onto it *before* its server process starts, so
//! the joiner warms from disk, and live sessions whose fingerprint now
//! homes there migrate on their next request.
//!
//! The reference is the same as `chaos.rs`: every client's
//! canonicalized outputs must be **bit-identical** to a fault-free
//! serial replay of its own op log against a single direct
//! `nfa_tool serve` node with the same engine configuration — routing,
//! failover, migration, shipping, and injected front-connection faults
//! may change *how* an answer is produced, never the bytes.
//!
//! Sizing knobs for CI smoke runs (`scripts/ci.sh`):
//! `LSC_ROUTER_CHAOS_OPS` (ops per client, default 18),
//! `LSC_ROUTER_CHAOS_CLIENTS` (fleet size, default 4),
//! `LSC_ROUTER_CHAOS_SEEDS` (comma-separated master seeds, default one).

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use lsc_automata::regex::Regex;
use lsc_automata::Alphabet;
use lsc_core::engine::{EngineConfig, PreparedInstance, RouterConfig, ShardMap};
use lsc_core::fpras::FprasParams;
use lsc_core::serve::json::Json;
use lsc_core::serve::protocol::InstanceSpec;
use lsc_core::serve::{
    BackendSpec, Client, ClientConfig, ClientError, FaultConfig, FaultPlan, RouteConfig, Router,
    ServeConfig, Server,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---- configuration ----

const BACKENDS: usize = 3;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn master_seeds() -> Vec<u64> {
    match std::env::var("LSC_ROUTER_CHAOS_SEEDS") {
        Ok(list) => list
            .split(',')
            .filter_map(|v| {
                let v = v.trim();
                match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => v.parse().ok(),
                }
            })
            .collect(),
        Err(_) => vec![0x00C1_05E7],
    }
}

/// The engine configuration every backend and the serial reference
/// share: FPRAS forced where determinization would win, quick sketch
/// parameters, a fixed engine seed — answers are a pure function of
/// this and the request, whichever node produces them.
fn engine_config() -> EngineConfig {
    EngineConfig {
        router: RouterConfig {
            determinization_cap: 0,
            fpras: FprasParams::quick(),
            ..RouterConfig::default()
        },
        seed: 0x57E5_5BEEF,
        ..EngineConfig::default()
    }
}

fn backend_config(snapshot_dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        engine: engine_config(),
        workers: 2,
        queue_depth: 64,
        retry_after: Duration::from_millis(2),
        snapshot_dir,
        ..ServeConfig::default()
    }
}

fn client_config(master_seed: u64, client: usize) -> ClientConfig {
    ClientConfig {
        seed: master_seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        max_attempts: 12,
        backoff_base: Duration::from_millis(4),
        backoff_cap: Duration::from_millis(250),
        io_timeout: Some(Duration::from_secs(10)),
    }
}

/// The instance zoo: two unambiguous routes, two ambiguous (FPRAS under
/// cap 0; `count_exact` on these answers `not-unambiguous`, which is
/// part of the replayed surface).
const WORKLOADS: [(&str, usize); 4] = [
    ("(0|1)*101(0|1)*", 9),
    ("(0|1)*11", 8),
    ("0*1(0|1)*0", 8),
    ("(0|1)*00(0|1)*", 7),
];

const ALIASES_PER_CLIENT: usize = 2;

/// The ring shard a workload's fingerprint homes on, replicated exactly
/// as the router computes it (`ShardMap` over `BACKENDS` shards with
/// the default replica count) — so the harness can kill the one backend
/// guaranteed to hold live sessions.
fn home_of(pattern: &str, length: usize) -> usize {
    let alphabet = Alphabet::from_chars(&['0', '1']);
    let nfa = Regex::parse(pattern, &alphabet)
        .expect("workload regex")
        .compile();
    let fingerprint = PreparedInstance::instance_fingerprint(&nfa, length);
    ShardMap::new(BACKENDS, RouteConfig::default().ring_replicas).shard_for(fingerprint)
}

// ---- the op log ----

#[derive(Clone, Copy, Debug)]
enum ChaosOp {
    Count {
        alias: usize,
    },
    CountExact {
        alias: usize,
    },
    Page {
        alias: usize,
        size: usize,
    },
    Sample {
        alias: usize,
        count: usize,
        seed: u64,
    },
}

/// One client's seeded op log — same shape as `chaos.rs`: pages need no
/// cross-op bookkeeping because the client's cursor makes page `k` a
/// pure function of the pages before it in this same log.
fn op_log(master_seed: u64, client: usize, ops: usize) -> Vec<ChaosOp> {
    let mut rng = StdRng::seed_from_u64(master_seed ^ 0x0D0_EE7 ^ ((client as u64) << 17));
    (0..ops)
        .map(|slot| {
            let alias = rng.gen_range(0..ALIASES_PER_CLIENT);
            match rng.gen_range(0..6u32) {
                0 | 1 => ChaosOp::Count { alias },
                2 => ChaosOp::CountExact { alias },
                3 | 4 => ChaosOp::Page {
                    alias,
                    size: 1 + rng.gen_range(0..5usize),
                },
                _ => ChaosOp::Sample {
                    alias,
                    count: 1 + rng.gen_range(0..4usize),
                    seed: (slot as u64).wrapping_mul(7919).wrapping_add(client as u64),
                },
            }
        })
        .collect()
}

// ---- execution ----

fn alias_name(alias: usize) -> String {
    format!("w{alias}")
}

fn workload_for(client: usize, alias: usize) -> (&'static str, usize) {
    WORKLOADS[(client + alias) % WORKLOADS.len()]
}

fn prepare_aliases(client: &mut Client, who: usize) {
    for alias in 0..ALIASES_PER_CLIENT {
        let (pattern, length) = workload_for(who, alias);
        client
            .prepare(
                alias_name(alias),
                InstanceSpec::Regex {
                    pattern: pattern.to_string(),
                    alphabet: None,
                },
                length,
            )
            .expect("prepare rides the retry machinery");
    }
}

fn words_of(value: &Json) -> String {
    value
        .get("words")
        .and_then(Json::as_arr)
        .expect("words array")
        .iter()
        .map(|w| w.as_str().expect("word string"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Executes one op to its canonical output string — what the
/// bit-identity assertion compares (the same rendering as `chaos.rs`).
fn run_op(client: &mut Client, op: &ChaosOp) -> String {
    let canonical = |result: Result<Json, ClientError>, render: fn(&Json) -> String| match result {
        Ok(value) => render(&value),
        Err(ClientError::Server { code, .. }) => format!("err={code}"),
        Err(e) => panic!("retry machinery gave up: {e}"),
    };
    match *op {
        ChaosOp::Count { alias } => canonical(client.count(&alias_name(alias)), |v| {
            format!(
                "count route={} exact={} estimate={} count={:?}",
                v.get("route").and_then(Json::as_str).expect("route"),
                v.get("exact") == Some(&Json::Bool(true)),
                v.get("estimate").and_then(Json::as_str).expect("estimate"),
                v.get("count").and_then(Json::as_str),
            )
        }),
        ChaosOp::CountExact { alias } => canonical(client.count_exact(&alias_name(alias)), |v| {
            format!(
                "exact {}",
                v.get("count").and_then(Json::as_str).expect("count")
            )
        }),
        ChaosOp::Page { alias, size } => {
            canonical(client.enumerate_page(&alias_name(alias), Some(size)), |v| {
                format!(
                    "page rank={} done={} [{}]",
                    v.get("rank").and_then(Json::as_u64).expect("rank"),
                    v.get("done") == Some(&Json::Bool(true)),
                    words_of(v)
                )
            })
        }
        ChaosOp::Sample { alias, count, seed } => {
            canonical(client.sample(&alias_name(alias), count, seed), |v| {
                format!("gen [{}]", words_of(v))
            })
        }
    }
}

/// One client's full run against `addr` (the router in the chaos round,
/// a direct node in the reference).
fn run_client(
    addr: &str,
    config: ClientConfig,
    who: usize,
    log: &[ChaosOp],
    progress: &AtomicUsize,
) -> Vec<String> {
    let mut client = Client::new(addr, config);
    prepare_aliases(&mut client, who);
    let outputs = log
        .iter()
        .map(|op| {
            let out = run_op(&mut client, op);
            progress.fetch_add(1, Ordering::SeqCst);
            out
        })
        .collect();
    client.bye();
    outputs
}

/// The fault-free single-node serial reference: each client's log
/// replayed alone, in order, against one direct fault-free server with
/// the same engine configuration — no router anywhere.
fn serial_reference(master_seed: u64, clients: usize, ops: usize) -> Vec<Vec<String>> {
    let server = Server::new(backend_config(None)).unwrap();
    let mut tcp = server.spawn_tcp("127.0.0.1:0").unwrap();
    let addr = tcp.addr().to_string();
    let progress = AtomicUsize::new(0);
    let expected = (0..clients)
        .map(|c| {
            let log = op_log(master_seed, c, ops);
            run_client(&addr, client_config(master_seed, c), c, &log, &progress)
        })
        .collect();
    tcp.shutdown();
    server.shutdown();
    expected
}

/// One chaos round at one master seed: the routed fleet with a kill and
/// a join mid-run, compared against the fault-free single-node replay.
fn chaos_round(master_seed: u64, clients: usize, ops: usize, expected: &[Vec<String>]) {
    let root = std::env::temp_dir().join(format!(
        "lsc-router-chaos-{master_seed:x}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&root).ok();

    // Three backends, each with its own snapshot directory (the router
    // ships compiled instances between them).
    let mut nodes: Vec<Option<(Server, lsc_core::serve::TcpServerHandle)>> = Vec::new();
    let mut specs = Vec::new();
    for b in 0..BACKENDS {
        let dir = root.join(format!("b{b}"));
        let server = Server::new(backend_config(Some(dir.clone()))).unwrap();
        let tcp = server.spawn_tcp("127.0.0.1:0").unwrap();
        specs.push(BackendSpec {
            addr: tcp.addr().to_string(),
            snapshot_dir: Some(dir),
        });
        nodes.push(Some((server, tcp)));
    }

    // Front-connection and shipping faults live at the router; the
    // backends themselves run clean (chaos.rs owns the faulted-server
    // surface) so that every recovery observed here is the *router's*.
    let plan = FaultPlan::new(FaultConfig::chaos(master_seed));
    let router = Router::new(RouteConfig {
        backends: specs,
        client: ClientConfig {
            seed: master_seed,
            max_attempts: 6,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            io_timeout: Some(Duration::from_secs(5)),
        },
        faults: Some(plan.clone()),
        ..RouteConfig::default()
    })
    .unwrap();
    let mut front = router.spawn_tcp("127.0.0.1:0").unwrap();
    let addr = front.addr().to_string();

    let logs: Vec<Vec<ChaosOp>> = (0..clients).map(|c| op_log(master_seed, c, ops)).collect();
    let total = clients * ops;
    let progress = AtomicUsize::new(0);
    // The backend guaranteed to hold live sessions: the home of the
    // first workload (client 0's alias 0 pages on it all run long).
    let victim = home_of(WORKLOADS[0].0, WORKLOADS[0].1);

    let results: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let log = &logs[c];
                let progress = &progress;
                let config = client_config(master_seed, c);
                scope.spawn(move || run_client(&addr, config, c, log, progress))
            })
            .collect();

        let wait_for = |point: usize| {
            let deadline = Instant::now() + Duration::from_secs(300);
            while progress.load(Ordering::SeqCst) < point && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        // ~1/3: kill the victim backend outright — no `remove_backend`
        // courtesy call. The router must *detect* the death, shrink the
        // ring, and re-home every session the victim held, resuming
        // cursors from their last acknowledged tokens.
        wait_for(total / 3);
        let (server, mut tcp) = nodes[victim].take().expect("victim still running");
        tcp.shutdown();
        server.shutdown();

        // ~2/3: grow the ring. The joiner's address is reserved first,
        // `add_backend` ships the snapshots the grown ring re-homes onto
        // it, and only *then* does its server start — warming from the
        // shipped artifacts rather than recompiling.
        wait_for(2 * total / 3);
        let joiner_dir = root.join("b3");
        let joiner_addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().to_string()
        };
        router
            .add_backend(BackendSpec {
                addr: joiner_addr.clone(),
                snapshot_dir: Some(joiner_dir.clone()),
            })
            .unwrap();
        let joiner = Server::new(backend_config(Some(joiner_dir))).unwrap();
        let tcp = {
            let mut attempts = 0;
            loop {
                match joiner.spawn_tcp(&joiner_addr) {
                    Ok(tcp) => break tcp,
                    Err(e) => {
                        attempts += 1;
                        assert!(attempts < 1000, "could not bind joiner {joiner_addr}: {e}");
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
        };
        nodes.push(Some((joiner, tcp)));

        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The headline pin: every client's stream is bit-identical to its
    // fault-free single-node serial replay.
    for (c, (got, want)) in results.iter().zip(expected).enumerate() {
        for (slot, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                g, w,
                "seed {master_seed:#x}: client {c} op {slot} ({:?}) drifted",
                logs[c][slot]
            );
        }
        assert_eq!(got.len(), want.len(), "client {c} dropped ops");
    }

    // The topology changes actually happened and actually bit.
    let stats = router.stats();
    assert_eq!(
        stats.backends_lost, 1,
        "seed {master_seed:#x}: the killed backend was never declared dead: {stats:?}"
    );
    assert!(
        stats.failovers >= 1,
        "seed {master_seed:#x}: no session ever migrated off the dead backend: {stats:?}"
    );
    assert!(
        stats.snapshots_shipped >= 1,
        "seed {master_seed:#x}: no snapshot was ever shipped: {stats:?}"
    );
    let faults = plan.stats();
    assert!(
        faults.total() > 0,
        "seed {master_seed:#x}: the fault plan never fired: {faults:?}"
    );

    front.shutdown();
    for node in nodes.into_iter().flatten() {
        let (server, mut tcp) = node;
        tcp.shutdown();
        server.shutdown();
    }
    std::fs::remove_dir_all(&root).ok();
}

// ---- the suite ----

/// The headline routed-chaos pin, across every configured master seed —
/// one fault-free single-node serial reference per seed.
#[test]
fn routed_fleet_survives_kill_and_join_bit_identically() {
    let ops = env_usize("LSC_ROUTER_CHAOS_OPS", 18);
    let clients = env_usize("LSC_ROUTER_CHAOS_CLIENTS", 4);
    for seed in master_seeds() {
        let expected = serial_reference(seed, clients, ops);
        chaos_round(seed, clients, ops, &expected);
    }
}

/// Harness sanity: the victim pick is the router's own ring arithmetic
/// (the test and `Router` must agree on who homes the first workload),
/// and op logs are deterministic per (seed, client).
#[test]
fn victim_selection_and_op_logs_are_deterministic() {
    let victim = home_of(WORKLOADS[0].0, WORKLOADS[0].1);
    assert!(victim < BACKENDS);
    assert_eq!(victim, home_of(WORKLOADS[0].0, WORKLOADS[0].1));
    let a = op_log(7, 0, 40);
    let b = op_log(7, 0, 40);
    assert_eq!(
        a.iter().map(|op| format!("{op:?}")).collect::<Vec<_>>(),
        b.iter().map(|op| format!("{op:?}")).collect::<Vec<_>>(),
    );
}
