//! Crash-safety suite for the snapshot store and the client backoff
//! schedule.
//!
//! The recovery contract under test (`docs/ARCHITECTURE.md` §7): a crash
//! at *any* byte boundary of a snapshot write leaves a store that, once
//! reopened, serves **exactly the prefix of fully published snapshots** —
//! interrupted temp files are swept, torn or corrupted `*.snap` files are
//! quarantined (renamed `*.snap.quarantined.N`, kept for inspection, never
//! served), and the affected instance costs one re-preparation, never a
//! wrong answer. The crash-point test below does not sample: it plants
//! the debris of a crash after *every* prefix length of a snapshot file,
//! under both the temp name and the published name.
//!
//! The backoff property test pins the client retry schedule
//! ([`backoff_delay`]): deterministic per seed, monotone nondecreasing in
//! the attempt number, never above the cap, never below `min(base, cap)`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use lsc_automata::families::blowup_nfa;
use lsc_core::engine::{Engine, PreparedInstance, SnapshotStore};
use lsc_core::serve::client::backoff_delay;
use lsc_core::serve::json::{self, Json};
use lsc_core::serve::{ServeConfig, Server};
use proptest::prelude::*;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsc-crash-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A small instance with its super-linear artifacts materialized, so the
/// snapshot payload exercises every section of the codec.
fn instance(chains: usize, length: usize) -> Arc<PreparedInstance> {
    let inst = Arc::new(PreparedInstance::new(blowup_nfa(chains), length));
    inst.count_exact().unwrap();
    inst
}

/// The quarantine name the sweep renames a given snapshot to. Numbers
/// start at the first free `N`; every check here deletes the artifact
/// before the next corruption, so the sweep always lands on `.1`.
fn quarantine_path(snap: &std::path::Path) -> PathBuf {
    PathBuf::from(format!("{}.quarantined.1", snap.display()))
}

/// The headline pin: crash debris at **every byte boundary** of a
/// snapshot write recovers to exactly the published prefix.
///
/// Instance A is fully published. For every `k` in `0..=len(B)` the test
/// plants the two kinds of debris a crash at byte `k` can leave:
///
/// * `B`'s first `k` bytes under the **temp** name (the writer died
///   before the rename) — the sweep deletes it, the warm pass serves
///   exactly `{A}`;
/// * `B`'s first `k` bytes under the **published** name (torn after an
///   unclean publish) — quarantined for every `k < len(B)`, and loaded
///   only at `k == len(B)`, the one boundary where the file is whole.
#[test]
fn a_crash_at_every_byte_boundary_recovers_to_the_published_prefix() {
    let dir = temp_dir("points");
    let a = instance(2, 5);
    let b = instance(3, 6);
    let store = SnapshotStore::open(&dir).unwrap();
    store.save(&a).unwrap();
    // Obtain B's exact on-disk bytes by publishing it once and unpublishing.
    store.save(&b).unwrap();
    let b_path = store.path_for(b.fingerprint());
    let b_bytes = std::fs::read(&b_path).unwrap();
    std::fs::remove_file(&b_path).unwrap();
    let b_tmp = dir.join(format!("{:016x}.tmp", b.fingerprint()));
    drop(store);

    for k in 0..=b_bytes.len() {
        // Crash mid-temp-file: the rename never happened, so no prefix of
        // B — not even the complete bytes — was ever published.
        std::fs::write(&b_tmp, &b_bytes[..k]).unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        let sweep = store.sweep_report();
        assert_eq!(
            (sweep.tmp_removed, sweep.quarantined),
            (1, 0),
            "byte {k}: tmp debris mishandled"
        );
        assert!(!b_tmp.exists(), "byte {k}: tmp debris survived the sweep");
        let engine = Engine::with_defaults();
        let warm = store.warm(&engine);
        assert_eq!(
            (warm.loaded, warm.rejected),
            (1, 0),
            "byte {k}: tmp crash must recover to exactly {{A}}"
        );
        assert!(engine.prepare_nfa(a.nfa_arc(), 5).was_cached());

        // Crash leaving a torn file under the published name.
        std::fs::write(&b_path, &b_bytes[..k]).unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        let engine = Engine::with_defaults();
        let warm = store.warm(&engine);
        if k == b_bytes.len() {
            // The one boundary where the file is whole: B serves.
            assert_eq!(store.sweep_report().quarantined, 0);
            assert_eq!((warm.loaded, warm.rejected), (2, 0));
            assert!(engine.prepare_nfa(b.nfa_arc(), 6).was_cached());
            std::fs::remove_file(&b_path).unwrap();
        } else {
            assert_eq!(
                store.sweep_report().quarantined,
                1,
                "byte {k}: torn snapshot not quarantined"
            );
            assert_eq!(
                (warm.loaded, warm.rejected),
                (1, 0),
                "byte {k}: torn crash must recover to exactly {{A}}"
            );
            let q = quarantine_path(&b_path);
            assert!(q.exists(), "byte {k}: quarantined bytes discarded");
            std::fs::remove_file(&q).unwrap();
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The corruption matrix, through the full serving path: for every
/// corruption mode, a restarted server quarantines the file (visible in
/// its stats), recompiles the instance instead of serving corrupt data,
/// and keeps the quarantined bytes on disk.
#[test]
fn the_corruption_matrix_quarantines_and_recompiles_never_serves() {
    let dir = temp_dir("matrix");
    let config = || ServeConfig {
        snapshot_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    // Publish one real snapshot through a serving process.
    {
        let server = Server::new(config()).unwrap();
        let conn = server.open_conn();
        let prepared =
            server.handle_line(conn, r#"{"op":"prepare","regex":"(0|1)*11","length":6}"#);
        assert!(prepared.text.contains(r#""ok":true"#));
        assert!(server.stats().snapshots_saved >= 1);
        server.shutdown();
    }
    let file = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .expect("one snapshot saved")
        .path();
    let good = std::fs::read(&file).unwrap();
    let flipped = |at: usize| {
        let mut bytes = good.clone();
        bytes[at] ^= 0xFF;
        bytes
    };
    let matrix: Vec<(&str, Vec<u8>)> = vec![
        ("empty file", Vec::new()),
        ("foreign bytes", b"not a snapshot at all".to_vec()),
        ("truncated header", good[..12].to_vec()),
        ("truncated payload", good[..good.len() - 1].to_vec()),
        ("flipped magic", flipped(0)),
        ("flipped version", flipped(9)),
        ("flipped fingerprint", flipped(14)),
        ("flipped checksum", flipped(30)),
        ("flipped payload", flipped(good.len() / 2)),
        ("flipped last byte", flipped(good.len() - 1)),
        (
            "trailing junk",
            good.iter().chain(b"junk").copied().collect(),
        ),
    ];

    for (mode, bytes) in matrix {
        std::fs::write(&file, &bytes).unwrap();
        let server = Server::new(config()).unwrap();
        assert_eq!(
            server.stats().snapshots_quarantined,
            1,
            "{mode}: not quarantined"
        );
        assert_eq!(
            (server.warm_report().loaded, server.warm_report().rejected),
            (0, 0),
            "{mode}: the warm pass saw a file the sweep should have removed"
        );
        assert!(!file.exists(), "{mode}: corrupt file left in serving path");
        let q = quarantine_path(&file);
        assert!(q.exists(), "{mode}: quarantined bytes discarded");
        // The instance recompiles — a cache miss, never a corrupt answer.
        let conn = server.open_conn();
        let prepared =
            server.handle_line(conn, r#"{"op":"prepare","regex":"(0|1)*11","length":6}"#);
        let prepared = json::parse(&prepared.text).unwrap();
        assert_eq!(
            prepared.get("cached"),
            Some(&Json::Bool(false)),
            "{mode}: served without recompiling"
        );
        assert_eq!(prepared.get("length").and_then(Json::as_u64), Some(6));
        server.shutdown();
        std::fs::remove_file(&q).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The client backoff schedule is a pure function of its inputs:
    /// deterministic per seed, monotone nondecreasing across attempts,
    /// never above the cap, never below `min(base, cap)`, and pinned at
    /// the cap once the exponential passes it.
    #[test]
    fn backoff_schedule_is_monotone_capped_and_deterministic(
        seed in any::<u64>(),
        base_ms in 1u64..50,
        cap_ms in 1u64..2000,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(cap_ms);
        let floor = base.min(cap);
        let schedule: Vec<Duration> =
            (0..16).map(|a| backoff_delay(base, cap, seed, a)).collect();
        let replay: Vec<Duration> =
            (0..16).map(|a| backoff_delay(base, cap, seed, a)).collect();
        prop_assert_eq!(&schedule, &replay, "schedule must be a pure function of the seed");
        for (attempt, pair) in schedule.windows(2).enumerate() {
            prop_assert!(
                pair[0] <= pair[1],
                "attempt {} sleeps longer than attempt {}: {:?} > {:?}",
                attempt, attempt + 1, pair[0], pair[1]
            );
        }
        for (attempt, delay) in schedule.iter().enumerate() {
            prop_assert!(*delay <= cap, "attempt {attempt} exceeds the cap: {delay:?}");
            prop_assert!(*delay >= floor, "attempt {attempt} undershoots the base: {delay:?}");
        }
        // 2^15 * 1ms > 2s >= every cap in range: the tail is pinned.
        prop_assert_eq!(schedule[15], cap, "the schedule must saturate at the cap");
    }

    /// The first-attempt delay always lands inside the jitter band
    /// `[base, 1.5 * base)`.
    #[test]
    fn backoff_first_delay_stays_in_the_jitter_band(seed in any::<u64>()) {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(10);
        let d = backoff_delay(base, cap, seed, 0);
        prop_assert!(d >= base && d < base + base / 2, "jitter out of band: {d:?}");
    }
}

/// Different seeds genuinely jitter: a reconnecting fleet with distinct
/// seeds does not thunder back in lockstep.
#[test]
fn backoff_jitter_desynchronizes_distinct_seeds() {
    let base = Duration::from_millis(100);
    let cap = Duration::from_secs(10);
    let distinct: std::collections::HashSet<Duration> = (0..64u64)
        .map(|seed| backoff_delay(base, cap, seed, 0))
        .collect();
    assert!(
        distinct.len() > 32,
        "64 seeds collapsed to {} first delays",
        distinct.len()
    );
}
