//! Property tests for the consistent-hash shard map (and the engine-level
//! residency invariant it underwrites).
//!
//! The three contracts from the sharding design (`engine::shard`):
//!
//! * **Stability** — `shard_for` is a pure function of the live shard set;
//!   rebuilding a map with the same shards reproduces every assignment.
//! * **Bounded movement** — adding a shard moves keys only *to* it, and
//!   only a minority of them; removing a shard moves only the keys it
//!   owned. Untouched shards never lose or gain residents as bystanders.
//! * **Unique ownership** — every fingerprint routes to exactly one live
//!   shard, and at the engine level an instance is never resident in two
//!   shards' caches, even across topology changes.

use std::sync::Arc;

use lsc_automata::families::blowup_nfa;
use lsc_core::engine::{EngineConfig, ShardMap, ShardedConfig, ShardedEngine};
use lsc_core::PreparedInstance;
use proptest::prelude::*;

const REPLICAS: usize = 64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stability + unique ownership: routing is a function into the live
    /// shard set, identical across independently built maps.
    #[test]
    fn routing_is_a_stable_function(shards in 1usize..12, fps in collection::vec(any::<u64>(), 1..256)) {
        let map = ShardMap::new(shards, REPLICAS);
        let rebuilt = ShardMap::new(shards, REPLICAS);
        for &fp in &fps {
            let owner = map.shard_for(fp);
            prop_assert!(map.shard_ids().contains(&owner), "owner must be live");
            prop_assert_eq!(owner, map.shard_for(fp), "same map, same answer");
            prop_assert_eq!(owner, rebuilt.shard_for(fp), "same shard set, same answer");
        }
    }

    /// Adding a shard moves keys only to the new shard — every key either
    /// keeps its owner or lands on the addition.
    #[test]
    fn adding_a_shard_bounds_key_movement(shards in 1usize..10, fps in collection::vec(any::<u64>(), 1..512)) {
        let mut map = ShardMap::new(shards, REPLICAS);
        let before: Vec<usize> = fps.iter().map(|&fp| map.shard_for(fp)).collect();
        let new_shard = shards; // next free id
        map.add_shard(new_shard);
        let mut moved = 0usize;
        for (i, &fp) in fps.iter().enumerate() {
            let now = map.shard_for(fp);
            if now != before[i] {
                prop_assert_eq!(now, new_shard, "keys may move only to the new shard");
                moved += 1;
            }
        }
        // With V=64 virtual nodes the moved fraction concentrates near
        // 1/(N+1); assert a loose upper bound so a broken ring (everything
        // rehashed) fails loudly without flaking on small samples.
        if fps.len() >= 64 {
            prop_assert!(
                moved * (shards + 1) <= fps.len() * 3,
                "moved {} of {} keys at {} -> {} shards: far beyond the consistent-hashing bound",
                moved, fps.len(), shards, shards + 1
            );
        }
    }

    /// Removing a shard moves only the keys it owned; everyone else's
    /// assignment is untouched.
    #[test]
    fn removing_a_shard_moves_only_its_keys(shards in 2usize..10, victim_seed in any::<u64>(), fps in collection::vec(any::<u64>(), 1..512)) {
        let mut map = ShardMap::new(shards, REPLICAS);
        let victim = (victim_seed % shards as u64) as usize;
        let before: Vec<usize> = fps.iter().map(|&fp| map.shard_for(fp)).collect();
        prop_assert!(map.remove_shard(victim));
        for (i, &fp) in fps.iter().enumerate() {
            let now = map.shard_for(fp);
            if before[i] == victim {
                prop_assert!(now != victim, "victim's keys must move off it");
            } else {
                prop_assert_eq!(now, before[i], "bystander keys must not move");
            }
        }
    }

    /// Add-then-remove round trip restores every assignment (the ring is a
    /// pure function of the shard set, not of its history).
    #[test]
    fn topology_round_trip_restores_assignments(shards in 1usize..10, fps in collection::vec(any::<u64>(), 1..256)) {
        let mut map = ShardMap::new(shards, REPLICAS);
        let before: Vec<usize> = fps.iter().map(|&fp| map.shard_for(fp)).collect();
        map.add_shard(shards);
        prop_assert!(map.remove_shard(shards));
        for (i, &fp) in fps.iter().enumerate() {
            prop_assert_eq!(map.shard_for(fp), before[i]);
        }
    }

    /// Engine-level unique residency: after preparing instances and
    /// churning the topology, no instance is resident in two shards, and
    /// each resident copy sits on its map-assigned home shard.
    #[test]
    fn no_instance_is_ever_resident_in_two_shards(shards in 1usize..6, ks in collection::vec(3usize..9, 1..8), churn in 0usize..4) {
        let engine = ShardedEngine::new(ShardedConfig {
            engine: EngineConfig::default(),
            shards,
            ..ShardedConfig::default()
        });
        let instances: Vec<(Arc<_>, usize)> = ks
            .iter()
            .map(|&k| (Arc::new(blowup_nfa(k)), 6 + k))
            .collect();
        for (nfa, n) in &instances {
            engine.prepare_nfa(nfa, *n);
        }
        for round in 0..churn {
            if round % 2 == 0 {
                engine.add_shard();
            } else {
                let last = engine
                    .stats()
                    .per_shard
                    .last()
                    .map(|(id, _)| *id)
                    .expect("shards exist");
                engine.remove_shard(last);
            }
            // Re-touch half the instances between changes, as live traffic
            // would.
            for (nfa, n) in instances.iter().step_by(2) {
                engine.prepare_nfa(nfa, *n);
            }
        }
        for (nfa, n) in &instances {
            let fp = PreparedInstance::instance_fingerprint(nfa, *n);
            let resident = engine.resident_shards(fp);
            prop_assert!(resident.len() <= 1, "double residency: {:?}", resident);
            if let Some(&shard) = resident.first() {
                prop_assert_eq!(
                    shard,
                    engine.shard_for_fingerprint(fp),
                    "resident off its home shard"
                );
            }
        }
    }
}

/// Keys spread over every shard (not a property test: one fixed, larger
/// sample keeps the distribution check deterministic).
#[test]
fn every_shard_owns_a_fair_share() {
    let shards = 8;
    let map = ShardMap::new(shards, REPLICAS);
    let mut owned = vec![0usize; shards];
    let keys = 64_000u64;
    for fp in 0..keys {
        owned[map.shard_for(fp)] += 1;
    }
    let ideal = keys as usize / shards;
    for (shard, &count) in owned.iter().enumerate() {
        assert!(
            count * 3 >= ideal && count <= ideal * 3,
            "shard {shard} owns {count} of {keys} keys (ideal {ideal}): ring is badly skewed"
        );
    }
}
