//! Equivalence tests for the FPRAS hot-path optimizations and the
//! prepared-instance engine.
//!
//! The linear prefix-mask union estimator, the per-worker weight memo cache,
//! and the CSR DAG layout are all *value-preserving* rewrites of the seed
//! implementation: for a fixed master seed they must produce **bit-identical**
//! estimates and witness streams to the naive path (quadratic membership
//! scan, no memoization), at every thread count. The same contract extends to
//! the engine: warm (cached) answers must be bit-identical to cold one-shot
//! answers for `COUNT` (exact and FPRAS), `ENUM` order, and `GEN` witness
//! streams, at every batch thread count. These tests pin both contracts
//! across several NFA families.

use lsc_arith::BigFloat;
use lsc_automata::families::{ambiguity_gap_nfa, blowup_nfa, universal_nfa};
use lsc_automata::regex::Regex;
use lsc_automata::{Alphabet, Nfa};
use lsc_core::engine::{
    Engine, EngineConfig, QueryKind, QueryOutput, QueryRequest, QueryResponse, RouterConfig,
};
use lsc_core::fpras::{run_fpras, FprasParams};
use lsc_core::MemNfa;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;

/// The NFA families the equivalence contract is checked on: ambiguous,
/// unambiguous-after-blowup, universal, and an overlap-heavy regex language.
fn families() -> Vec<(&'static str, Nfa, usize)> {
    let ab = Alphabet::binary();
    vec![
        ("ambiguity-gap", ambiguity_gap_nfa(4), 10),
        ("blowup", blowup_nfa(5), 12),
        ("universal", universal_nfa(Alphabet::binary()), 8),
        (
            "contains-101",
            Regex::parse("(0|1)*101(0|1)*", &ab).unwrap().compile(),
            11,
        ),
    ]
}

fn bit_identical(a: &BigFloat, b: &BigFloat) -> bool {
    a.partial_cmp_total(b) == Ordering::Equal
}

/// Every optimization knob × thread count produces the same estimate as the
/// seed baseline for the same master seed.
#[test]
fn estimates_bit_identical_across_configs_and_threads() {
    for (name, nfa, n) in families() {
        // Small k so real sampling happens (not just exact handling).
        let mut quick = FprasParams::quick();
        quick.k = 16;
        let reference = {
            let mut rng = StdRng::seed_from_u64(0xE0_45u64);
            run_fpras(&nfa, n, quick.baseline(), &mut rng)
                .unwrap()
                .estimate()
        };
        let variants: Vec<(&str, FprasParams)> = vec![
            ("optimized", quick),
            ("no-cache", quick.without_weight_cache()),
            ("quadratic", quick.with_quadratic_estimator()),
            ("baseline", quick.baseline()),
        ];
        for (vname, params) in variants {
            for threads in [1usize, 2, 4] {
                let mut rng = StdRng::seed_from_u64(0xE0_45u64);
                let est = run_fpras(&nfa, n, params.with_threads(threads), &mut rng)
                    .unwrap()
                    .estimate();
                assert!(
                    bit_identical(&est, &reference),
                    "{name}/{vname}/threads={threads}: {est} != {reference}"
                );
            }
        }
    }
}

/// The witness streams (including rejections) are identical between the
/// optimized and baseline samplers for the same master seed and draw seed.
#[test]
fn witness_streams_bit_identical() {
    for (name, nfa, n) in families() {
        let mut quick = FprasParams::quick();
        quick.k = 16;
        let fast = {
            let mut rng = StdRng::seed_from_u64(7);
            run_fpras(&nfa, n, quick, &mut rng).unwrap()
        };
        let naive = {
            let mut rng = StdRng::seed_from_u64(7);
            run_fpras(&nfa, n, quick.baseline(), &mut rng).unwrap()
        };
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        for i in 0..100 {
            let a = fast.sample_witness(&mut rng_a);
            let b = naive.sample_witness(&mut rng_b);
            assert_eq!(a, b, "{name}: draw {i} diverged");
        }
    }
}

/// The amortized `WitnessSampler` draws exactly the stream that repeated
/// `sample_witness` calls produce (the long-lived cache changes no value).
#[test]
fn witness_sampler_matches_per_call_sampling() {
    for (name, nfa, n) in families() {
        let mut quick = FprasParams::quick();
        quick.k = 16;
        let mut rng = StdRng::seed_from_u64(13);
        let state = run_fpras(&nfa, n, quick, &mut rng).unwrap();
        let mut sampler = state.witness_sampler();
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        for i in 0..60 {
            let a = sampler.sample(&mut rng_a);
            let b = state.sample_witness(&mut rng_b);
            assert_eq!(a, b, "{name}: draw {i} diverged");
        }
    }
}

// ---- Engine-path equivalence -----------------------------------------------

/// The engine configuration the equivalence contract is checked under: the
/// determinization probe disabled so ambiguous families genuinely exercise
/// the cached FPRAS sketch, and a small `k` so real sampling happens.
fn engine_config(threads: usize) -> EngineConfig {
    let mut fpras = FprasParams::quick();
    fpras.k = 16;
    EngineConfig {
        router: RouterConfig {
            determinization_cap: 0,
            fpras,
            classify_ambiguity: false,
        },
        threads,
        ..EngineConfig::default()
    }
}

/// One COUNT + one ENUM + one GEN request per family, with fixed per-request
/// seeds.
fn engine_requests(nfa: &Nfa, n: usize) -> Vec<QueryRequest> {
    let nfa = std::sync::Arc::new(nfa.clone());
    vec![
        QueryRequest::automaton(nfa.clone(), n, QueryKind::Count, 0xC0),
        QueryRequest::automaton(
            nfa.clone(),
            n,
            QueryKind::Enumerate { limit: usize::MAX },
            0xC1,
        ),
        QueryRequest::automaton(nfa, n, QueryKind::Sample { count: 25 }, 0xC2),
    ]
}

/// Bit-level equality of two query responses' outputs (`cache_hit` flags are
/// allowed to differ — warm vs cold is the point).
fn assert_same_output(context: &str, a: &QueryResponse, b: &QueryResponse) {
    match (&a.output, &b.output) {
        (Ok(QueryOutput::Count(x)), Ok(QueryOutput::Count(y))) => {
            assert_eq!(x.route, y.route, "{context}: route diverged");
            assert_eq!(x.exact, y.exact, "{context}: exact count diverged");
            assert!(
                bit_identical(&x.estimate, &y.estimate),
                "{context}: estimate {} != {}",
                x.estimate,
                y.estimate
            );
        }
        (Ok(QueryOutput::Exact(x)), Ok(QueryOutput::Exact(y))) => {
            assert_eq!(x, y, "{context}: exact count diverged");
        }
        (Ok(QueryOutput::Words(x)), Ok(QueryOutput::Words(y))) => {
            assert_eq!(x, y, "{context}: witness stream diverged");
        }
        (Err(x), Err(y)) => assert_eq!(x, y, "{context}: errors diverged"),
        _ => panic!("{context}: output shapes diverged"),
    }
}

/// Warm (cached) engine answers are bit-identical to cold one-shot answers —
/// COUNT (exact route on UFA families, FPRAS route on ambiguous ones), ENUM
/// order, and GEN witness streams — at 1, 2, and 4 batch threads.
#[test]
fn engine_warm_answers_bit_identical_to_cold_at_any_thread_count() {
    for (name, nfa, n) in families() {
        let requests = engine_requests(&nfa, n);
        // Cold reference: a fresh engine per request, single-threaded.
        let cold: Vec<QueryResponse> = requests
            .iter()
            .map(|r| Engine::new(engine_config(1)).query(r))
            .collect();
        for threads in [1usize, 2, 4] {
            let engine = Engine::new(engine_config(threads));
            let first = engine.query_batch(&requests);
            let warm = engine.query_batch(&requests);
            for (i, ((c, f), w)) in cold.iter().zip(&first).zip(&warm).enumerate() {
                let ctx = format!("{name}/threads={threads}/request={i}");
                assert_same_output(&format!("{ctx}/first"), c, f);
                assert_same_output(&format!("{ctx}/warm"), c, w);
            }
            assert!(
                warm.iter().all(|r| r.cache_hit),
                "{name}/threads={threads}: second batch must be fully warm"
            );
        }
    }
}

/// The engine's answers agree with the direct `MemNfa` toolbox on the
/// deterministic problems: exact counts and enumeration order.
#[test]
fn engine_agrees_with_memnfa_toolbox() {
    for (name, nfa, n) in families() {
        let engine = Engine::new(engine_config(1));
        let inst = MemNfa::new(nfa.clone(), n);
        let count = engine.query(&QueryRequest::automaton(
            nfa.clone(),
            n,
            QueryKind::Count,
            1,
        ));
        if let Ok(QueryOutput::Count(routed)) = &count.output {
            if let Some(exact) = &routed.exact {
                assert_eq!(
                    *exact,
                    inst.count_exact().unwrap(),
                    "{name}: engine exact count != MemNfa"
                );
            }
        } else {
            panic!("{name}: count failed");
        }
        let enumerated = engine.query(&QueryRequest::automaton(
            nfa.clone(),
            n,
            QueryKind::Enumerate { limit: usize::MAX },
            2,
        ));
        let Ok(QueryOutput::Words(words)) = &enumerated.output else {
            panic!("{name}: enumeration failed");
        };
        let direct: Vec<_> = if inst.is_unambiguous() {
            inst.enumerate_constant_delay().unwrap().collect()
        } else {
            inst.enumerate().collect()
        };
        assert_eq!(*words, direct, "{name}: enumeration order diverged");
    }
}

/// GEN through the engine is deterministic in the request seed and identical
/// between a cold and a warm engine, draw for draw.
#[test]
fn engine_witness_streams_reproduce_across_engines() {
    for (name, nfa, n) in families() {
        let request =
            QueryRequest::automaton(nfa.clone(), n, QueryKind::Sample { count: 40 }, 0xFEED);
        let a = Engine::new(engine_config(1)).query(&request);
        let engine = Engine::new(engine_config(2));
        // Warm the instance through other kinds first, then sample.
        engine.query_batch(&engine_requests(&nfa, n));
        let b = engine.query(&request);
        assert_same_output(&format!("{name}/gen-stream"), &a, &b);
        let Ok(QueryOutput::Words(words)) = &a.output else {
            panic!("{name}: sampling failed");
        };
        for w in words {
            assert!(nfa.accepts(w), "{name}: sampled non-witness");
        }
    }
}

/// B6 (recomputed membership) composed with the new estimator still matches:
/// recomputing the reach set and intersecting with the prefix mask is the
/// same predicate as the cached bitset test.
#[test]
fn recomputed_membership_matches_cached_under_mask() {
    for (name, nfa, n) in families() {
        let mut quick = FprasParams::quick();
        quick.k = 16;
        let mut rng_a = StdRng::seed_from_u64(31);
        let mut rng_b = StdRng::seed_from_u64(31);
        let cached = run_fpras(&nfa, n, quick, &mut rng_a).unwrap();
        let recomputed =
            run_fpras(&nfa, n, quick.with_recomputed_membership(), &mut rng_b).unwrap();
        assert!(
            bit_identical(&cached.estimate(), &recomputed.estimate()),
            "{name}: B6 diverged from cached-membership path"
        );
    }
}
