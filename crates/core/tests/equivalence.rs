//! Equivalence tests for the FPRAS hot-path optimizations.
//!
//! The linear prefix-mask union estimator, the per-worker weight memo cache,
//! and the CSR DAG layout are all *value-preserving* rewrites of the seed
//! implementation: for a fixed master seed they must produce **bit-identical**
//! estimates and witness streams to the naive path (quadratic membership
//! scan, no memoization), at every thread count. These tests pin that
//! contract across several NFA families.

use lsc_arith::BigFloat;
use lsc_automata::families::{ambiguity_gap_nfa, blowup_nfa, universal_nfa};
use lsc_automata::regex::Regex;
use lsc_automata::{Alphabet, Nfa};
use lsc_core::fpras::{run_fpras, FprasParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;

/// The NFA families the equivalence contract is checked on: ambiguous,
/// unambiguous-after-blowup, universal, and an overlap-heavy regex language.
fn families() -> Vec<(&'static str, Nfa, usize)> {
    let ab = Alphabet::binary();
    vec![
        ("ambiguity-gap", ambiguity_gap_nfa(4), 10),
        ("blowup", blowup_nfa(5), 12),
        ("universal", universal_nfa(Alphabet::binary()), 8),
        (
            "contains-101",
            Regex::parse("(0|1)*101(0|1)*", &ab).unwrap().compile(),
            11,
        ),
    ]
}

fn bit_identical(a: &BigFloat, b: &BigFloat) -> bool {
    a.partial_cmp_total(b) == Ordering::Equal
}

/// Every optimization knob × thread count produces the same estimate as the
/// seed baseline for the same master seed.
#[test]
fn estimates_bit_identical_across_configs_and_threads() {
    for (name, nfa, n) in families() {
        // Small k so real sampling happens (not just exact handling).
        let mut quick = FprasParams::quick();
        quick.k = 16;
        let reference = {
            let mut rng = StdRng::seed_from_u64(0xE0_45u64);
            run_fpras(&nfa, n, quick.baseline(), &mut rng)
                .unwrap()
                .estimate()
        };
        let variants: Vec<(&str, FprasParams)> = vec![
            ("optimized", quick),
            ("no-cache", quick.without_weight_cache()),
            ("quadratic", quick.with_quadratic_estimator()),
            ("baseline", quick.baseline()),
        ];
        for (vname, params) in variants {
            for threads in [1usize, 2, 4] {
                let mut rng = StdRng::seed_from_u64(0xE0_45u64);
                let est = run_fpras(&nfa, n, params.with_threads(threads), &mut rng)
                    .unwrap()
                    .estimate();
                assert!(
                    bit_identical(&est, &reference),
                    "{name}/{vname}/threads={threads}: {est} != {reference}"
                );
            }
        }
    }
}

/// The witness streams (including rejections) are identical between the
/// optimized and baseline samplers for the same master seed and draw seed.
#[test]
fn witness_streams_bit_identical() {
    for (name, nfa, n) in families() {
        let mut quick = FprasParams::quick();
        quick.k = 16;
        let fast = {
            let mut rng = StdRng::seed_from_u64(7);
            run_fpras(&nfa, n, quick, &mut rng).unwrap()
        };
        let naive = {
            let mut rng = StdRng::seed_from_u64(7);
            run_fpras(&nfa, n, quick.baseline(), &mut rng).unwrap()
        };
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        for i in 0..100 {
            let a = fast.sample_witness(&mut rng_a);
            let b = naive.sample_witness(&mut rng_b);
            assert_eq!(a, b, "{name}: draw {i} diverged");
        }
    }
}

/// The amortized `WitnessSampler` draws exactly the stream that repeated
/// `sample_witness` calls produce (the long-lived cache changes no value).
#[test]
fn witness_sampler_matches_per_call_sampling() {
    for (name, nfa, n) in families() {
        let mut quick = FprasParams::quick();
        quick.k = 16;
        let mut rng = StdRng::seed_from_u64(13);
        let state = run_fpras(&nfa, n, quick, &mut rng).unwrap();
        let mut sampler = state.witness_sampler();
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        for i in 0..60 {
            let a = sampler.sample(&mut rng_a);
            let b = state.sample_witness(&mut rng_b);
            assert_eq!(a, b, "{name}: draw {i} diverged");
        }
    }
}

/// B6 (recomputed membership) composed with the new estimator still matches:
/// recomputing the reach set and intersecting with the prefix mask is the
/// same predicate as the cached bitset test.
#[test]
fn recomputed_membership_matches_cached_under_mask() {
    for (name, nfa, n) in families() {
        let mut quick = FprasParams::quick();
        quick.k = 16;
        let mut rng_a = StdRng::seed_from_u64(31);
        let mut rng_b = StdRng::seed_from_u64(31);
        let cached = run_fpras(&nfa, n, quick, &mut rng_a).unwrap();
        let recomputed =
            run_fpras(&nfa, n, quick.with_recomputed_membership(), &mut rng_b).unwrap();
        assert!(
            bit_identical(&cached.estimate(), &recomputed.estimate()),
            "{name}: B6 diverged from cached-membership path"
        );
    }
}
