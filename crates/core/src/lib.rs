//! The paper's contribution: efficient enumeration, counting, and uniform
//! generation for the logspace relation classes of Arenas, Croquevielle,
//! Jayaram & Riveros (PODS 2019).
//!
//! Everything pivots on two complete problems (Proposition 12):
//!
//! * **MEM-NFA** — `((N, 0^k), w)` with `w ∈ L(N)`, `|w| = k` — complete for
//!   `RelationNL`;
//! * **MEM-UFA** — the same with `N` unambiguous — complete for `RelationUL`.
//!
//! An instance is a [`MemNfa`] (automaton + unary length); every application in
//! the paper (§4) reduces to one by a witness-preserving reduction, after which
//! this crate supplies the full toolbox:
//!
//! | problem | UFA instance (Thm 5) | NFA instance (Thm 2) |
//! |---|---|---|
//! | `ENUM`  | constant delay ([`enumerate::constant_delay`], Alg. 1) | polynomial delay ([`enumerate::poly_delay`]) |
//! | `COUNT` | exact in P ([`count::exact`], §5.3.2) | FPRAS ([`fpras`], Algorithms 2–5, Thm 22) |
//! | `GEN`   | exact uniform ([`sample::ufa_exact`], §5.3.3) | Las Vegas uniform ([`sample::nfa_plvug`], Cor. 23) |
//!
//! The self-reducibility structure of §5.2 lives in [`self_reduce`], and the
//! naive Monte-Carlo estimator the paper dismisses in §6.1 is kept as a baseline
//! in [`count::naive`].
//!
//! For network traffic, [`serve`] wraps the engine in a concurrent request
//! server (`nfa_tool serve`): a versioned JSON-lines wire protocol over TCP
//! or stdio, connection-scoped sessions with idle eviction, a bounded
//! worker pool with admission control, and on-disk
//! [`engine::SnapshotStore`] persistence so restarts warm the cache
//! instead of recompiling.
//!
//! For repeated traffic, [`engine`] provides the compile-once serving layer:
//! a [`PreparedInstance`] caches the unrolled DAG, the ambiguity
//! classification, and the per-problem tables behind one artifact (a
//! [`MemNfa`] wraps exactly one of these), and an [`Engine`] keys prepared
//! instances by structural fingerprint in a byte-capped LRU cache with a
//! batched, deterministically-parallel request API. The ambiguity-aware
//! counting router lives there too ([`engine::count_routed`]), with routing
//! decisions cached per instance.

#![forbid(unsafe_code)]

pub mod count;
pub mod engine;
pub mod enumerate;
pub mod fpras;
mod mem_nfa;
pub mod sample;
pub mod self_reduce;
pub mod serve;

pub use count::exact::NotUnambiguousError;
pub use engine::{Engine, EnumCursor, GenStream, PreparedInstance, Queryable, ResumeToken};
pub use mem_nfa::MemNfa;
