//! The complete problems MEM-NFA and MEM-UFA as a user-facing instance type.
//!
//! Proposition 12: MEM-NFA is complete for `RelationNL` and MEM-UFA for
//! `RelationUL` under witness-preserving reductions — polynomial-time maps `f`
//! with `W_R(x) = W_S(f(x))`. Such reductions transport *all* the good
//! properties untouched (Proposition 11): enumeration delay, counting
//! algorithms, and generators apply verbatim to the image instance. So every
//! application crate in this repository reduces its problem to a [`MemNfa`]
//! and calls the methods below; there is deliberately no other entry point.
//!
//! A `MemNfa` is a thin wrapper over one private
//! [`PreparedInstance`](crate::engine::PreparedInstance): the unrolled DAG,
//! the ambiguity classification, and the exact tables are compiled on first
//! use and shared by every later call on the same value — so holding a
//! `MemNfa` across queries is the single-instance version of what
//! [`crate::engine::Engine`] does across many instances.

use lsc_arith::{BigFloat, BigNat};
use lsc_automata::Nfa;
use rand::Rng;

use crate::count::exact::{self, NotUnambiguousError};
use crate::engine::{PreparedInstance, RoutedCount, RouterConfig};
use crate::enumerate::{ConstantDelayEnumerator, PolyDelayEnumerator};
use crate::fpras::{FprasError, FprasParams, FprasState};
use crate::sample::{Plvug, TableSampler};

/// An instance `(N, 0^n)` of MEM-NFA: witnesses are the words of `L_n(N)`.
///
/// If the automaton is unambiguous this is a MEM-UFA instance and the
/// Theorem 5 toolbox (exact counting, constant delay, exact sampling) applies;
/// otherwise the Theorem 2 toolbox (FPRAS, polynomial delay, PLVUG) does.
/// [`MemNfa::is_unambiguous`] decides which, and is cached — as are the
/// unrolled DAG and the exact count tables, so repeated calls on one instance
/// pay the preprocessing once.
///
/// ```
/// use lsc_automata::{families, Alphabet};
/// use lsc_core::MemNfa;
///
/// // (0|1)*1(0|1)^4 at length 9 — unambiguous, so everything is exact.
/// let inst = MemNfa::new(families::blowup_nfa(5), 9);
/// assert!(inst.is_unambiguous());
/// let count = inst.count_exact().unwrap();
/// assert_eq!(count.to_u64(), Some(256)); // 2^8 words
/// assert_eq!(inst.enumerate_constant_delay().unwrap().count(), 256);
/// ```
pub struct MemNfa {
    prepared: PreparedInstance,
}

impl MemNfa {
    /// Wraps an instance (nothing is compiled until the first query).
    pub fn new(nfa: Nfa, length: usize) -> Self {
        MemNfa {
            prepared: PreparedInstance::new(nfa, length),
        }
    }

    /// The underlying prepared instance, for engine-style access (shared
    /// tables, cached routing, seeded sampling).
    pub fn prepared(&self) -> &PreparedInstance {
        &self.prepared
    }

    /// The automaton `N`.
    pub fn nfa(&self) -> &Nfa {
        self.prepared.nfa()
    }

    /// The witness length `n` (the paper's unary `0^n`).
    pub fn length(&self) -> usize {
        self.prepared.length()
    }

    /// Is this a MEM-UFA instance? Cached after the first call.
    pub fn is_unambiguous(&self) -> bool {
        self.prepared.is_unambiguous()
    }

    /// The membership test `(x, y) ∈ R` of the p-relation (§2.1): polynomial
    /// time, as required.
    pub fn check_witness(&self, word: &[u32]) -> bool {
        self.prepared.check_witness(word)
    }

    /// Does any witness exist? (The existence problem used by \[Sch09\]'s
    /// flashlight argument; polynomial via the pruned unrolling, which is
    /// cached.)
    pub fn exists_witness(&self) -> bool {
        self.prepared.exists_witness()
    }

    // ---- COUNT ----

    /// Exact `|W|` in polynomial time — Theorem 5, MEM-UFA only. Served from
    /// the cached completion table after the first call.
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn count_exact(&self) -> Result<BigNat, NotUnambiguousError> {
        self.prepared.count_exact()
    }

    /// Ground-truth `|W|` by determinization — exponential worst case, test
    /// oracle only.
    pub fn count_oracle(&self) -> BigNat {
        exact::count_nfa_via_determinization(self.nfa(), self.length())
    }

    /// FPRAS estimate of `|W|` — Theorem 2 / Theorem 22. The caller owns the
    /// randomness; only the unrolled DAG is shared with other calls.
    ///
    /// # Errors
    /// Propagates the (vanishing-probability) FPRAS failure events.
    pub fn count_approx<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<BigFloat, FprasError> {
        self.prepared.run_fpras(params, rng).map(|s| s.estimate())
    }

    /// Runs Algorithm 5 and keeps the full sketch state (count + sample from
    /// one preprocessing pass).
    ///
    /// # Errors
    /// Propagates the FPRAS failure events.
    pub fn fpras_state<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<FprasState, FprasError> {
        self.prepared.run_fpras(params, rng)
    }

    /// Routed `|W|`: exact where exactness is affordable, FPRAS otherwise
    /// (see [`crate::engine`]). The report says which route fired. The
    /// ambiguity probe and determinization are cached on this instance, so
    /// repeated routed counts re-decide nothing.
    ///
    /// # Errors
    /// Propagates the FPRAS failure events when the FPRAS route fires.
    pub fn count_routed<R: Rng + ?Sized>(
        &self,
        config: &RouterConfig,
        rng: &mut R,
    ) -> Result<RoutedCount, FprasError> {
        self.prepared.count_routed(config, rng)
    }

    // ---- ENUM ----

    /// Constant-delay enumeration — Theorem 5, MEM-UFA only. Shares the
    /// cached DAG.
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn enumerate_constant_delay(&self) -> Result<ConstantDelayEnumerator, NotUnambiguousError> {
        self.prepared.enumerate_constant_delay()
    }

    /// Polynomial-delay enumeration — Theorem 2, any instance. Shares the
    /// cached DAG.
    pub fn enumerate(&self) -> PolyDelayEnumerator {
        self.prepared.enumerate()
    }

    // ---- GEN ----

    /// Exact uniform sampler — Theorem 5, MEM-UFA only. Returns a reusable
    /// sampler sharing the cached count table (one table, many draws).
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn uniform_sampler(&self) -> Result<TableSampler, NotUnambiguousError> {
        self.prepared.uniform_sampler()
    }

    /// Las Vegas uniform generator — Theorem 2 / Corollary 23, any instance.
    ///
    /// # Errors
    /// Propagates the FPRAS failure events from preprocessing.
    pub fn las_vegas_generator<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<Plvug, FprasError> {
        self.prepared.run_fpras(params, rng).map(Plvug::from_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::blowup_nfa;
    use lsc_automata::regex::Regex;
    use lsc_automata::{Alphabet, Word};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ufa_toolbox_end_to_end() {
        let inst = MemNfa::new(blowup_nfa(3), 8);
        assert!(inst.is_unambiguous());
        assert!(inst.exists_witness());
        let count = inst.count_exact().unwrap();
        assert_eq!(count, inst.count_oracle());
        let words: Vec<Word> = inst.enumerate_constant_delay().unwrap().collect();
        assert_eq!(words.len() as u64, count.to_u64().unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let sampler = inst.uniform_sampler().unwrap();
        let w = sampler.sample(&mut rng).unwrap();
        assert!(inst.check_witness(&w));
    }

    #[test]
    fn nfa_toolbox_end_to_end() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile();
        let inst = MemNfa::new(nfa, 7);
        assert!(!inst.is_unambiguous());
        assert!(inst.count_exact().is_err());
        assert!(inst.enumerate_constant_delay().is_err());
        assert!(inst.uniform_sampler().is_err());
        let truth = inst.count_oracle().to_f64();
        let mut rng = StdRng::seed_from_u64(2);
        let est = inst.count_approx(FprasParams::quick(), &mut rng).unwrap();
        assert!((est.to_f64() - truth).abs() / truth < 0.2);
        let words: Vec<Word> = inst.enumerate().collect();
        assert_eq!(words.len() as u64, truth as u64);
        let gen = inst
            .las_vegas_generator(FprasParams::quick(), &mut rng)
            .unwrap();
        let w = gen.generate(&mut rng).witness().expect("witness");
        assert!(inst.check_witness(&w));
    }

    #[test]
    fn witness_checks() {
        let inst = MemNfa::new(blowup_nfa(2), 4);
        assert!(inst.check_witness(&[0, 0, 1, 0]));
        assert!(!inst.check_witness(&[0, 0, 1])); // wrong length
        assert!(!inst.check_witness(&[0, 0, 0, 0])); // not in language
    }

    #[test]
    fn empty_instance() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("000", &ab).unwrap().compile();
        let inst = MemNfa::new(nfa, 2);
        assert!(!inst.exists_witness());
        assert!(inst.count_exact().unwrap().is_zero());
        assert_eq!(inst.enumerate().count(), 0);
    }

    #[test]
    fn repeated_calls_share_the_artifact() {
        use std::sync::Arc;
        let inst = MemNfa::new(blowup_nfa(4), 10);
        let dag = Arc::as_ptr(inst.prepared().dag());
        let _ = inst.count_exact().unwrap();
        let _ = inst.enumerate_constant_delay().unwrap().count();
        assert_eq!(
            Arc::as_ptr(inst.prepared().dag()),
            dag,
            "one unrolling serves every query"
        );
    }
}
