//! The complete problems MEM-NFA and MEM-UFA as a user-facing instance type.
//!
//! Proposition 12: MEM-NFA is complete for `RelationNL` and MEM-UFA for
//! `RelationUL` under witness-preserving reductions — polynomial-time maps `f`
//! with `W_R(x) = W_S(f(x))`. Such reductions transport *all* the good
//! properties untouched (Proposition 11): enumeration delay, counting
//! algorithms, and generators apply verbatim to the image instance. So every
//! application crate in this repository reduces its problem to a [`MemNfa`]
//! and calls the methods below; there is deliberately no other entry point.

use lsc_arith::{BigFloat, BigNat};
use lsc_automata::ops::is_unambiguous;
use lsc_automata::unroll::UnrolledDag;
use lsc_automata::Nfa;
use rand::Rng;
use std::sync::OnceLock;

use crate::count::exact::{self, NotUnambiguousError};
use crate::count::router::{self, RoutedCount, RouterConfig};
use crate::enumerate::{ConstantDelayEnumerator, PolyDelayEnumerator};
use crate::fpras::{run_fpras, FprasError, FprasParams, FprasState};
use crate::sample::{Plvug, TableSampler};

/// An instance `(N, 0^n)` of MEM-NFA: witnesses are the words of `L_n(N)`.
///
/// If the automaton is unambiguous this is a MEM-UFA instance and the
/// Theorem 5 toolbox (exact counting, constant delay, exact sampling) applies;
/// otherwise the Theorem 2 toolbox (FPRAS, polynomial delay, PLVUG) does.
/// [`MemNfa::is_unambiguous`] decides which, and is cached.
///
/// ```
/// use lsc_automata::{families, Alphabet};
/// use lsc_core::MemNfa;
///
/// // (0|1)*1(0|1)^4 at length 9 — unambiguous, so everything is exact.
/// let inst = MemNfa::new(families::blowup_nfa(5), 9);
/// assert!(inst.is_unambiguous());
/// let count = inst.count_exact().unwrap();
/// assert_eq!(count.to_u64(), Some(256)); // 2^8 words
/// assert_eq!(inst.enumerate_constant_delay().unwrap().count(), 256);
/// ```
pub struct MemNfa {
    nfa: Nfa,
    length: usize,
    unambiguous: OnceLock<bool>,
}

impl MemNfa {
    /// Wraps an instance.
    pub fn new(nfa: Nfa, length: usize) -> Self {
        MemNfa {
            nfa,
            length,
            unambiguous: OnceLock::new(),
        }
    }

    /// The automaton `N`.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The witness length `n` (the paper's unary `0^n`).
    pub fn length(&self) -> usize {
        self.length
    }

    /// Is this a MEM-UFA instance? Cached after the first call.
    pub fn is_unambiguous(&self) -> bool {
        *self.unambiguous.get_or_init(|| is_unambiguous(&self.nfa))
    }

    /// The membership test `(x, y) ∈ R` of the p-relation (§2.1): polynomial
    /// time, as required.
    pub fn check_witness(&self, word: &[u32]) -> bool {
        word.len() == self.length && self.nfa.accepts(word)
    }

    /// Does any witness exist? (The existence problem used by \[Sch09\]'s
    /// flashlight argument; polynomial via the pruned unrolling.)
    pub fn exists_witness(&self) -> bool {
        !UnrolledDag::build(&self.nfa, self.length).is_empty()
    }

    // ---- COUNT ----

    /// Exact `|W|` in polynomial time — Theorem 5, MEM-UFA only.
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn count_exact(&self) -> Result<BigNat, NotUnambiguousError> {
        if !self.is_unambiguous() {
            return Err(NotUnambiguousError);
        }
        Ok(exact::count_runs(&self.nfa, self.length))
    }

    /// Ground-truth `|W|` by determinization — exponential worst case, test
    /// oracle only.
    pub fn count_oracle(&self) -> BigNat {
        exact::count_nfa_via_determinization(&self.nfa, self.length)
    }

    /// FPRAS estimate of `|W|` — Theorem 2 / Theorem 22.
    ///
    /// # Errors
    /// Propagates the (vanishing-probability) FPRAS failure events.
    pub fn count_approx<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<BigFloat, FprasError> {
        crate::fpras::approx_count(&self.nfa, self.length, params, rng)
    }

    /// Runs Algorithm 5 and keeps the full sketch state (count + sample from
    /// one preprocessing pass).
    ///
    /// # Errors
    /// Propagates the FPRAS failure events.
    pub fn fpras_state<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<FprasState, FprasError> {
        run_fpras(&self.nfa, self.length, params, rng)
    }

    /// Routed `|W|`: exact where exactness is affordable, FPRAS otherwise
    /// (see [`crate::count::router`]). The report says which route fired.
    ///
    /// # Errors
    /// Propagates the FPRAS failure events when the FPRAS route fires.
    pub fn count_routed<R: Rng + ?Sized>(
        &self,
        config: &RouterConfig,
        rng: &mut R,
    ) -> Result<RoutedCount, FprasError> {
        router::count_routed(&self.nfa, self.length, config, rng)
    }

    // ---- ENUM ----

    /// Constant-delay enumeration — Theorem 5, MEM-UFA only.
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn enumerate_constant_delay(
        &self,
    ) -> Result<ConstantDelayEnumerator, NotUnambiguousError> {
        ConstantDelayEnumerator::new(&self.nfa, self.length)
    }

    /// Polynomial-delay enumeration — Theorem 2, any instance.
    pub fn enumerate(&self) -> PolyDelayEnumerator {
        PolyDelayEnumerator::new(&self.nfa, self.length)
    }

    // ---- GEN ----

    /// Exact uniform sampler — Theorem 5, MEM-UFA only. Returns a reusable
    /// sampler (one table, many draws).
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn uniform_sampler(&self) -> Result<TableSampler, NotUnambiguousError> {
        TableSampler::new(&self.nfa, self.length)
    }

    /// Las Vegas uniform generator — Theorem 2 / Corollary 23, any instance.
    ///
    /// # Errors
    /// Propagates the FPRAS failure events from preprocessing.
    pub fn las_vegas_generator<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<Plvug, FprasError> {
        Plvug::prepare(&self.nfa, self.length, params, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::blowup_nfa;
    use lsc_automata::regex::Regex;
    use lsc_automata::{Alphabet, Word};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ufa_toolbox_end_to_end() {
        let inst = MemNfa::new(blowup_nfa(3), 8);
        assert!(inst.is_unambiguous());
        assert!(inst.exists_witness());
        let count = inst.count_exact().unwrap();
        assert_eq!(count, inst.count_oracle());
        let words: Vec<Word> = inst.enumerate_constant_delay().unwrap().collect();
        assert_eq!(words.len() as u64, count.to_u64().unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let sampler = inst.uniform_sampler().unwrap();
        let w = sampler.sample(&mut rng).unwrap();
        assert!(inst.check_witness(&w));
    }

    #[test]
    fn nfa_toolbox_end_to_end() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile();
        let inst = MemNfa::new(nfa, 7);
        assert!(!inst.is_unambiguous());
        assert!(inst.count_exact().is_err());
        assert!(inst.enumerate_constant_delay().is_err());
        assert!(inst.uniform_sampler().is_err());
        let truth = inst.count_oracle().to_f64();
        let mut rng = StdRng::seed_from_u64(2);
        let est = inst.count_approx(FprasParams::quick(), &mut rng).unwrap();
        assert!((est.to_f64() - truth).abs() / truth < 0.2);
        let words: Vec<Word> = inst.enumerate().collect();
        assert_eq!(words.len() as u64, truth as u64);
        let gen = inst
            .las_vegas_generator(FprasParams::quick(), &mut rng)
            .unwrap();
        let w = gen.generate(&mut rng).witness().expect("witness");
        assert!(inst.check_witness(&w));
    }

    #[test]
    fn witness_checks() {
        let inst = MemNfa::new(blowup_nfa(2), 4);
        assert!(inst.check_witness(&[0, 0, 1, 0]));
        assert!(!inst.check_witness(&[0, 0, 1])); // wrong length
        assert!(!inst.check_witness(&[0, 0, 0, 0])); // not in language
    }

    #[test]
    fn empty_instance() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("000", &ab).unwrap().compile();
        let inst = MemNfa::new(nfa, 2);
        assert!(!inst.exists_witness());
        assert!(inst.count_exact().unwrap().is_zero());
        assert_eq!(inst.enumerate().count(), 0);
    }
}
