//! Per-vertex sketches `(R(s), X(s))` and the union estimator `W̃`.

use lsc_arith::BigFloat;
use lsc_automata::unroll::NodeId;
use lsc_automata::{StateSet, Word};

/// One stored witness sample: the word plus the set of NFA states reachable
/// reading it.
///
/// The reach set is the key implementation optimization over the paper's
/// complexity sketch (DESIGN.md §3.4): every membership test `x ∈ U(s')` the
/// estimator needs — "is there a start→`s'` path labeled `x`?" — becomes a
/// single bit lookup `state(s') ∈ reach(x)`, instead of a fresh breadth-first
/// search per (sample, vertex) pair.
#[derive(Clone, Debug)]
pub struct SampleEntry {
    /// The sampled element of `U(s)` (length = layer of `s`).
    pub word: Word,
    /// NFA states reachable from the initial state reading `word`.
    pub reach: StateSet,
}

/// The sketch stored for one DAG vertex.
#[derive(Clone, Debug)]
pub struct VertexData {
    /// True iff `samples` is exactly `U(s)` (deduplicated), the base case of
    /// §6.4 for vertices with `|U(s)| ≤ k`.
    pub exact: bool,
    /// `R(s)`: the estimate of `|U(s)|` (exact when `exact` is set).
    pub r: BigFloat,
    /// `X(s)`: either all of `U(s)` (exact) or a multiset of `k` near-uniform
    /// samples.
    pub samples: Vec<SampleEntry>,
}

impl VertexData {
    /// An exact vertex: `X(s) = U(s)`, `R(s) = |U(s)|`.
    pub fn exact(samples: Vec<SampleEntry>) -> Self {
        VertexData {
            exact: true,
            r: BigFloat::from_u64(samples.len() as u64),
            samples,
        }
    }
}

/// A reusable prefix mask with a sparse index of its nonzero 64-bit words.
///
/// The union estimator's mask holds at most `|T|` set bits (one NFA state per
/// member already processed), so on wide automata nearly every mask word is
/// zero. Tracking the nonzero words lets [`estimate_union_packed`] test 64
/// samples against only those words — and lets `clear` zero exactly the dirty
/// words instead of the whole bit vector. One arena lives in each worker's
/// `SamplerScratch`, so the k×attempts sampler walks allocate no mask memory
/// at all.
#[derive(Clone, Debug)]
pub struct MaskArena {
    words: Vec<u64>,
    /// Indices of nonzero `words`, in first-touched order (deduplicated).
    touched: Vec<u32>,
}

impl MaskArena {
    /// An empty mask over a universe of `capacity` states.
    pub fn new(capacity: usize) -> Self {
        MaskArena {
            words: vec![0; capacity.div_ceil(64)],
            touched: Vec::new(),
        }
    }

    /// Empties the mask, touching only the dirty words.
    pub fn clear(&mut self) {
        for &wi in &self.touched {
            self.words[wi as usize] = 0;
        }
        self.touched.clear();
    }

    /// Inserts a state.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        let wi = i / 64;
        if self.words[wi] == 0 {
            self.touched.push(wi as u32);
        }
        self.words[wi] |= 1u64 << (i % 64);
    }

    /// True iff `set` (same capacity) shares a state with the mask. Scans
    /// only the nonzero mask words.
    #[inline]
    pub fn intersects(&self, set: &StateSet) -> bool {
        self.touched
            .iter()
            .any(|&wi| set.word(wi as usize) & self.words[wi as usize] != 0)
    }
}

/// The union estimator of §6.4:
///
/// ```text
/// W̃ = Σ_{s ∈ T} R(s) · |X(s) ∖ ⋃_{s' ∈ T, s' ≺ s} U(s')| / |X(s)|
/// ```
///
/// `T` is given as DAG vertices (all in one layer) with `≺` = vertex-id order;
/// `data` must hold sketches for each. The membership scan is *linear*: the
/// arena accumulates the NFA states of the members already processed, and a
/// sample `x` is covered by some earlier `U(s')` iff `reach(x)` intersects the
/// mask (DESIGN.md §3.5). This is the word-level kernel: samples are tested
/// 64 at a time against each nonzero mask word, building a per-chunk coverage
/// bitmap resolved with one `count_ones` — the inner loop is a
/// branchless and-compare-shift over packed `u64` lanes, which the compiler
/// autovectorizes, instead of a per-sample early-exit scan (DESIGN.md §10).
///
/// Bit-identity: the kernel computes the same per-member `fresh` counts as
/// the per-sample scan (both count samples whose reach set misses every
/// earlier member state), and accumulates `R(s)·fresh/|X(s)|` in the same
/// member order — so its `BigFloat` output is bit-identical to both the
/// scalar walk and [`estimate_union_quadratic`].
pub fn estimate_union_packed(
    members: &[NodeId],
    data: &[Option<VertexData>],
    arena: &mut MaskArena,
    state_of: impl Fn(NodeId) -> usize,
) -> BigFloat {
    arena.clear();
    let mut total = BigFloat::zero();
    for (i, &u) in members.iter().enumerate() {
        let d = data[u]
            .as_ref()
            .expect("estimate_union: predecessor sketch missing");
        if !d.samples.is_empty() {
            // The first member has an empty mask: every sample is fresh
            // without a scan — the common singleton-partition case costs no
            // tests at all, matching the naive scan's short-circuit.
            let fresh = if i == 0 {
                d.samples.len()
            } else {
                count_fresh_packed(&d.samples, arena)
            };
            let ratio = fresh as f64 / d.samples.len() as f64;
            total = total.add(d.r.mul_f64(ratio));
        }
        // Empty sketches (|U| = 0 cannot happen on a pruned DAG) contribute no
        // mass but still shade later members, exactly like the naive scan.
        arena.insert(state_of(u));
    }
    total
}

/// Counts samples whose reach set is disjoint from the mask, 64 at a time:
/// for each chunk, each nonzero mask word contributes one lane-parallel
/// and-compare pass over the chunk's reach words into a `covered` bitmap.
fn count_fresh_packed(samples: &[SampleEntry], arena: &MaskArena) -> usize {
    let mut fresh = 0usize;
    for chunk in samples.chunks(64) {
        let full = if chunk.len() == 64 {
            u64::MAX
        } else {
            (1u64 << chunk.len()) - 1
        };
        let mut covered = 0u64;
        for &wi in &arena.touched {
            let mw = arena.words[wi as usize];
            for (j, e) in chunk.iter().enumerate() {
                covered |= u64::from(e.reach.word(wi as usize) & mw != 0) << j;
            }
            if covered == full {
                break;
            }
        }
        fresh += chunk.len() - covered.count_ones() as usize;
    }
    fresh
}

/// The scalar per-sample variant of the linear estimator: same prefix-mask
/// linearization, but each sample is tested through the `covered` predicate
/// individually. This is the ablation-B6 path (recompute the reach set per
/// test), where the membership cost dwells inside the predicate and word-level
/// batching has nothing to batch.
pub fn estimate_union_with_mask(
    members: &[NodeId],
    data: &[Option<VertexData>],
    arena: &mut MaskArena,
    state_of: impl Fn(NodeId) -> usize,
    covered: impl Fn(&SampleEntry, &MaskArena) -> bool,
) -> BigFloat {
    arena.clear();
    let mut total = BigFloat::zero();
    for (i, &u) in members.iter().enumerate() {
        let d = data[u]
            .as_ref()
            .expect("estimate_union: predecessor sketch missing");
        if !d.samples.is_empty() {
            let fresh = if i == 0 {
                d.samples.len()
            } else {
                d.samples.iter().filter(|e| !covered(e, arena)).count()
            };
            let ratio = fresh as f64 / d.samples.len() as f64;
            total = total.add(d.r.mul_f64(ratio));
        }
        arena.insert(state_of(u));
    }
    total
}

/// The seed implementation of the estimator: a quadratic per-sample scan over
/// all earlier members. Kept verbatim as (a) the oracle for the equivalence
/// property tests and (b) the pre-optimization baseline behind ablation B9
/// ([`crate::fpras::FprasParams::quadratic_estimator`]) that the
/// `BENCH_fpras.json` speedup trajectory is measured against.
pub fn estimate_union_quadratic(
    members: &[NodeId],
    data: &[Option<VertexData>],
    state_of: impl Fn(NodeId) -> usize,
    member_of: impl Fn(&SampleEntry, usize) -> bool,
) -> BigFloat {
    let mut total = BigFloat::zero();
    for (i, &u) in members.iter().enumerate() {
        let d = data[u]
            .as_ref()
            .expect("estimate_union: predecessor sketch missing");
        if d.samples.is_empty() {
            continue;
        }
        let fresh = d
            .samples
            .iter()
            .filter(|entry| {
                !members[..i]
                    .iter()
                    .any(|&earlier| member_of(entry, state_of(earlier)))
            })
            .count();
        let ratio = fresh as f64 / d.samples.len() as f64;
        total = total.add(d.r.mul_f64(ratio));
    }
    total
}

/// States reachable from the initial state reading `word` — the membership
/// primitive (`x ∈ U(s^t_q)` iff `q ∈ reach_of(nfa, x)` for `|x| = t`).
pub fn reach_of(nfa: &lsc_automata::Nfa, word: &[lsc_automata::Symbol]) -> StateSet {
    let mut cur = StateSet::new(nfa.num_states());
    cur.insert(nfa.initial());
    let mut next = StateSet::new(nfa.num_states());
    for &a in word {
        nfa.step_set(&cur, a, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test shim: the packed kernel with a freshly allocated arena, checked
    /// on every call against the scalar per-sample walk.
    fn estimate_union(members: &[NodeId], data: &[Option<VertexData>], m: usize) -> BigFloat {
        let mut arena = MaskArena::new(m);
        let packed = estimate_union_packed(members, data, &mut arena, |v| v);
        let scalar = estimate_union_with_mask(
            members,
            data,
            &mut arena,
            |v| v,
            |e, a| a.intersects(&e.reach),
        );
        assert_eq!(
            packed.partial_cmp_total(&scalar),
            std::cmp::Ordering::Equal,
            "packed kernel diverged from scalar walk"
        );
        packed
    }

    fn entry(word: Word, reach_states: &[usize], m: usize) -> SampleEntry {
        let mut reach = StateSet::new(m);
        for &s in reach_states {
            reach.insert(s);
        }
        SampleEntry { word, reach }
    }

    #[test]
    fn no_overlap_sums_plainly() {
        // Two vertices with disjoint U's: W̃ = R(a) + R(b).
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0], m)])),
            Some(VertexData::exact(vec![entry(vec![1], &[1], m)])),
        ];
        let w = estimate_union(&[0, 1], &data, m);
        assert!((w.to_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_overlap_counts_once() {
        // Vertex 1's every sample also lies in U(vertex 0): only vertex 0's
        // mass contributes beyond the first.
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0], m)])),
            Some(VertexData::exact(vec![entry(vec![0], &[0, 1], m)])),
        ];
        let w = estimate_union(&[0, 1], &data, m);
        assert!((w.to_f64() - 1.0).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn partial_overlap_uses_sample_ratio() {
        // Vertex 1 has R = 10 and half its samples covered by vertex 0.
        let m = 4;
        let v0 = VertexData::exact(vec![entry(vec![0], &[0], m)]);
        let mut v1 = VertexData::exact(vec![
            entry(vec![0], &[0, 1], m), // in U(v0)
            entry(vec![1], &[1], m),    // fresh
        ]);
        v1.exact = false;
        v1.r = BigFloat::from_u64(10);
        let data = vec![Some(v0), Some(v1)];
        let w = estimate_union(&[0, 1], &data, m);
        assert!(
            (w.to_f64() - 6.0).abs() < 1e-12,
            "1 + 10·(1/2) = 6, got {w}"
        );
    }

    #[test]
    fn order_matters_as_specified() {
        // ≺ is the member order: swapping changes which vertex absorbs overlap
        // but not the total when sketches are exact.
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0, 1], m)])),
            Some(VertexData::exact(vec![
                entry(vec![0], &[0, 1], m),
                entry(vec![1], &[1], m),
            ])),
        ];
        let w01 = estimate_union(&[0, 1], &data, m).to_f64();
        let w10 = estimate_union(&[1, 0], &data, m).to_f64();
        assert!((w01 - 2.0).abs() < 1e-12);
        assert!((w10 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn packed_kernel_across_chunk_and_word_boundaries() {
        // 300 samples (4 full chunks + a 44-sample tail) over a 200-state
        // universe (4 mask words), members spread across mask words, with a
        // deterministic mix of covered and fresh samples. The shim asserts
        // packed == scalar on every call.
        let m = 200;
        let mut samples1 = Vec::new();
        for i in 0..300usize {
            // Sample i reaches state (i % 7) * 31 — hits member state 0 when
            // i % 7 == 0, member state 93 when i % 7 == 3.
            samples1.push(entry(vec![(i % 4) as u32], &[(i % 7) * 31], m));
        }
        let mut v1 = VertexData::exact(samples1);
        v1.exact = false;
        v1.r = BigFloat::from_u64(1000);
        // Member ids double as NFA states under the identity `state_of`, so
        // members 0, 93, 155 pin mask words 0, 1, and 2.
        let mut data: Vec<Option<VertexData>> = vec![None; m];
        data[0] = Some(VertexData::exact(vec![entry(vec![0], &[0, 93, 155], m)]));
        data[93] = Some(v1);
        data[155] = Some(VertexData::exact(vec![entry(vec![1], &[155], m)]));
        let w = estimate_union(&[0, 93, 155], &data, m);
        // v1's mask holds only member state 0: covered ⇔ i % 7 == 0. v2's
        // mask holds {0, 93}; its sole sample reaches 155 and stays fresh.
        let fresh = (0..300).filter(|i| i % 7 != 0).count();
        let expect = 1.0 + 1000.0 * fresh as f64 / 300.0 + 1.0;
        assert!(
            (w.to_f64() - expect).abs() < 1e-9,
            "w = {w}, expect {expect}"
        );
    }

    #[test]
    fn arena_clear_resets_only_dirty_words() {
        let mut arena = MaskArena::new(500);
        arena.insert(3);
        arena.insert(70);
        arena.insert(71);
        arena.insert(499);
        assert_eq!(arena.touched.len(), 3, "70 and 71 share a word");
        let mut wide = StateSet::new(500);
        wide.insert(70);
        assert!(arena.intersects(&wide));
        arena.clear();
        assert!(arena.touched.is_empty());
        assert!(arena.words.iter().all(|&w| w == 0));
        let mut miss = StateSet::new(500);
        miss.insert(3);
        assert!(!arena.intersects(&miss));
    }
}
