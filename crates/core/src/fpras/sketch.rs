//! Per-vertex sketches `(R(s), X(s))` and the union estimator `W̃`.

use lsc_arith::BigFloat;
use lsc_automata::unroll::NodeId;
use lsc_automata::{StateSet, Word};

/// One stored witness sample: the word plus the set of NFA states reachable
/// reading it.
///
/// The reach set is the key implementation optimization over the paper's
/// complexity sketch (DESIGN.md §3.4): every membership test `x ∈ U(s')` the
/// estimator needs — "is there a start→`s'` path labeled `x`?" — becomes a
/// single bit lookup `state(s') ∈ reach(x)`, instead of a fresh breadth-first
/// search per (sample, vertex) pair.
#[derive(Clone, Debug)]
pub struct SampleEntry {
    /// The sampled element of `U(s)` (length = layer of `s`).
    pub word: Word,
    /// NFA states reachable from the initial state reading `word`.
    pub reach: StateSet,
}

/// The sketch stored for one DAG vertex.
#[derive(Clone, Debug)]
pub struct VertexData {
    /// True iff `samples` is exactly `U(s)` (deduplicated), the base case of
    /// §6.4 for vertices with `|U(s)| ≤ k`.
    pub exact: bool,
    /// `R(s)`: the estimate of `|U(s)|` (exact when `exact` is set).
    pub r: BigFloat,
    /// `X(s)`: either all of `U(s)` (exact) or a multiset of `k` near-uniform
    /// samples.
    pub samples: Vec<SampleEntry>,
}

impl VertexData {
    /// An exact vertex: `X(s) = U(s)`, `R(s) = |U(s)|`.
    pub fn exact(samples: Vec<SampleEntry>) -> Self {
        VertexData {
            exact: true,
            r: BigFloat::from_u64(samples.len() as u64),
            samples,
        }
    }
}

/// The union estimator of §6.4:
///
/// ```text
/// W̃ = Σ_{s ∈ T} R(s) · |X(s) ∖ ⋃_{s' ∈ T, s' ≺ s} U(s')| / |X(s)|
/// ```
///
/// `T` is given as DAG vertices (all in one layer) with `≺` = vertex-id order;
/// `data` must hold sketches for each. The membership scan is *linear*: a
/// prefix mask accumulates the NFA states of the members already processed,
/// and a sample `x` is covered by some earlier `U(s')` iff `reach(x)`
/// intersects the mask — one `O(m/64)` bitset test instead of re-testing
/// every earlier member (DESIGN.md §3.5). The intersection test is delegated
/// to `covered(entry, mask)` so the caller chooses between the cached
/// reach-set (default) and a from-scratch recomputation (ablation B6).
///
/// The caller owns the scratch mask (cleared on entry, capacity = NFA state
/// count), so the sampler's inner loop allocates nothing.
pub fn estimate_union_with_mask(
    members: &[NodeId],
    data: &[Option<VertexData>],
    mask: &mut StateSet,
    state_of: impl Fn(NodeId) -> usize,
    covered: impl Fn(&SampleEntry, &StateSet) -> bool,
) -> BigFloat {
    mask.clear();
    let mut total = BigFloat::zero();
    for (i, &u) in members.iter().enumerate() {
        let d = data[u]
            .as_ref()
            .expect("estimate_union: predecessor sketch missing");
        if !d.samples.is_empty() {
            // `mask` holds exactly the states of the strictly-earlier members,
            // so `reach(x) ∩ mask = ∅` ⟺ `x ∉ U(s')` for every `s' ≺ u`. The
            // first member has an empty mask: every sample is fresh without a
            // scan — the common singleton-partition case costs no tests at
            // all, matching the naive scan's short-circuit.
            let fresh = if i == 0 {
                d.samples.len()
            } else {
                d.samples.iter().filter(|e| !covered(e, mask)).count()
            };
            let ratio = fresh as f64 / d.samples.len() as f64;
            total = total.add(d.r.mul_f64(ratio));
        }
        // Empty sketches (|U| = 0 cannot happen on a pruned DAG) contribute no
        // mass but still shade later members, exactly like the naive scan.
        mask.insert(state_of(u));
    }
    total
}

/// The seed implementation of the estimator: a quadratic per-sample scan over
/// all earlier members. Kept verbatim as (a) the oracle for the equivalence
/// property tests and (b) the pre-optimization baseline behind ablation B9
/// ([`crate::fpras::FprasParams::quadratic_estimator`]) that the
/// `BENCH_fpras.json` speedup trajectory is measured against.
pub fn estimate_union_quadratic(
    members: &[NodeId],
    data: &[Option<VertexData>],
    state_of: impl Fn(NodeId) -> usize,
    member_of: impl Fn(&SampleEntry, usize) -> bool,
) -> BigFloat {
    let mut total = BigFloat::zero();
    for (i, &u) in members.iter().enumerate() {
        let d = data[u]
            .as_ref()
            .expect("estimate_union: predecessor sketch missing");
        if d.samples.is_empty() {
            continue;
        }
        let fresh = d
            .samples
            .iter()
            .filter(|entry| {
                !members[..i]
                    .iter()
                    .any(|&earlier| member_of(entry, state_of(earlier)))
            })
            .count();
        let ratio = fresh as f64 / d.samples.len() as f64;
        total = total.add(d.r.mul_f64(ratio));
    }
    total
}

/// States reachable from the initial state reading `word` — the membership
/// primitive (`x ∈ U(s^t_q)` iff `q ∈ reach_of(nfa, x)` for `|x| = t`).
pub fn reach_of(nfa: &lsc_automata::Nfa, word: &[lsc_automata::Symbol]) -> StateSet {
    let mut cur = StateSet::new(nfa.num_states());
    cur.insert(nfa.initial());
    let mut next = StateSet::new(nfa.num_states());
    for &a in word {
        nfa.step_set(&cur, a, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test shim: the estimator with a freshly allocated mask and the
    /// default cached-reach-set coverage predicate.
    fn estimate_union(members: &[NodeId], data: &[Option<VertexData>], m: usize) -> BigFloat {
        let mut mask = StateSet::new(m);
        estimate_union_with_mask(
            members,
            data,
            &mut mask,
            |v| v,
            |e, k| !e.reach.is_disjoint(k),
        )
    }

    fn entry(word: Word, reach_states: &[usize], m: usize) -> SampleEntry {
        let mut reach = StateSet::new(m);
        for &s in reach_states {
            reach.insert(s);
        }
        SampleEntry { word, reach }
    }

    #[test]
    fn no_overlap_sums_plainly() {
        // Two vertices with disjoint U's: W̃ = R(a) + R(b).
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0], m)])),
            Some(VertexData::exact(vec![entry(vec![1], &[1], m)])),
        ];
        let w = estimate_union(&[0, 1], &data, m);
        assert!((w.to_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_overlap_counts_once() {
        // Vertex 1's every sample also lies in U(vertex 0): only vertex 0's
        // mass contributes beyond the first.
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0], m)])),
            Some(VertexData::exact(vec![entry(vec![0], &[0, 1], m)])),
        ];
        let w = estimate_union(&[0, 1], &data, m);
        assert!((w.to_f64() - 1.0).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn partial_overlap_uses_sample_ratio() {
        // Vertex 1 has R = 10 and half its samples covered by vertex 0.
        let m = 4;
        let v0 = VertexData::exact(vec![entry(vec![0], &[0], m)]);
        let mut v1 = VertexData::exact(vec![
            entry(vec![0], &[0, 1], m), // in U(v0)
            entry(vec![1], &[1], m),    // fresh
        ]);
        v1.exact = false;
        v1.r = BigFloat::from_u64(10);
        let data = vec![Some(v0), Some(v1)];
        let w = estimate_union(&[0, 1], &data, m);
        assert!(
            (w.to_f64() - 6.0).abs() < 1e-12,
            "1 + 10·(1/2) = 6, got {w}"
        );
    }

    #[test]
    fn order_matters_as_specified() {
        // ≺ is the member order: swapping changes which vertex absorbs overlap
        // but not the total when sketches are exact.
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0, 1], m)])),
            Some(VertexData::exact(vec![
                entry(vec![0], &[0, 1], m),
                entry(vec![1], &[1], m),
            ])),
        ];
        let w01 = estimate_union(&[0, 1], &data, m).to_f64();
        let w10 = estimate_union(&[1, 0], &data, m).to_f64();
        assert!((w01 - 2.0).abs() < 1e-12);
        assert!((w10 - 2.0).abs() < 1e-12);
    }
}
