//! Per-vertex sketches `(R(s), X(s))` and the union estimator `W̃`.

use lsc_arith::BigFloat;
use lsc_automata::unroll::NodeId;
use lsc_automata::{StateSet, Word};

/// One stored witness sample: the word plus the set of NFA states reachable
/// reading it.
///
/// The reach set is the key implementation optimization over the paper's
/// complexity sketch (DESIGN.md §3.4): every membership test `x ∈ U(s')` the
/// estimator needs — "is there a start→`s'` path labeled `x`?" — becomes a
/// single bit lookup `state(s') ∈ reach(x)`, instead of a fresh breadth-first
/// search per (sample, vertex) pair.
#[derive(Clone, Debug)]
pub struct SampleEntry {
    /// The sampled element of `U(s)` (length = layer of `s`).
    pub word: Word,
    /// NFA states reachable from the initial state reading `word`.
    pub reach: StateSet,
}

/// The sketch stored for one DAG vertex.
#[derive(Clone, Debug)]
pub struct VertexData {
    /// True iff `samples` is exactly `U(s)` (deduplicated), the base case of
    /// §6.4 for vertices with `|U(s)| ≤ k`.
    pub exact: bool,
    /// `R(s)`: the estimate of `|U(s)|` (exact when `exact` is set).
    pub r: BigFloat,
    /// `X(s)`: either all of `U(s)` (exact) or a multiset of `k` near-uniform
    /// samples.
    pub samples: Vec<SampleEntry>,
}

impl VertexData {
    /// An exact vertex: `X(s) = U(s)`, `R(s) = |U(s)|`.
    pub fn exact(samples: Vec<SampleEntry>) -> Self {
        VertexData {
            exact: true,
            r: BigFloat::from_u64(samples.len() as u64),
            samples,
        }
    }
}

/// The union estimator of §6.4:
///
/// ```text
/// W̃ = Σ_{s ∈ T} R(s) · |X(s) ∖ ⋃_{s' ∈ T, s' ≺ s} U(s')| / |X(s)|
/// ```
///
/// `T` is given as DAG vertices (all in one layer) with `≺` = vertex-id order;
/// `data` must hold sketches for each. The inner membership `x ∈ U(s')` is
/// delegated to `member_of(entry, state(s'))` so the caller chooses between
/// the cached reach-set bit (default) and a from-scratch recomputation
/// (ablation B6).
pub fn estimate_union(
    members: &[NodeId],
    data: &[Option<VertexData>],
    state_of: impl Fn(NodeId) -> usize,
    member_of: impl Fn(&SampleEntry, usize) -> bool,
) -> BigFloat {
    let mut total = BigFloat::zero();
    for (i, &u) in members.iter().enumerate() {
        let d = data[u]
            .as_ref()
            .expect("estimate_union: predecessor sketch missing");
        if d.samples.is_empty() {
            // |U(s)| = 0 cannot happen for vertices of the pruned DAG, but an
            // empty sketch contributes nothing either way.
            continue;
        }
        let fresh = d
            .samples
            .iter()
            .filter(|entry| {
                !members[..i]
                    .iter()
                    .any(|&earlier| member_of(entry, state_of(earlier)))
            })
            .count();
        let ratio = fresh as f64 / d.samples.len() as f64;
        total = total.add(d.r.mul_f64(ratio));
    }
    total
}

/// States reachable from the initial state reading `word` — the membership
/// primitive (`x ∈ U(s^t_q)` iff `q ∈ reach_of(nfa, x)` for `|x| = t`).
pub fn reach_of(nfa: &lsc_automata::Nfa, word: &[lsc_automata::Symbol]) -> StateSet {
    let mut cur = StateSet::new(nfa.num_states());
    cur.insert(nfa.initial());
    let mut next = StateSet::new(nfa.num_states());
    for &a in word {
        nfa.step_set(&cur, a, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(word: Word, reach_states: &[usize], m: usize) -> SampleEntry {
        let mut reach = StateSet::new(m);
        for &s in reach_states {
            reach.insert(s);
        }
        SampleEntry { word, reach }
    }

    #[test]
    fn no_overlap_sums_plainly() {
        // Two vertices with disjoint U's: W̃ = R(a) + R(b).
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0], m)])),
            Some(VertexData::exact(vec![entry(vec![1], &[1], m)])),
        ];
        let w = estimate_union(&[0, 1], &data, |v| v, |e, q| e.reach.contains(q));
        assert!((w.to_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_overlap_counts_once() {
        // Vertex 1's every sample also lies in U(vertex 0): only vertex 0's
        // mass contributes beyond the first.
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0], m)])),
            Some(VertexData::exact(vec![entry(vec![0], &[0, 1], m)])),
        ];
        let w = estimate_union(&[0, 1], &data, |v| v, |e, q| e.reach.contains(q));
        assert!((w.to_f64() - 1.0).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn partial_overlap_uses_sample_ratio() {
        // Vertex 1 has R = 10 and half its samples covered by vertex 0.
        let m = 4;
        let v0 = VertexData::exact(vec![entry(vec![0], &[0], m)]);
        let mut v1 = VertexData::exact(vec![
            entry(vec![0], &[0, 1], m), // in U(v0)
            entry(vec![1], &[1], m),    // fresh
        ]);
        v1.exact = false;
        v1.r = BigFloat::from_u64(10);
        let data = vec![Some(v0), Some(v1)];
        let w = estimate_union(&[0, 1], &data, |v| v, |e, q| e.reach.contains(q));
        assert!((w.to_f64() - 6.0).abs() < 1e-12, "1 + 10·(1/2) = 6, got {w}");
    }

    #[test]
    fn order_matters_as_specified() {
        // ≺ is the member order: swapping changes which vertex absorbs overlap
        // but not the total when sketches are exact.
        let m = 4;
        let data = vec![
            Some(VertexData::exact(vec![entry(vec![0], &[0, 1], m)])),
            Some(VertexData::exact(vec![
                entry(vec![0], &[0, 1], m),
                entry(vec![1], &[1], m),
            ])),
        ];
        let w01 = estimate_union(&[0, 1], &data, |v| v, |e, q| e.reach.contains(q)).to_f64();
        let w10 = estimate_union(&[1, 0], &data, |v| v, |e, q| e.reach.contains(q)).to_f64();
        assert!((w01 - 2.0).abs() < 1e-12);
        assert!((w10 - 2.0).abs() < 1e-12);
    }
}
