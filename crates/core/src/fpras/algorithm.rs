//! Algorithm 5: the full FPRAS driver.
//!
//! Processes the unrolled DAG layer by layer. Vertices whose string sets
//! `U(s)` are small (`≤ k`) are *exactly handled*: their full sets are carried
//! forward (step 4). All other vertices get an estimate `R(s)` from the union
//! estimator over their predecessor sketches, then `k` fresh samples from
//! Algorithm 4 (step 5). The final answer is the estimate at the virtual final
//! vertex, whose "predecessors" are the accepting vertices of layer `n`.

use std::sync::Arc;

use lsc_arith::BigFloat;
use lsc_automata::unroll::{NodeId, UnrolledDag};
use lsc_automata::{Nfa, StateSet, Word};
use rand::Rng;

use super::params::FprasParams;
use super::sampler::{sample_once, sample_once_no_rejection, SampleCtx, SamplerScratch};
use super::sketch::{reach_of, SampleEntry, VertexData};

/// Failure events of Algorithm 5 (both output "0" in the paper; we surface
/// them as errors so callers can distinguish them from a genuinely empty
/// language).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FprasError {
    /// Step 5(c)(iii): the retry budget was exhausted while sampling `X(s)`.
    SamplingFailed {
        /// DAG layer of the vertex being sampled.
        layer: usize,
        /// NFA state of the vertex being sampled.
        state: usize,
    },
    /// Step 5(b): a surviving vertex received estimate `R(s) = 0`.
    ZeroEstimate {
        /// DAG layer of the vertex.
        layer: usize,
        /// NFA state of the vertex.
        state: usize,
    },
}

impl std::fmt::Display for FprasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FprasError::SamplingFailed { layer, state } => write!(
                f,
                "FPRAS failure: retry budget exhausted sampling X(s^{layer}_{state})"
            ),
            FprasError::ZeroEstimate { layer, state } => {
                write!(
                    f,
                    "FPRAS failure: R(s^{layer}_{state}) = 0 on a live vertex"
                )
            }
        }
    }
}

impl std::error::Error for FprasError {}

/// The completed sketch structure: estimates and samples for every vertex,
/// ready to answer `COUNT` (estimate) and `GEN` (uniform sampling) queries.
///
/// The automaton and DAG are held behind [`Arc`]s so a prepared instance
/// ([`crate::engine::PreparedInstance`]) can share one unrolling between the
/// sketch, the enumerators, and the exact tables without cloning.
pub struct FprasState {
    nfa: Arc<Nfa>,
    dag: Arc<UnrolledDag>,
    params: FprasParams,
    data: Vec<Option<VertexData>>,
    final_r: BigFloat,
    /// Memoized [`FprasState::approx_bytes`] — the sketch is immutable after
    /// construction, so the sample walk is paid at most once.
    bytes: std::sync::OnceLock<usize>,
}

impl FprasState {
    /// The estimate of `|L_n(N)|` — `R(s_final)` in the paper.
    pub fn estimate(&self) -> BigFloat {
        self.final_r
    }

    /// The parameters the state was built with.
    pub fn params(&self) -> &FprasParams {
        &self.params
    }

    /// The underlying unrolled DAG.
    pub fn dag(&self) -> &UnrolledDag {
        &self.dag
    }

    /// The automaton the state was built from.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// True iff `L_n(N) = ∅` (decided exactly by the DAG pruning, not by the
    /// estimate).
    pub fn is_empty_language(&self) -> bool {
        self.dag.is_empty()
    }

    /// Rough heap footprint of the sketch structure (samples + reach sets +
    /// shared DAG), for the engine's byte-capped instance cache. An estimate,
    /// not an exact allocation count; measured once and memoized (the state
    /// is immutable), so repeated calls are O(1).
    pub fn approx_bytes(&self) -> usize {
        *self.bytes.get_or_init(|| {
            let reach_bytes = self.nfa.num_states().div_ceil(8);
            let mut bytes = self.dag.approx_bytes();
            for d in self.data.iter().flatten() {
                bytes += std::mem::size_of::<VertexData>();
                for s in &d.samples {
                    bytes += std::mem::size_of::<SampleEntry>()
                        + s.word.len() * std::mem::size_of::<lsc_automata::Symbol>()
                        + reach_bytes;
                }
            }
            bytes
        })
    }

    /// The per-vertex sketch table, indexed by DAG node id (`None` = vertex
    /// pruned or never materialized). The snapshot codec serializes this;
    /// [`FprasState::from_parts`] is the load half.
    pub fn vertex_data(&self) -> &[Option<VertexData>] {
        &self.data
    }

    /// Reassembles a state from persisted parts (the snapshot load path).
    /// The caller is responsible for `data`/`final_r` having been produced
    /// by a real run over the same `(nfa, dag, params)` — the snapshot
    /// layer guards this with its payload checksum plus structural
    /// cross-checks, so a restored sketch answers bit-identically to the
    /// build it was saved from.
    pub fn from_parts(
        nfa: Arc<Nfa>,
        dag: Arc<UnrolledDag>,
        params: FprasParams,
        data: Vec<Option<VertexData>>,
        final_r: BigFloat,
    ) -> Self {
        FprasState {
            nfa,
            dag,
            params,
            data,
            final_r,
            bytes: std::sync::OnceLock::new(),
        }
    }

    /// `(exactly handled, sampled)` vertex counts — the base-case coverage
    /// statistic reported by the experiments.
    pub fn vertex_stats(&self) -> (usize, usize) {
        let exact = self.data.iter().flatten().filter(|d| d.exact).count();
        let sampled = self.data.iter().flatten().count() - exact;
        (exact, sampled)
    }

    /// One Las-Vegas attempt at a uniform witness: `Sample` at the virtual
    /// final vertex. `None` is a *rejection* (retry), not emptiness — check
    /// [`FprasState::is_empty_language`] first.
    pub fn sample_witness<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Word> {
        // One walk visits every member set at most once (each lives in a
        // distinct layer), so a per-call memo cache could only be built and
        // dropped — run the one-shot draw uncached. Value-preserving either
        // way; only [`FprasState::witness_sampler`] reuse makes caching pay.
        self.witness_sampler_with_cache(false).sample(rng)
    }

    /// The sampler view over this state's sketches.
    fn sample_ctx(&self) -> SampleCtx<'_> {
        SampleCtx::new(&self.dag, &self.data, &self.nfa, &self.params)
    }

    /// Ablation B1: sampling with the final \[JVV86\] rejection step disabled.
    /// Always returns a witness on nonempty languages, but the distribution is
    /// only approximately uniform — experiment B1 quantifies the bias the
    /// rejection removes.
    pub fn sample_witness_no_rejection<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Word> {
        if self.dag.is_empty() {
            return None;
        }
        let mut ctx = self.sample_ctx();
        ctx.weight_cache = false; // one-shot walk: see sample_witness
        let mut scratch = SamplerScratch::for_ctx(&ctx);
        sample_once_no_rejection(
            &ctx,
            &mut scratch,
            self.dag.accepting(),
            self.dag.word_length(),
            rng,
        )
    }

    /// A reusable witness sampler that keeps one `SamplerScratch` — and
    /// with it one weight memo cache — alive across draws. For workloads that
    /// draw many witnesses (the GEN query under load), this amortizes the
    /// per-level union estimates down to hash lookups after the first few
    /// walks; [`FprasState::sample_witness`] builds and drops the scratch
    /// every call.
    pub fn witness_sampler(&self) -> WitnessSampler<'_> {
        self.witness_sampler_with_cache(self.params.weight_cache)
    }

    fn witness_sampler_with_cache(&self, use_cache: bool) -> WitnessSampler<'_> {
        let ctx = self.sample_ctx();
        let scratch = SamplerScratch::for_ctx(&ctx);
        // φ₀ = c / R(s_final) is invariant for this state's lifetime. An
        // empty language has R = 0 and never walks, so any φ₀ serves.
        let phi0 = if self.final_r.is_zero() {
            BigFloat::zero()
        } else {
            BigFloat::from_f64(self.params.rejection_constant).div(self.final_r)
        };
        WitnessSampler {
            state: self,
            scratch,
            phi0,
            use_cache,
        }
    }

    /// Ablation B2: the final estimate *without* the intersection correction —
    /// a plain sum `Σ_f R(f)` over accepting vertices, overcounting witnesses
    /// accepted at several states. Experiment B2 contrasts it with
    /// [`FprasState::estimate`].
    pub fn estimate_no_dedup(&self) -> BigFloat {
        let mut total = BigFloat::zero();
        for &f in self.dag.accepting() {
            if let Some(d) = &self.data[f] {
                total = total.add(d.r);
            }
        }
        total
    }
}

/// Amortized repeated witness sampling over a built [`FprasState`]: see
/// [`FprasState::witness_sampler`]. Draws are distributed identically to
/// [`FprasState::sample_witness`] (the cache changes no computed value).
pub struct WitnessSampler<'a> {
    state: &'a FprasState,
    scratch: SamplerScratch,
    phi0: BigFloat,
    use_cache: bool,
}

impl WitnessSampler<'_> {
    /// One Las-Vegas attempt: `None` is a rejection (retry), not emptiness.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Word> {
        let state = self.state;
        if state.dag.is_empty() {
            return None;
        }
        let mut ctx = state.sample_ctx();
        ctx.weight_cache = ctx.weight_cache && self.use_cache;
        sample_once(
            &ctx,
            &mut self.scratch,
            state.dag.accepting(),
            state.dag.word_length(),
            self.phi0,
            rng,
        )
    }
}

/// The owning counterpart of [`WitnessSampler`]: shares the sketch behind an
/// [`Arc`] instead of a borrow, so a long-lived draw stream (the engine's
/// `GenStream`) can hold sampler and state together without a
/// self-referential struct. Draws consume the rng stream identically to
/// [`WitnessSampler::sample`] — for a fixed rng state the two produce the
/// same words, bit for bit.
pub struct SharedWitnessSampler {
    state: Arc<FprasState>,
    scratch: SamplerScratch,
    phi0: BigFloat,
}

impl SharedWitnessSampler {
    /// A sampler over a shared sketch, with the scratch (and weight memo
    /// cache, per the state's params) kept alive across draws.
    pub fn new(state: Arc<FprasState>) -> Self {
        let (scratch, phi0) = {
            let borrowed = state.witness_sampler();
            (borrowed.scratch, borrowed.phi0)
        };
        SharedWitnessSampler {
            state,
            scratch,
            phi0,
        }
    }

    /// The shared sketch state.
    pub fn state(&self) -> &Arc<FprasState> {
        &self.state
    }

    /// One Las-Vegas attempt: `None` is a rejection (retry), not emptiness.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Word> {
        if self.state.dag.is_empty() {
            return None;
        }
        let ctx = self.state.sample_ctx();
        sample_once(
            &ctx,
            &mut self.scratch,
            self.state.dag.accepting(),
            self.state.dag.word_length(),
            self.phi0,
            rng,
        )
    }
}

/// Runs Algorithm 5, producing the sketch state.
///
/// # Errors
/// Returns the failure events of steps 5(b)/5(c); under sensible parameters
/// these have vanishing probability (Theorem 22 bounds them by `e^{-Ω(nm)}`
/// with proof-grade constants).
pub fn run_fpras<R: Rng + ?Sized>(
    nfa: &Nfa,
    n: usize,
    params: FprasParams,
    rng: &mut R,
) -> Result<FprasState, FprasError> {
    let dag = Arc::new(UnrolledDag::build(nfa, n));
    run_fpras_on(Arc::new(nfa.clone()), dag, params, rng)
}

/// [`run_fpras`] over a pre-built (shared) unrolled DAG — the engine's warm
/// path: `prepare` pays for the unrolling once, and the sketch, enumerators,
/// and exact tables all read the same `Arc`. The DAG must be the unrolling of
/// `nfa` at the target length; the computation (and hence every estimate and
/// sample, bit for bit) is identical to [`run_fpras`], which builds a fresh
/// DAG from the same inputs.
///
/// # Errors
/// Returns the failure events of steps 5(b)/5(c), exactly as [`run_fpras`].
pub fn run_fpras_on<R: Rng + ?Sized>(
    nfa: Arc<Nfa>,
    dag: Arc<UnrolledDag>,
    params: FprasParams,
    rng: &mut R,
) -> Result<FprasState, FprasError> {
    let n = dag.word_length();
    let mut data: Vec<Option<VertexData>> = vec![None; dag.num_nodes()];
    if dag.is_empty() {
        return Ok(FprasState {
            nfa,
            dag,
            params,
            data,
            final_r: BigFloat::zero(),
            bytes: std::sync::OnceLock::new(),
        });
    }

    // Step 4 — exactly handled vertices, in layer order. The start vertex has
    // U = {ε}; a later vertex is exact if all its predecessors are and the
    // deduplicated union of their extended words stays ≤ k.
    let nfa_ref: &Nfa = &nfa;
    let start = dag.start().expect("nonempty dag has a start");
    let mut eps_reach = StateSet::new(nfa.num_states());
    eps_reach.insert(nfa.initial());
    data[start] = Some(VertexData::exact(vec![SampleEntry {
        word: Vec::new(),
        reach: eps_reach,
    }]));
    for t in 1..=n {
        if !params.exact_handling {
            break; // ablation B4: only the start vertex stays exact
        }
        for &v in dag.layer(t) {
            let preds = dag.in_edges(v);
            let all_exact = preds
                .iter()
                .all(|&(_, u)| data[u].as_ref().is_some_and(|d| d.exact));
            if !all_exact {
                continue;
            }
            let mut extended: Vec<SampleEntry> = Vec::new();
            for &(a, u) in preds {
                for entry in &data[u].as_ref().expect("checked exact").samples {
                    let mut word = Vec::with_capacity(entry.word.len() + 1);
                    word.extend_from_slice(&entry.word);
                    word.push(a);
                    let mut reach = StateSet::new(nfa.num_states());
                    nfa.step_set(&entry.reach, a, &mut reach);
                    extended.push(SampleEntry { word, reach });
                }
            }
            extended.sort_by(|x, y| x.word.cmp(&y.word));
            extended.dedup_by(|x, y| x.word == y.word);
            if extended.len() <= params.k {
                data[v] = Some(VertexData::exact(extended));
            }
        }
    }

    // Step 5 — estimate and sample the remaining vertices, in layer order.
    // Within one layer, vertices are independent: estimates and samples read
    // only strictly earlier layers, so the per-vertex work parallelizes with
    // plain scoped threads (each vertex gets its own seed drawn up front, so
    // results are bit-identical at any thread count). Each worker owns one
    // `SamplerScratch` — and with it one weight cache, kept thread-local so
    // no cross-thread coordination can perturb determinism — carried across
    // all layers: cache entries for a member set at layer ℓ read only layer
    // ℓ-1 sketches, which never change once written, so entries stay valid
    // for the whole run.
    let mut workers: Vec<SamplerScratch> = (0..params.threads.max(1))
        .map(|_| SamplerScratch::new(nfa.num_states(), dag.alphabet_size()))
        .collect();
    for t in 1..=n {
        let pending: Vec<NodeId> = dag
            .layer(t)
            .iter()
            .copied()
            .filter(|&v| data[v].is_none())
            .collect();
        if pending.is_empty() {
            continue;
        }
        let seeds: Vec<u64> = pending.iter().map(|_| rng.gen()).collect();
        let threads = params.threads.clamp(1, pending.len());
        let results: Vec<Result<VertexData, FprasError>> = if threads == 1 {
            let scratch = &mut workers[0];
            pending
                .iter()
                .zip(&seeds)
                .map(|(&v, &seed)| build_vertex(&dag, &data, nfa_ref, &params, scratch, t, v, seed))
                .collect()
        } else {
            let mut results: Vec<Option<Result<VertexData, FprasError>>> =
                (0..pending.len()).map(|_| None).collect();
            let chunk = pending.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let data_ref = &data;
                let dag_ref = &dag;
                let params_ref = &params;
                for (((vs, ss), out), scratch) in pending
                    .chunks(chunk)
                    .zip(seeds.chunks(chunk))
                    .zip(results.chunks_mut(chunk))
                    .zip(workers.iter_mut())
                {
                    scope.spawn(move || {
                        for ((&v, &seed), slot) in vs.iter().zip(ss).zip(out) {
                            *slot = Some(build_vertex(
                                dag_ref, data_ref, nfa_ref, params_ref, scratch, t, v, seed,
                            ));
                        }
                    });
                }
            });
            results
                .into_iter()
                .map(|r| r.expect("thread filled slot"))
                .collect()
        };
        for (&v, result) in pending.iter().zip(results) {
            data[v] = Some(result?);
        }
    }

    // The virtual final vertex: its single predecessor partition is the
    // accepting set, so R(s_final) is one union estimate — through the same
    // ctx dispatch as every per-vertex estimate.
    let final_r = {
        let ctx = SampleCtx::new(&dag, &data, nfa_ref, &params);
        workers[0].estimate(&ctx, dag.accepting())
    };
    Ok(FprasState {
        nfa,
        dag,
        params,
        data,
        final_r,
        bytes: std::sync::OnceLock::new(),
    })
}

/// One vertex of step 5: estimate `R(v)` and draw the `k` samples of `X(v)`,
/// reading only strictly earlier layers of `data`. `scratch` (with its
/// weight cache) is owned by the calling worker and reused across vertices.
// hot-path DP kernel: params and scratch buffers are passed by slot to stay
// allocation-free per vertex; bundling them into a struct adds an indirection
#[allow(clippy::too_many_arguments)]
fn build_vertex(
    dag: &UnrolledDag,
    data: &[Option<VertexData>],
    nfa: &Nfa,
    params: &FprasParams,
    scratch: &mut SamplerScratch,
    t: usize,
    v: NodeId,
    seed: u64,
) -> Result<VertexData, FprasError> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let state = dag.node_info(v).1;
    let ctx = SampleCtx::new(dag, data, nfa, params);
    let r = estimate_vertex(&ctx, scratch, v);
    if r.is_zero() {
        return Err(FprasError::ZeroEstimate { layer: t, state });
    }
    let phi0 = BigFloat::from_f64(params.rejection_constant).div(r);
    // Safety net: per-attempt success probability scales with the rejection
    // constant, so the retry budget must too (the paper's `⌈(nm/δ)^4⌉` dwarfs
    // both). 40/c puts per-sample failure below e⁻³⁸ even at the paper's
    // c = e⁻⁴.
    let attempts = params
        .attempts
        .max((40.0 / params.rejection_constant).ceil() as usize);
    let mut samples: Vec<SampleEntry> = Vec::with_capacity(params.k);
    while samples.len() < params.k {
        let mut drawn = None;
        for _ in 0..attempts {
            if let Some(word) = sample_once(&ctx, scratch, &[v], t, phi0, &mut rng) {
                drawn = Some(word);
                break;
            }
        }
        let Some(word) = drawn else {
            return Err(FprasError::SamplingFailed { layer: t, state });
        };
        let reach = reach_of(nfa, &word);
        samples.push(SampleEntry { word, reach });
    }
    Ok(VertexData {
        exact: false,
        r,
        samples,
    })
}

/// `R(v) = Σ_b W̃_b(v)` over the per-symbol predecessor partitions.
fn estimate_vertex(ctx: &SampleCtx<'_>, scratch: &mut SamplerScratch, v: NodeId) -> BigFloat {
    let mut r = BigFloat::zero();
    let in_edges = ctx.dag.in_edges(v);
    let mut part: Vec<NodeId> = Vec::new();
    let mut i = 0;
    while i < in_edges.len() {
        let symbol = in_edges[i].0;
        part.clear();
        // `in_edges` is sorted by (symbol, source): each symbol run is
        // already ascending, so only duplicates need removing.
        while i < in_edges.len() && in_edges[i].0 == symbol {
            part.push(in_edges[i].1);
            i += 1;
        }
        part.dedup();
        r = r.add(scratch.estimate(ctx, &part));
    }
    r
}

/// Convenience wrapper: build the state and return the count estimate.
///
/// # Errors
/// Propagates [`FprasError`] from [`run_fpras`].
pub fn approx_count<R: Rng + ?Sized>(
    nfa: &Nfa,
    n: usize,
    params: FprasParams,
    rng: &mut R,
) -> Result<BigFloat, FprasError> {
    run_fpras(nfa, n, params, rng).map(|s| s.estimate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::exact::count_nfa_via_determinization;
    use lsc_automata::families::{ambiguity_gap_nfa, blowup_nfa, universal_nfa};
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rel_err(estimate: &BigFloat, truth: f64) -> f64 {
        (estimate.to_f64() - truth).abs() / truth
    }

    #[test]
    fn small_instances_are_fully_exact() {
        // Everything fits under k = 64, so the "estimate" is exact and no
        // sampling happens at all.
        let ab = Alphabet::binary();
        let n = Regex::parse("(0|1)*1(0|1)*", &ab).unwrap().compile();
        let mut rng = StdRng::seed_from_u64(1);
        let state = run_fpras(&n, 5, FprasParams::quick(), &mut rng).unwrap();
        assert_eq!(state.estimate().to_f64(), 31.0); // 2^5 - 1
        let (exact, sampled) = state.vertex_stats();
        assert!(exact > 0);
        assert_eq!(sampled, 0);
    }

    #[test]
    fn universal_language_scales() {
        let u = universal_nfa(Alphabet::binary());
        let mut rng = StdRng::seed_from_u64(2);
        let est = approx_count(&u, 30, FprasParams::quick(), &mut rng).unwrap();
        let truth = 2f64.powi(30);
        assert!(rel_err(&est, truth) < 0.15, "est {est}, truth {truth}");
    }

    #[test]
    fn blowup_family_estimate() {
        let n = blowup_nfa(6);
        let len = 14;
        let truth = count_nfa_via_determinization(&n, len).to_f64();
        let mut rng = StdRng::seed_from_u64(3);
        let est = approx_count(&n, len, FprasParams::quick(), &mut rng).unwrap();
        assert!(rel_err(&est, truth) < 0.15, "est {est}, truth {truth}");
    }

    #[test]
    fn ambiguity_gap_estimate() {
        // The family that breaks the naive estimator: the FPRAS handles it.
        let n = ambiguity_gap_nfa(4);
        let len = 12;
        let truth = count_nfa_via_determinization(&n, len).to_f64();
        let mut rng = StdRng::seed_from_u64(4);
        let est = approx_count(&n, len, FprasParams::quick(), &mut rng).unwrap();
        assert!(rel_err(&est, truth) < 0.15, "est {est}, truth {truth}");
    }

    #[test]
    fn empty_language_is_zero_without_error() {
        let ab = Alphabet::binary();
        let n = Regex::parse("01", &ab).unwrap().compile();
        let mut rng = StdRng::seed_from_u64(5);
        let state = run_fpras(&n, 7, FprasParams::quick(), &mut rng).unwrap();
        assert!(state.estimate().is_zero());
        assert!(state.is_empty_language());
        assert_eq!(state.sample_witness(&mut rng), None);
    }

    #[test]
    fn witness_samples_are_members() {
        let n = blowup_nfa(4);
        let len = 10;
        let mut rng = StdRng::seed_from_u64(6);
        let state = run_fpras(&n, len, FprasParams::quick(), &mut rng).unwrap();
        let mut got = 0;
        for _ in 0..200 {
            if let Some(w) = state.sample_witness(&mut rng) {
                assert_eq!(w.len(), len);
                assert!(n.accepts(&w), "sampled non-member {w:?}");
                got += 1;
            }
        }
        assert!(got > 0, "no sample succeeded in 200 attempts");
    }

    #[test]
    fn estimates_far_beyond_f64_counts() {
        // n = 1030 on the universal automaton: |L_n| = 2^1030 ≈ 10^310, past
        // even f64's exponent range. The estimate must survive in BigFloat and
        // agree with the exact BigNat count in log space. A tiny sample budget
        // suffices: with one predecessor per vertex and no intersections the
        // sketch ratios are exactly 1, so R(s) is exact for any k ≥ 1 — this
        // test probes arithmetic range, not sampling accuracy. For the same
        // reason the rejection sampler's acceptance probability is exactly the
        // rejection constant, so a high constant keeps the walk cheap without
        // risking φ > 1.
        use crate::count::exact::count_ufa;
        let u = universal_nfa(Alphabet::binary());
        let n = 1030;
        let exact = count_ufa(&u, n).unwrap();
        let exact_log10 = lsc_arith::BigFloat::from_bignat(&exact).log10();
        assert!(exact_log10 > 308.0);
        let mut rng = StdRng::seed_from_u64(61);
        let params = FprasParams {
            k: 1,
            rejection_constant: 0.5,
            ..FprasParams::quick()
        };
        let est = approx_count(&u, n, params, &mut rng).unwrap();
        assert!(est.to_f64().is_infinite(), "past f64 range by design");
        assert!(
            (est.log10() - exact_log10).abs() < 0.05,
            "log10 est {} vs exact {}",
            est.log10(),
            exact_log10
        );
    }

    #[test]
    fn parallel_sampling_is_deterministic() {
        // Same master seed ⇒ identical estimate at 1, 2, and 4 threads
        // (per-vertex seeds are drawn before the fan-out).
        let nfa = ambiguity_gap_nfa(4);
        let n = 10;
        let mut baseline = None;
        for threads in [1usize, 2, 4] {
            let mut rng = StdRng::seed_from_u64(77);
            let params = FprasParams::quick().with_threads(threads);
            let state = run_fpras(&nfa, n, params, &mut rng).unwrap();
            let est = state.estimate().to_f64();
            match baseline {
                None => baseline = Some(est),
                Some(b) => assert_eq!(est, b, "threads={threads} diverged"),
            }
        }
    }

    #[test]
    fn wide_alphabet_instances() {
        // The paper states the FPRAS for Σ = {0,1}; our generalization
        // partitions predecessors per symbol. Exercise a ternary alphabet.
        let abc = Alphabet::from_chars(&['a', 'b', 'c']);
        let nfa = Regex::parse("(a|b|c)*a(b|c)(a|b|c)", &abc)
            .unwrap()
            .compile();
        let n = 9;
        let truth = count_nfa_via_determinization(&nfa, n).to_f64();
        let mut rng = StdRng::seed_from_u64(60);
        let est = approx_count(&nfa, n, FprasParams::quick(), &mut rng)
            .unwrap()
            .to_f64();
        assert!(rel_err(&lsc_arith::BigFloat::from_f64(est), truth) < 0.15);
        // And sampling over it returns valid ternary witnesses.
        let state = run_fpras(&nfa, n, FprasParams::quick(), &mut rng).unwrap();
        let w = (0..200)
            .find_map(|_| state.sample_witness(&mut rng))
            .expect("a sample succeeds");
        assert!(nfa.accepts(&w));
    }

    #[test]
    fn ablation_hooks_behave() {
        let nfa = ambiguity_gap_nfa(3);
        let len = 8;
        let truth = count_nfa_via_determinization(&nfa, len).to_f64();
        let mut rng = StdRng::seed_from_u64(50);
        // B4: disabling exact handling still estimates well, just samples more.
        let state = run_fpras(
            &nfa,
            len,
            FprasParams::quick().without_exact_handling(),
            &mut rng,
        )
        .unwrap();
        let (exact, sampled) = state.vertex_stats();
        assert_eq!(exact, 1, "only the start vertex is exact under B4");
        assert!(sampled > 0);
        assert!(rel_err(&state.estimate(), truth) < 0.25);
        // B6: recomputing membership must give identical estimates for the
        // same seed (it is the same computation, just slower).
        let mut rng_a = StdRng::seed_from_u64(51);
        let mut rng_b = StdRng::seed_from_u64(51);
        let fast = run_fpras(&nfa, len, FprasParams::quick(), &mut rng_a).unwrap();
        let slow = run_fpras(
            &nfa,
            len,
            FprasParams::quick().with_recomputed_membership(),
            &mut rng_b,
        )
        .unwrap();
        assert_eq!(fast.estimate().to_f64(), slow.estimate().to_f64());
        // B1: the unrejected sampler always returns on nonempty languages.
        for _ in 0..20 {
            assert!(fast.sample_witness_no_rejection(&mut rng).is_some());
        }
        // B2: the undeduped final estimate can only be ≥ the corrected one.
        assert!(
            fast.estimate_no_dedup().partial_cmp_total(&fast.estimate())
                != std::cmp::Ordering::Less
        );
    }

    #[test]
    fn epsilon_length_instance() {
        let ab = Alphabet::binary();
        let star = Regex::parse("(0|1)*", &ab).unwrap().compile();
        let mut rng = StdRng::seed_from_u64(7);
        let state = run_fpras(&star, 0, FprasParams::quick(), &mut rng).unwrap();
        assert_eq!(state.estimate().to_f64(), 1.0);
        // Each attempt is Bernoulli(rejection_constant); retry until accepted.
        let w = (0..1000).find_map(|_| state.sample_witness(&mut rng));
        assert_eq!(w, Some(vec![]));
    }
}
