//! Algorithm 4: `Sample(T, w, φ)` — the backward rejection sampler.
//!
//! Walks the unrolled DAG from a target set `T` back toward the start vertex,
//! choosing at each level the *last* symbol of the remaining prefix with
//! probability proportional to the estimated partition sizes `W̃_b`, while
//! accumulating `φ ← φ / p_b`. At the start vertex the built word is returned
//! with probability `φ` — the Jerrum–Valiant–Vazirani rejection step that turns
//! the approximately-correct walk distribution into an *exactly* uniform one
//! conditioned on success (Proposition 18 / Fact 1).
//!
//! # Hot-path layout (DESIGN.md §3.6)
//!
//! Algorithm 5 invokes this sampler `k × attempts` times per DAG vertex, and
//! every invocation from the same vertex walks the same member sets through
//! the same layers. Two structures exploit that:
//!
//! * [`WeightCache`] memoizes, per member set, the per-symbol predecessor
//!   partitions and the selection probabilities `p_b = W̃_b / ΣW̃` — after the
//!   first walk touches a member set, subsequent walks through it reduce to a
//!   hash lookup plus one RNG draw. The cache is *per worker* (one per scoped
//!   thread chunk in `algorithm.rs`), never shared, so the determinism
//!   guarantee — same master seed ⇒ bit-identical output at any thread
//!   count — is preserved: cached values are pure functions of earlier-layer
//!   sketches, which are frozen before any walk can read them.
//! * [`SamplerScratch`] owns every buffer the walk needs (member-set
//!   double-buffer, per-symbol grouping buckets, weight/probability vectors,
//!   the estimator's prefix mask), so the steady-state walk allocates only
//!   the returned word.

use lsc_arith::BigFloat;
use lsc_automata::unroll::{NodeId, UnrolledDag};
use lsc_automata::{Nfa, Symbol, Word};
use rand::Rng;
use std::collections::HashMap;

use super::params::FprasParams;
use super::sketch::{
    estimate_union_packed, estimate_union_quadratic, estimate_union_with_mask, reach_of, MaskArena,
    SampleEntry, VertexData,
};

/// Read-only view of the sketches the sampler consults.
pub(crate) struct SampleCtx<'a> {
    pub dag: &'a UnrolledDag,
    pub data: &'a [Option<VertexData>],
    pub nfa: &'a Nfa,
    /// Ablation B6: recompute reach sets instead of using the cached ones.
    pub recompute_membership: bool,
    /// Ablation B9 (seed baseline): quadratic membership scan in the
    /// estimator instead of the prefix mask.
    pub quadratic_estimator: bool,
    /// Ablation B9: memoize partition weights across walks (default on).
    pub weight_cache: bool,
}

impl<'a> SampleCtx<'a> {
    /// The single place the `FprasParams` knobs are threaded into a sampler
    /// view — every estimate site (per-vertex, final vertex, witness draws)
    /// must dispatch identically.
    pub(crate) fn new(
        dag: &'a UnrolledDag,
        data: &'a [Option<VertexData>],
        nfa: &'a Nfa,
        params: &FprasParams,
    ) -> Self {
        SampleCtx {
            dag,
            data,
            nfa,
            recompute_membership: params.recompute_membership,
            quadratic_estimator: params.quadratic_estimator,
            weight_cache: params.weight_cache,
        }
    }
}

impl SampleCtx<'_> {
    fn state_of(&self, v: NodeId) -> usize {
        self.dag.node_info(v).1
    }

    /// `x ∈ U(s)` for the NFA state of `s` — cached or recomputed (B6). Used
    /// by the quadratic estimator path.
    pub(crate) fn member_of(&self, entry: &SampleEntry, state: usize) -> bool {
        if self.recompute_membership {
            reach_of(self.nfa, &entry.word).contains(state)
        } else {
            entry.reach.contains(state)
        }
    }

    /// `W̃` over `members`, dispatching between the word-level packed kernel
    /// (default), the scalar prefix-mask walk with recomputed reach sets
    /// (ablation B6), and the quadratic baseline (B9). All three produce
    /// bit-identical values; only the membership-test cost differs.
    pub(crate) fn estimate(&self, members: &[NodeId], arena: &mut MaskArena) -> BigFloat {
        if self.quadratic_estimator {
            estimate_union_quadratic(
                members,
                self.data,
                |v| self.state_of(v),
                |e, q| self.member_of(e, q),
            )
        } else if self.recompute_membership {
            estimate_union_with_mask(
                members,
                self.data,
                arena,
                |v| self.state_of(v),
                |e, a| a.intersects(&reach_of(self.nfa, &e.word)),
            )
        } else {
            estimate_union_packed(members, self.data, arena, |v| self.state_of(v))
        }
    }
}

/// One memoized walk level: the per-symbol predecessor partitions `T_b` of a
/// member set, with their selection probabilities.
struct CacheEntry {
    /// `(symbol, T_b)` in ascending symbol order, each sorted and deduped.
    partitions: Vec<(Symbol, Vec<NodeId>)>,
    /// `p_b = W̃_b / ΣW̃`, aligned with `partitions`.
    probs: Vec<f64>,
    /// `ΣW̃ = 0`: the walk dies here (cached too — it is just as deterministic).
    dead: bool,
}

/// Memo of [`CacheEntry`]s keyed by member set (sorted vertex ids; layer is
/// implied since vertex ids are globally unique). Sound for as long as the
/// sketches the entries read stay frozen — i.e. for a whole Algorithm 5 run,
/// because entries for a member set at layer `ℓ` read only layer `ℓ-1`
/// sketches, which are complete before any walk can reach them.
#[derive(Default)]
pub(crate) struct WeightCache {
    map: HashMap<Vec<NodeId>, CacheEntry>,
    /// Approximate resident bytes of stored keys and entries, maintained so
    /// the cap bounds memory rather than entry count (entries vary from a
    /// few dozen bytes to KBs on wide member sets).
    approx_bytes: usize,
}

impl WeightCache {
    /// Insertion stops at this approximate resident size so a long-lived
    /// sampler (a GEN workload drawing millions of witnesses) cannot grow
    /// memory without bound on automata whose walks keep visiting fresh
    /// member sets. Uncached levels are recomputed — values are identical
    /// either way, so the cap cannot perturb determinism.
    const MAX_BYTES: usize = 256 << 20;

    /// Rough resident size of one key/entry pair (vector contents plus a
    /// fixed allowance for the map slot and vector headers).
    fn entry_bytes(key: &[NodeId], entry: &CacheEntry) -> usize {
        let partition_bytes: usize = entry
            .partitions
            .iter()
            .map(|(_, p)| 32 + p.len() * std::mem::size_of::<NodeId>())
            .sum();
        96 + std::mem::size_of_val(key)
            + partition_bytes
            + entry.probs.len() * std::mem::size_of::<f64>()
    }
}

/// Reusable buffers for the backward walk: one per worker, threaded through
/// every `sample_*` call so the steady-state walk performs no allocation.
pub(crate) struct SamplerScratch {
    /// Current member set `T` (double-buffered with `next_members`).
    members: Vec<NodeId>,
    next_members: Vec<NodeId>,
    /// Prefix-mask arena for the linear union estimator (nonzero-word index
    /// included, so the packed kernel scans only live words).
    arena: MaskArena,
    /// Per-symbol predecessor buckets, indexed by symbol; `touched` lists the
    /// nonempty ones (ascending after sort). Pre-sized from the alphabet so
    /// grouping is O(edges), replacing the seed's `binary_search` +
    /// `Vec::insert` (O(|Σ|) shifts per edge) grouping.
    buckets: Vec<Vec<NodeId>>,
    touched: Vec<Symbol>,
    weights: Vec<BigFloat>,
    probs: Vec<f64>,
    cache: WeightCache,
}

impl SamplerScratch {
    pub(crate) fn new(num_states: usize, alphabet_size: usize) -> Self {
        SamplerScratch {
            members: Vec::new(),
            next_members: Vec::new(),
            arena: MaskArena::new(num_states),
            buckets: vec![Vec::new(); alphabet_size],
            touched: Vec::new(),
            weights: Vec::new(),
            probs: Vec::new(),
            cache: WeightCache::default(),
        }
    }

    /// Scratch sized for `ctx` (mask over the NFA states, one bucket per
    /// alphabet symbol).
    pub(crate) fn for_ctx(ctx: &SampleCtx<'_>) -> Self {
        SamplerScratch::new(ctx.nfa.num_states(), ctx.dag.alphabet_size())
    }

    /// `W̃` over `members` using this scratch's mask arena.
    pub(crate) fn estimate(&mut self, ctx: &SampleCtx<'_>, members: &[NodeId]) -> BigFloat {
        ctx.estimate(members, &mut self.arena)
    }
}

/// Groups the predecessors of `members` by symbol into `buckets`, recording
/// nonempty symbols in `touched` (ascending). Each bucket is sorted and
/// deduplicated — the partitions `T_b` of Algorithm 4 step 3.
fn group_predecessors(
    ctx: &SampleCtx<'_>,
    members: &[NodeId],
    buckets: &mut [Vec<NodeId>],
    touched: &mut Vec<Symbol>,
) {
    for &a in touched.iter() {
        buckets[a as usize].clear();
    }
    touched.clear();
    for &v in members {
        for &(a, u) in ctx.dag.in_edges(v) {
            let bucket = &mut buckets[a as usize];
            if bucket.is_empty() {
                touched.push(a);
            }
            bucket.push(u);
        }
    }
    touched.sort_unstable();
    for &a in touched.iter() {
        let bucket = &mut buckets[a as usize];
        bucket.sort_unstable();
        bucket.dedup();
    }
}

/// Computes the selection probabilities for the grouped partitions into
/// `probs`; returns `false` if every partition weight is zero (walk dies).
/// Weight and total accumulation run in ascending symbol order — the same
/// order as the seed implementation, keeping the floats bit-identical.
fn level_probs(
    ctx: &SampleCtx<'_>,
    buckets: &[Vec<NodeId>],
    touched: &[Symbol],
    arena: &mut MaskArena,
    weights: &mut Vec<BigFloat>,
    probs: &mut Vec<f64>,
) -> bool {
    weights.clear();
    let mut total = BigFloat::zero();
    for &a in touched {
        let w = ctx.estimate(&buckets[a as usize], arena);
        total = total.add(w);
        weights.push(w);
    }
    if total.is_zero() {
        return false;
    }
    probs.clear();
    probs.extend(weights.iter().map(|w| w.ratio_f64(&total)));
    true
}

/// Draws a partition index with the cumulative scan the seed used (one
/// `f64` per level; float rounding can leave the cumulative a hair below 1,
/// in which case the last positive-probability partition wins).
fn choose_partition<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> Option<usize> {
    let draw: f64 = rng.gen();
    let mut cumulative = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        cumulative += p;
        if draw < cumulative && p > 0.0 {
            return Some(i);
        }
    }
    (0..probs.len()).rev().find(|&i| probs[i] > 0.0)
}

/// One invocation of `Sample(T₀, ε, φ₀)` where `T₀` lives in layer `layer0`.
///
/// Returns the sampled word (uniform over `⋃_{s∈T₀} U(s)` conditioned on
/// success, under the Proposition 18 assumptions) or `None` for a rejection.
///
/// Two call shapes cover the whole paper:
/// * `T₀ = {v}` — drawing the sketch samples `X(v)` (Algorithm 5 step 5(c));
/// * `T₀ =` accepting vertices at layer `n` — drawing a uniform witness at the
///   virtual final vertex (the PLVUG of Corollary 23). The paper routes this
///   through an explicit `s_final` vertex with a pseudo-symbol edge; starting
///   the recursion at the accepting set is the same computation without the
///   cosmetic extra symbol.
pub(crate) fn sample_once<R: Rng + ?Sized>(
    ctx: &SampleCtx<'_>,
    scratch: &mut SamplerScratch,
    t0: &[NodeId],
    layer0: usize,
    phi0: BigFloat,
    rng: &mut R,
) -> Option<Word> {
    sample_inner(ctx, scratch, t0, layer0, phi0, true, rng)
}

/// Ablation B1: the same walk *without* the final rejection step — the output
/// distribution is then only approximately uniform, with bias driven by the
/// estimate errors (this is exactly what the \[JVV86\] rejection corrects).
pub(crate) fn sample_once_no_rejection<R: Rng + ?Sized>(
    ctx: &SampleCtx<'_>,
    scratch: &mut SamplerScratch,
    t0: &[NodeId],
    layer0: usize,
    rng: &mut R,
) -> Option<Word> {
    sample_inner(ctx, scratch, t0, layer0, BigFloat::one(), false, rng)
}

fn sample_inner<R: Rng + ?Sized>(
    ctx: &SampleCtx<'_>,
    scratch: &mut SamplerScratch,
    t0: &[NodeId],
    layer0: usize,
    phi0: BigFloat,
    rejection: bool,
    rng: &mut R,
) -> Option<Word> {
    let SamplerScratch {
        members,
        next_members,
        arena,
        buckets,
        touched,
        weights,
        probs,
        cache,
    } = scratch;
    members.clear();
    members.extend_from_slice(t0);
    let mut layer = layer0;
    let mut phi = phi0;
    let mut rev: Word = Vec::with_capacity(layer0);
    loop {
        // Step 1: fail unless φ ∈ (0, 1].
        if rejection
            && (phi.is_zero()
                || phi.partial_cmp_total(&BigFloat::one()) == std::cmp::Ordering::Greater)
        {
            return None;
        }
        // Step 2: at the start vertex, accept the built word with probability φ.
        if layer == 0 {
            debug_assert_eq!(members.len(), 1, "layer 0 holds only the start vertex");
            if !rejection || rng.gen::<f64>() < phi.to_f64() {
                rev.reverse();
                return Some(rev);
            }
            return None;
        }
        // Step 3: partition predecessors by symbol and weigh each by W̃_b —
        // memoized per member set, or recomputed per level under the B9
        // ablation. Both paths produce bit-identical partitions and
        // probabilities and consume the RNG identically (one draw per live
        // level, none on dead levels).
        let (symbol, p) = 'level: {
            if ctx.weight_cache {
                if let Some(entry) = cache.map.get(members.as_slice()) {
                    if entry.dead {
                        return None;
                    }
                    let chosen = choose_partition(&entry.probs, rng)?;
                    let (a, part) = &entry.partitions[chosen];
                    next_members.clear();
                    next_members.extend_from_slice(part);
                    break 'level (*a, entry.probs[chosen]);
                }
            }
            // Miss (or cache disabled): compute the level in scratch.
            group_predecessors(ctx, members, buckets, touched);
            let live = level_probs(ctx, buckets, touched, arena, weights, probs);
            if ctx.weight_cache && cache.approx_bytes < WeightCache::MAX_BYTES {
                // Dead levels store empty partition/prob vectors: `probs`
                // still holds the previous level's values when `level_probs`
                // bails early, and a dead entry must not carry them. At the
                // cap, skip the entry construction entirely — the clones
                // would only be dropped.
                let entry = if live {
                    CacheEntry {
                        partitions: touched
                            .iter()
                            .map(|&a| (a, buckets[a as usize].clone()))
                            .collect(),
                        probs: probs.clone(),
                        dead: false,
                    }
                } else {
                    CacheEntry {
                        partitions: Vec::new(),
                        probs: Vec::new(),
                        dead: true,
                    }
                };
                cache.approx_bytes += WeightCache::entry_bytes(members, &entry);
                cache.map.insert(members.clone(), entry);
            }
            if !live {
                return None;
            }
            let chosen = choose_partition(probs, rng)?;
            let a = touched[chosen];
            next_members.clear();
            next_members.extend_from_slice(&buckets[a as usize]);
            (a, probs[chosen])
        };
        // Choose partition b with probability p_b = W̃_b / ΣW̃. The f64
        // probabilities used for selection are also the ones divided into φ,
        // keeping the acceptance probability algebraically exact.
        phi = phi.mul_f64(1.0 / p);
        rev.push(symbol);
        std::mem::swap(members, next_members);
        layer -= 1;
    }
}
