//! Algorithm 4: `Sample(T, w, φ)` — the backward rejection sampler.
//!
//! Walks the unrolled DAG from a target set `T` back toward the start vertex,
//! choosing at each level the *last* symbol of the remaining prefix with
//! probability proportional to the estimated partition sizes `W̃_b`, while
//! accumulating `φ ← φ / p_b`. At the start vertex the built word is returned
//! with probability `φ` — the Jerrum–Valiant–Vazirani rejection step that turns
//! the approximately-correct walk distribution into an *exactly* uniform one
//! conditioned on success (Proposition 18 / Fact 1).

use lsc_arith::BigFloat;
use lsc_automata::unroll::{NodeId, UnrolledDag};
use lsc_automata::{Nfa, Symbol, Word};
use rand::Rng;

use super::sketch::{estimate_union, reach_of, SampleEntry, VertexData};

/// Read-only view of the sketches the sampler consults.
pub(crate) struct SampleCtx<'a> {
    pub dag: &'a UnrolledDag,
    pub data: &'a [Option<VertexData>],
    pub nfa: &'a Nfa,
    /// Ablation B6: recompute reach sets instead of using the cached ones.
    pub recompute_membership: bool,
}

impl SampleCtx<'_> {
    fn state_of(&self, v: NodeId) -> usize {
        self.dag.node_info(v).1
    }

    /// `x ∈ U(s)` for the NFA state of `s` — cached or recomputed (B6).
    pub(crate) fn member_of(&self, entry: &SampleEntry, state: usize) -> bool {
        if self.recompute_membership {
            reach_of(self.nfa, &entry.word).contains(state)
        } else {
            entry.reach.contains(state)
        }
    }

    /// Predecessor partitions of `⋃ T` grouped by symbol, each sorted and
    /// deduplicated (`T_b` of Algorithm 4 step 3; `T_0 ∩ T_1` may overlap).
    fn partitions(&self, members: &[NodeId]) -> Vec<(Symbol, Vec<NodeId>)> {
        let mut grouped: Vec<(Symbol, Vec<NodeId>)> = Vec::new();
        for &v in members {
            for &(a, u) in self.dag.in_edges(v) {
                match grouped.binary_search_by_key(&a, |&(s, _)| s) {
                    Ok(i) => grouped[i].1.push(u),
                    Err(i) => grouped.insert(i, (a, vec![u])),
                }
            }
        }
        for (_, t) in &mut grouped {
            t.sort_unstable();
            t.dedup();
        }
        grouped
    }
}

/// One invocation of `Sample(T₀, ε, φ₀)` where `T₀` lives in layer `layer0`.
///
/// Returns the sampled word (uniform over `⋃_{s∈T₀} U(s)` conditioned on
/// success, under the Proposition 18 assumptions) or `None` for a rejection.
///
/// Two call shapes cover the whole paper:
/// * `T₀ = {v}` — drawing the sketch samples `X(v)` (Algorithm 5 step 5(c));
/// * `T₀ =` accepting vertices at layer `n` — drawing a uniform witness at the
///   virtual final vertex (the PLVUG of Corollary 23). The paper routes this
///   through an explicit `s_final` vertex with a pseudo-symbol edge; starting
///   the recursion at the accepting set is the same computation without the
///   cosmetic extra symbol.
pub(crate) fn sample_once<R: Rng + ?Sized>(
    ctx: &SampleCtx<'_>,
    t0: &[NodeId],
    layer0: usize,
    phi0: BigFloat,
    rng: &mut R,
) -> Option<Word> {
    sample_inner(ctx, t0, layer0, phi0, true, rng)
}

/// Ablation B1: the same walk *without* the final rejection step — the output
/// distribution is then only approximately uniform, with bias driven by the
/// estimate errors (this is exactly what the \[JVV86\] rejection corrects).
pub(crate) fn sample_once_no_rejection<R: Rng + ?Sized>(
    ctx: &SampleCtx<'_>,
    t0: &[NodeId],
    layer0: usize,
    rng: &mut R,
) -> Option<Word> {
    sample_inner(ctx, t0, layer0, BigFloat::one(), false, rng)
}

fn sample_inner<R: Rng + ?Sized>(
    ctx: &SampleCtx<'_>,
    t0: &[NodeId],
    layer0: usize,
    phi0: BigFloat,
    rejection: bool,
    rng: &mut R,
) -> Option<Word> {
    let mut members: Vec<NodeId> = t0.to_vec();
    let mut layer = layer0;
    let mut phi = phi0;
    let mut rev: Word = Vec::with_capacity(layer0);
    loop {
        // Step 1: fail unless φ ∈ (0, 1].
        if rejection
            && (phi.is_zero()
                || phi.partial_cmp_total(&BigFloat::one()) == std::cmp::Ordering::Greater)
        {
            return None;
        }
        // Step 2: at the start vertex, accept the built word with probability φ.
        if layer == 0 {
            debug_assert_eq!(members.len(), 1, "layer 0 holds only the start vertex");
            if !rejection || rng.gen::<f64>() < phi.to_f64() {
                rev.reverse();
                return Some(rev);
            }
            return None;
        }
        // Step 3: partition predecessors by symbol and weigh each by W̃_b.
        let partitions = ctx.partitions(&members);
        let mut weights: Vec<BigFloat> = Vec::with_capacity(partitions.len());
        let mut total = BigFloat::zero();
        for (_, part) in &partitions {
            let w = estimate_union(part, ctx.data, |v| ctx.state_of(v), |e, q| ctx.member_of(e, q));
            total = total.add(w);
            weights.push(w);
        }
        if total.is_zero() {
            return None;
        }
        // Choose partition b with probability p_b = W̃_b / ΣW̃. The f64
        // probabilities used for selection are also the ones divided into φ,
        // keeping the acceptance probability algebraically exact.
        let probs: Vec<f64> = weights.iter().map(|w| w.ratio_f64(&total)).collect();
        let draw: f64 = rng.gen();
        let mut chosen = None;
        let mut cumulative = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            cumulative += p;
            if draw < cumulative && p > 0.0 {
                chosen = Some(i);
                break;
            }
        }
        // Float rounding can leave `cumulative` a hair below 1: fall back to
        // the last positive-probability partition.
        let chosen = chosen.or_else(|| (0..probs.len()).rev().find(|&i| probs[i] > 0.0))?;
        let p = probs[chosen];
        phi = phi.mul_f64(1.0 / p);
        let (symbol, part) = partitions.into_iter().nth(chosen).expect("index in range");
        rev.push(symbol);
        members = part;
        layer -= 1;
    }
}
