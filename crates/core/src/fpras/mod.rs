//! The #NFA FPRAS (paper §6, Theorem 22) and its sampling machinery.
//!
//! Given an NFA `N` with `m` states and a length `n` in unary, the algorithm
//! estimates `|L_n(N)|` within relative error `δ` with probability ≥ 3/4, in
//! time polynomial in `n`, `m`, `1/δ` — resolving the open problem that #NFA
//! (SpanL-complete) admits an FPRAS.
//!
//! Structure, following the paper:
//!
//! * [`FprasParams`] — the tunable sample budget `k`, retry budget, and
//!   rejection constant (the proof's own values are astronomically conservative;
//!   see [`FprasParams::theoretical_k`]).
//! * [`FprasState`] — the result of Algorithm 5: per-vertex sketches
//!   `(R(s), X(s))` over the unrolled DAG, where `R(s)` estimates `|U(s)|` (the
//!   set of strings labeling start→`s` paths) and `X(s)` is a multiset of
//!   near-uniform samples of `U(s)`. Small vertices are handled *exactly*
//!   (the base case of §6.4).
//! * `sampler` (internal) — Algorithm 4: the backward rejection sampler `Sample(T, w, φ)`
//!   that draws a uniform element of `⋃_{s∈T} U(s)` conditioned on not failing
//!   (Proposition 18).
//!
//! The same state powers both counting (`R` at the virtual final vertex) and
//! the Las Vegas uniform generator of Corollary 23 ([`crate::sample::nfa_plvug`]).

mod algorithm;
mod params;
pub(crate) mod sampler;
mod sketch;

pub use algorithm::{
    approx_count, run_fpras, run_fpras_on, FprasError, FprasState, SharedWitnessSampler,
    WitnessSampler,
};
pub use params::FprasParams;
pub use sketch::{
    estimate_union_packed, estimate_union_quadratic, estimate_union_with_mask, reach_of, MaskArena,
    SampleEntry, VertexData,
};
