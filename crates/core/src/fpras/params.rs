//! FPRAS tuning knobs.

use lsc_arith::BigFloat;

/// Parameters of the FPRAS (Algorithm 5).
///
/// The proof fixes `k = ⌈(nm/δ)^64⌉` samples per vertex and `⌈(nm/δ)^4⌉`
/// attempts per sample — constants chosen to make the union bounds in
/// Lemma 21 / Theorem 22 go through with room to spare, not to be executed
/// (see [`FprasParams::theoretical_k`]). A practical run keeps the same
/// algorithm and replaces the constants; experiment E1/B3 calibrates the
/// accuracy empirically against exact counts.
#[derive(Clone, Copy, Debug)]
pub struct FprasParams {
    /// Samples per vertex (`k` in the paper). Vertices with `|U(s)| ≤ k` are
    /// handled exactly.
    pub k: usize,
    /// Max `Sample` invocations per needed sample before declaring global
    /// failure (paper step 5(c)(ii): `⌈(nm/δ)^4⌉`).
    pub attempts: usize,
    /// The rejection-sampling constant: top-level calls use `φ₀ = c / R(s)`.
    /// The paper proves correctness with `c = e⁻⁴`; any `c` small enough that
    /// `φ` never exceeds 1 preserves exact conditional uniformity, and larger
    /// `c` means fewer rejections (ablation B5).
    pub rejection_constant: f64,
    /// Ablation B4 (default `true`): carry small vertices (`|U(s)| ≤ k`)
    /// exactly — the base case of §6.4. Disabling forces sampled sketches
    /// everywhere above layer 0.
    pub exact_handling: bool,
    /// Ablation B6 (default `false`): recompute the reach set of each stored
    /// sample on every membership test, instead of using the cached set —
    /// the paper's per-test breadth-first-search costing, for measuring what
    /// the cache buys.
    pub recompute_membership: bool,
    /// Worker threads for the per-layer sampling pass (default 1). Vertices
    /// within a layer are independent, and per-vertex seeds are drawn up
    /// front, so the result is identical at any thread count.
    pub threads: usize,
    /// Ablation B9 (default `true`): memoize per-member-set partition
    /// groupings and selection probabilities across the `k × attempts`
    /// sampler walks of each worker (DESIGN.md §3.6). Disabling recomputes
    /// the union estimates at every level of every walk — the seed's
    /// behavior. Caching is per worker and changes no computed value, so
    /// estimates and samples are bit-identical either way.
    pub weight_cache: bool,
    /// Ablation B9 (default `false`): use the seed's quadratic
    /// membership scan in the union estimator instead of the linear
    /// prefix-mask scan. Bit-identical output, quadratically more membership
    /// tests — the pre-optimization baseline for the bench trajectory.
    pub quadratic_estimator: bool,
}

impl FprasParams {
    /// Practical defaults targeting relative error `delta` at length `n`:
    /// `k ≈ 4n/δ²` (sampling noise per layer ~ `k^{-1/2}`, accumulating over
    /// `n` layers as `~ (n/k)^{1/2}`), a generous retry budget, and rejection
    /// constant `e⁻²`.
    pub fn with_accuracy(n: usize, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let k = ((4.0 * n.max(1) as f64) / (delta * delta)).ceil() as usize;
        FprasParams {
            k: k.clamp(64, 200_000),
            attempts: 500,
            rejection_constant: (-2.0f64).exp(),
            exact_handling: true,
            recompute_membership: false,
            threads: 1,
            weight_cache: true,
            quadratic_estimator: false,
        }
    }

    /// A small, fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        FprasParams {
            k: 64,
            attempts: 300,
            rejection_constant: (-2.0f64).exp(),
            exact_handling: true,
            recompute_membership: false,
            threads: 1,
            weight_cache: true,
            quadratic_estimator: false,
        }
    }

    /// Parallel sampling with `threads` workers (see the `threads` field).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self
    }

    /// Ablation B4: disable the exactly-handled base case.
    pub fn without_exact_handling(mut self) -> Self {
        self.exact_handling = false;
        self
    }

    /// Ablation B6: recompute reach sets per membership test.
    pub fn with_recomputed_membership(mut self) -> Self {
        self.recompute_membership = true;
        self
    }

    /// Ablation B9: disable the per-worker weight memo cache.
    pub fn without_weight_cache(mut self) -> Self {
        self.weight_cache = false;
        self
    }

    /// Ablation B9: use the seed's quadratic membership scan in the union
    /// estimator.
    pub fn with_quadratic_estimator(mut self) -> Self {
        self.quadratic_estimator = true;
        self
    }

    /// The full pre-optimization hot path (quadratic estimator, no weight
    /// cache): the baseline the `BENCH_fpras.json` speedups are measured
    /// against, and the oracle side of the equivalence property tests.
    pub fn baseline(self) -> Self {
        self.without_weight_cache().with_quadratic_estimator()
    }

    /// The paper-faithful rejection constant `e⁻⁴` (Proposition 18), for runs
    /// where the proof's exact failure analysis should apply verbatim.
    pub fn with_paper_rejection(mut self) -> Self {
        self.rejection_constant = (-4.0f64).exp();
        self
    }

    /// The sample budget the *proof* demands: `⌈(nm/δ)^64⌉`. Returned as a
    /// [`BigFloat`] because it does not fit in any machine integer for any
    /// nontrivial instance — e.g. `n = m = 10`, `δ = 0.1`: `10^192`. This is
    /// reported in EXPERIMENTS.md to contrast proof constants with the
    /// calibrated practical budgets.
    pub fn theoretical_k(n: usize, m: usize, delta: f64) -> BigFloat {
        assert!(delta > 0.0 && delta < 1.0);
        let base = BigFloat::from_f64(n as f64 * m as f64 / delta);
        let mut acc = BigFloat::one();
        for _ in 0..64 {
            acc = acc.mul(base);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_scaling() {
        let loose = FprasParams::with_accuracy(10, 0.5);
        let tight = FprasParams::with_accuracy(10, 0.05);
        assert!(tight.k > loose.k);
        let longer = FprasParams::with_accuracy(1000, 0.5);
        assert!(longer.k >= loose.k);
    }

    #[test]
    fn theoretical_k_is_astronomical() {
        let k = FprasParams::theoretical_k(10, 10, 0.1);
        assert!((k.log10() - 192.0).abs() < 1e-6, "log10 = {}", k.log10());
    }

    #[test]
    fn paper_rejection_constant() {
        let p = FprasParams::quick().with_paper_rejection();
        assert!((p.rejection_constant - (-4.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn invalid_delta() {
        FprasParams::with_accuracy(5, 1.5);
    }
}
