//! Self-reducibility of MEM-NFA / MEM-UFA (paper §5.2).
//!
//! The paper equips `MEM-NFA` with the self-reduction structure of \[Sch09\]:
//! functions `ℓ, σ, ψ` such that witnesses of `(N, 0^k)` factor as a first
//! symbol `a` followed by a witness of the *derived* instance
//! `ψ((N, 0^k), a) = (N', 0^{k-1})`, where `N'` merges the layer
//! `Q_a = {q : (q₀, a, q) ∈ δ}` into a fresh initial state. This is the engine
//! behind the paper-literal uniform generator (§5.3.3) and behind polynomial-
//! delay enumeration via [Sch09, Thm 4.9].
//!
//! Properties proved in §5.2 and re-checked by the tests here:
//! * (1) `ℓ((N, 0^k)) = k` — witnesses have exactly length `k`;
//! * (5) `|ψ(x, a)| ≤ |x|` — the derived automaton never grows;
//! * (6) `ℓ(ψ(x, a)) = max(ℓ(x) − 1, 0)`;
//! * (8) `(x, a∘y) ∈ MEM-NFA  ⇔  (ψ(x, a), y) ∈ MEM-NFA`;
//! * plus: `ψ` preserves unambiguity (so the structure restricts to MEM-UFA).

use lsc_automata::{Nfa, StateId, Symbol};

/// `σ((N, 0^k))`: how many leading symbols a self-reduction step strips.
pub fn sigma(k: usize) -> usize {
    usize::from(k > 0)
}

/// `ℓ((N, 0^k))`: the witness length — just `k` for well-formed instances.
pub fn ell(k: usize) -> usize {
    k
}

/// `ψ((N, 0^k), a)`: the derived automaton whose length-`k−1` language is
/// `{y : a∘y ∈ L_k(N)}`.
///
/// ## Erratum in the paper's construction
///
/// §5.2 builds `N'` by *merging* the layer `Q_a` into a single state `q₀'`
/// everywhere — rewriting every transition endpoint in `Q_a` to `q₀'`. That
/// merge is unsound: entering `q₀'` through one member of `Q_a` and leaving
/// through another stitches together run fragments that no run of `N`
/// realizes, so the derived automaton can *over-accept*. Concrete
/// counterexample (`psi_merged_construction_is_unsound` below): for the
/// 4-state automaton of `(0|1)*1(0|1)(0|1)` and `a = 1`, the merged `N'`
/// accepts `1000` although `11000 ∉ L_5(N)` — the glued run uses `(0,0,0)` to
/// loop at `q₀'` and `(1,0,2)` to leave it, mixing members `0` and `1` of
/// `Q_1`. (The paper proves the forward run-mapping direction and declares
/// the converse "analogous"; it is not.)
///
/// ## Construction used here
///
/// The standard sound derivative: keep all original states, add a fresh
/// initial state `q₀'` whose out-transitions are the *union* of the
/// out-transitions of `Q_a`, accepting iff `Q_a` touches a final state. The
/// fresh state is only ever visited at time 0, so no cross-member gluing can
/// occur. A previously added fresh initial has no in-edges and becomes
/// unreachable after the next derivative, so `psi` trims unreachable states
/// and the instance size stays `≤ |N| + 1` across arbitrarily long
/// ψ-chains — preserving the polynomial bound self-reducibility needs (the
/// paper's condition (5) holds up to one extra state).
///
/// For `k = 0` the paper sets `ψ(x, w) = x`; callers handle that identity
/// case (there is no symbol to strip), so `psi` itself assumes `k ≥ 1`.
pub fn psi(nfa: &Nfa, a: Symbol) -> Nfa {
    let m = nfa.num_states();
    // Fresh initial state q₀' gets id m; originals keep their ids.
    let mut b = Nfa::builder(nfa.alphabet().clone(), m + 1);
    b.set_initial(m);
    let mut qa_accepts = false;
    for q in 0..m {
        if nfa.is_accepting(q) {
            b.set_accepting(q);
        }
        for &(sym, t) in nfa.transitions_from(q) {
            b.add_transition(q, sym, t);
        }
    }
    for q in nfa.step(nfa.initial(), a) {
        qa_accepts |= nfa.is_accepting(q);
        for &(sym, t) in nfa.transitions_from(q) {
            b.add_transition(m, sym, t);
        }
    }
    if qa_accepts {
        b.set_accepting(m);
    }
    // Keep reachable states only (drops the previous fresh initial, bounding
    // ψ-chain growth), but deliberately not co-reachability: trimming dead-end
    // states would be fine too, but reachability alone already gives the size
    // bound and keeps this closer to a pure construction.
    reachable_only(&b.build())
}

/// Restriction to reachable states (unlike [`Nfa::trimmed`], keeps dead ends).
fn reachable_only(nfa: &Nfa) -> Nfa {
    let reach = nfa.reachable();
    let mut remap: Vec<Option<StateId>> = vec![None; nfa.num_states()];
    let mut count = 0;
    for q in reach.iter() {
        remap[q] = Some(count);
        count += 1;
    }
    let mut b = Nfa::builder(nfa.alphabet().clone(), count);
    b.set_initial(remap[nfa.initial()].expect("initial is reachable"));
    for q in reach.iter() {
        let qi = remap[q].expect("reachable");
        if nfa.is_accepting(q) {
            b.set_accepting(qi);
        }
        for &(sym, t) in nfa.transitions_from(q) {
            if let Some(ti) = remap[t] {
                b.add_transition(qi, sym, ti);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::{blowup_nfa, random_nfa};
    use lsc_automata::ops::is_unambiguous;
    use lsc_automata::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// All words of length `len` over an alphabet of `width` symbols.
    fn all_words(width: usize, len: usize) -> Vec<Vec<Symbol>> {
        let mut out = vec![vec![]];
        for _ in 0..len {
            out = out
                .into_iter()
                .flat_map(|w| {
                    (0..width as Symbol).map(move |s| {
                        let mut w2 = w.clone();
                        w2.push(s);
                        w2
                    })
                })
                .collect();
        }
        out
    }

    /// Property 8: a∘y ∈ L_k(N) iff y ∈ L_{k-1}(ψ(N, a)).
    fn check_property8(nfa: &Nfa, k: usize) {
        let width = nfa.alphabet().len();
        for a in 0..width as Symbol {
            let derived = psi(nfa, a);
            assert!(
                derived.num_states() <= nfa.num_states() + 1,
                "property 5 (sound variant): ψ grows by at most the fresh initial"
            );
            for y in all_words(width, k - 1) {
                let mut ay = vec![a];
                ay.extend_from_slice(&y);
                assert_eq!(
                    nfa.accepts(&ay),
                    derived.accepts(&y),
                    "property 8 failed: N {} a={a} y={y:?}",
                    nfa.describe()
                );
            }
        }
    }

    #[test]
    fn property8_on_blowup_family() {
        check_property8(&blowup_nfa(3), 5);
    }

    #[test]
    fn property8_on_random_nfas() {
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..20 {
            let n = random_nfa(6, Alphabet::binary(), 0.25, 0.4, &mut rng);
            check_property8(&n, 4);
        }
    }

    #[test]
    fn psi_chain_strips_prefix() {
        // Stripping symbols one at a time tracks residual languages.
        let n = blowup_nfa(2); // (0|1)*1(0|1): second-to-last symbol must be 1
        let k = 4;
        let word = [1, 0, 1, 1];
        assert!(n.accepts(&word));
        let mut cur = n.clone();
        for (i, &a) in word.iter().enumerate() {
            cur = psi(&cur, a);
            assert!(
                cur.accepts(&word[i + 1..]),
                "residual after {} symbols must accept the suffix",
                i + 1
            );
        }
        // After consuming everything, the residual accepts ε.
        assert!(cur.accepts(&[]));
        assert_eq!(ell(k), 4);
        assert_eq!(sigma(k), 1);
        assert_eq!(sigma(0), 0);
    }

    #[test]
    fn psi_preserves_unambiguity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut checked = 0;
        for _ in 0..40 {
            let n = lsc_automata::families::random_ufa(7, Alphabet::binary(), 0.2, &mut rng);
            assert!(is_unambiguous(&n));
            for a in 0..2 {
                let d = psi(&n, a);
                // ψ of a UFA can only be certified unambiguous after trimming
                // relative to some length; the §5.2 argument shows accepting
                // runs are preserved one-to-one, so the check must pass.
                assert!(is_unambiguous(&d), "ψ broke unambiguity");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    /// The erratum witness: the paper's merged `Q_w → q₀'` construction
    /// over-accepts. We build the merged automaton exactly as §5.2 specifies
    /// and exhibit a word it accepts whose extension `N` rejects; the sound
    /// `psi` used in this crate gets the same word right.
    #[test]
    fn psi_merged_construction_is_unsound() {
        let n = blowup_nfa(3); // (0|1)*1(0|1)(0|1), unique final state, no ε
        let a = 1;
        // Q_1 = {0, 1}: targets of (q0, 1, ·).
        let qa: Vec<usize> = n.step(n.initial(), a).collect();
        assert_eq!(qa, vec![0, 1]);
        // Merged construction, literally: states {q0'} ∪ (Q ∖ Q_1) with every
        // endpoint in Q_1 rewritten to q0'.
        let m = n.num_states();
        let in_qa = |q: usize| qa.contains(&q);
        let image = |q: usize| if in_qa(q) { 0 } else { q }; // 0 is q0' (old 0 ∈ Q_1 here)
        let mut b = Nfa::builder(n.alphabet().clone(), m);
        b.set_initial(0);
        for q in 0..m {
            if n.is_accepting(q) {
                b.set_accepting(image(q));
            }
            for &(sym, t) in n.transitions_from(q) {
                b.add_transition(image(q), sym, image(t));
            }
        }
        let merged = b.build();
        // The glued run q0' -1-> q0' -0-> q0' -0-> 2 -0-> 3 accepts 1000...
        let y = [1, 0, 0, 0];
        assert!(merged.accepts(&y), "merged construction accepts 1000");
        // ...but 1∘1000 = 11000 is NOT in L_5(N) (third symbol from the end is 0).
        let mut ay = vec![a];
        ay.extend_from_slice(&y);
        assert!(!n.accepts(&ay), "N rejects 11000");
        // The sound derivative agrees with N.
        let sound = psi(&n, a);
        assert!(!sound.accepts(&y), "sound ψ rejects 1000");
    }

    #[test]
    fn psi_chain_size_stays_bounded() {
        // Repeated derivatives must not accumulate states (the fresh initial
        // of step i is unreachable at step i+1 and gets trimmed).
        let n = blowup_nfa(4);
        let bound = n.num_states() + 1;
        let mut cur = n.clone();
        for step in 0..12 {
            cur = psi(&cur, (step % 2) as Symbol);
            assert!(
                cur.num_states() <= bound,
                "step {step}: {} states > bound {bound}",
                cur.num_states()
            );
        }
    }

    #[test]
    fn psi_on_empty_qa() {
        // If the initial state has no a-transitions, Q_a = ∅ and the derived
        // automaton accepts nothing of any length (fresh q₀' is isolated).
        let ab = Alphabet::binary();
        let mut b = Nfa::builder(ab, 2);
        b.set_initial(0);
        b.add_transition(0, 0, 1);
        b.set_accepting(1);
        let n = b.build();
        let d = psi(&n, 1);
        assert!(!d.accepts(&[]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[1]));
    }
}
