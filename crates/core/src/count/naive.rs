//! The naive path-ratio Monte-Carlo estimator (paper §6.1).
//!
//! "One could sample a random path of length n in the NFA, and let x be the
//! string accepted on that path. Then, count the number of accepting paths Px
//! that x has [...] and report the average value of P/Px. The resulting
//! estimator is unbiased. However, [...] the variance of this estimator is
//! exponential." — §6.1.
//!
//! We implement it faithfully as the baseline of experiment E8: it is exact in
//! expectation (`E[P/P_x] = |L_n|`), cheap per sample, and falls apart on the
//! ambiguity-gap family where run counts differ exponentially across words.

use lsc_arith::{BigFloat, BigNat};
use lsc_automata::unroll::UnrolledDag;
use lsc_automata::{Nfa, Word};
use rand::Rng;

/// One naive estimate of `|L_n(N)|` from `samples` uniformly random accepting
/// paths. Returns zero when the language is empty.
pub fn naive_estimate<R: Rng + ?Sized>(
    nfa: &Nfa,
    n: usize,
    samples: usize,
    rng: &mut R,
) -> BigFloat {
    assert!(samples > 0);
    let dag = UnrolledDag::build(nfa, n);
    let Some(start) = dag.start() else {
        return BigFloat::zero();
    };
    let completions = dag.completion_counts();
    let total_paths = BigFloat::from_bignat(&completions[start]);
    let mut acc = BigFloat::zero();
    for _ in 0..samples {
        let word = sample_uniform_path(&dag, &completions, rng);
        let runs = count_runs_of_word(nfa, &word);
        let ratio = total_paths.div(BigFloat::from_bignat(&runs));
        acc = acc.add(ratio);
    }
    acc.mul_f64(1.0 / samples as f64)
}

/// Draws the label word of a uniformly random accepting path (each *path* is
/// equally likely — which is exactly the bias the paper criticizes: words with
/// many runs are oversampled).
pub fn sample_uniform_path<R: Rng + ?Sized>(
    dag: &UnrolledDag,
    completions: &[BigNat],
    rng: &mut R,
) -> Word {
    let mut cur = dag.start().expect("nonempty dag");
    let mut word = Vec::with_capacity(dag.word_length());
    for _ in 0..dag.word_length() {
        let total = &completions[cur];
        let mut draw = BigNat::uniform_below(total, rng);
        let mut chosen = None;
        for &(sym, succ) in dag.out_edges(cur) {
            let weight = &completions[succ];
            match draw.checked_sub(weight) {
                Some(rest) => draw = rest,
                None => {
                    chosen = Some((sym, succ));
                    break;
                }
            }
        }
        let (sym, succ) = chosen.expect("completion counts cover all mass");
        word.push(sym);
        cur = succ;
    }
    word
}

/// `P_x`: the number of accepting runs of `nfa` on `word` (run-count DP).
pub fn count_runs_of_word(nfa: &Nfa, word: &[u32]) -> BigNat {
    let m = nfa.num_states();
    let mut counts = vec![BigNat::zero(); m];
    counts[nfa.initial()] = BigNat::one();
    for &a in word {
        let mut next = vec![BigNat::zero(); m];
        for (q, count) in counts.iter().enumerate() {
            if count.is_zero() {
                continue;
            }
            for t in nfa.step(q, a) {
                next[t].add_assign_ref(count);
            }
        }
        counts = next;
    }
    nfa.accepting_states().map(|q| &counts[q]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::exact::count_nfa_via_determinization;
    use lsc_automata::families::{ambiguity_gap_nfa, blowup_nfa};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn run_counts_per_word() {
        let n = ambiguity_gap_nfa(3);
        // Thin-branch words (starting 0) have exactly 1 run; fat-branch words
        // (starting 1) have width^{n-1} · width-entry = 3^{len-1} runs... the
        // entry transition fans to `width` copies, then width^{len-1} moves.
        assert_eq!(count_runs_of_word(&n, &[0, 0, 0]), BigNat::one());
        assert_eq!(count_runs_of_word(&n, &[1, 0, 0]).to_string(), "27");
        assert_eq!(count_runs_of_word(&n, &[]), BigNat::zero());
    }

    #[test]
    fn unbiased_on_unambiguous_input() {
        // On a UFA every word has exactly one run, so the estimator is exact
        // with a single sample.
        let n = blowup_nfa(3);
        let mut rng = StdRng::seed_from_u64(5);
        let est = naive_estimate(&n, 8, 1, &mut rng);
        let truth = count_nfa_via_determinization(&n, 8);
        assert_eq!(est.to_f64().round() as u64, truth.to_u64().unwrap());
    }

    #[test]
    fn estimator_has_heavy_skew_on_gap_family() {
        // With few samples the estimate collapses toward the fat branch's tiny
        // contribution: almost every sampled path has P/Px ≈ 2, missing half
        // the words. The median estimate sits near |fat words| + small.
        let n = ambiguity_gap_nfa(4);
        let len = 10;
        let truth = count_nfa_via_determinization(&n, len).to_f64();
        let mut rng = StdRng::seed_from_u64(11);
        let mut low = 0;
        for _ in 0..20 {
            let est = naive_estimate(&n, len, 10, &mut rng).to_f64();
            if est < truth * 0.75 {
                low += 1;
            }
        }
        // The vast majority of 10-sample estimates undershoot badly.
        assert!(low >= 15, "only {low}/20 estimates undershot");
    }

    #[test]
    fn empty_language_estimates_zero() {
        let ab = lsc_automata::Alphabet::binary();
        let n = lsc_automata::regex::Regex::parse("00", &ab)
            .unwrap()
            .compile();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(naive_estimate(&n, 5, 3, &mut rng).is_zero());
    }
}
