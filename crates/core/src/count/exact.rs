//! Exact counting.
//!
//! §5.3.2 of the paper: for an *unambiguous* NFA, the number of accepting runs
//! of length `k` equals the number of accepted words of length `k`, and run
//! counting is a `#L` function computable by a polynomial dynamic program. We
//! run that DP directly on the unrolled DAG. For general NFAs the same DP
//! counts *runs* (an overcount), so the exact word count goes through the
//! subset construction — exponential in the worst case, which is precisely the
//! gap the FPRAS closes.

use lsc_arith::BigNat;
use lsc_automata::ops::{determinize, is_unambiguous};
use lsc_automata::unroll::UnrolledDag;
use lsc_automata::Nfa;

/// Exact `|L_n(N)|` for an unambiguous `N`, in time `O(n · |δ|)` big-number
/// operations (Proposition 14, counting part).
///
/// # Errors
/// Returns [`NotUnambiguousError`] if `N` is ambiguous (checked up front;
/// counting runs of an ambiguous NFA would overcount words).
pub fn count_ufa(nfa: &Nfa, n: usize) -> Result<BigNat, NotUnambiguousError> {
    if !is_unambiguous(nfa) {
        return Err(NotUnambiguousError);
    }
    Ok(count_runs(nfa, n))
}

/// The number of *accepting runs* of length `n` — the raw `#L` dynamic
/// program. Equals the word count exactly when the automaton is unambiguous.
pub fn count_runs(nfa: &Nfa, n: usize) -> BigNat {
    let dag = UnrolledDag::build(nfa, n);
    count_runs_on(&dag)
}

/// [`count_runs`] on a pre-built DAG. The completion table runs limb-batched
/// (one reused wide accumulator plus a u64 fast path — see
/// [`UnrolledDag::completion_counts`]); the start entry is moved out of the
/// table rather than cloned.
pub fn count_runs_on(dag: &UnrolledDag) -> BigNat {
    match dag.start() {
        None => BigNat::zero(),
        Some(s) => dag.completion_counts().swap_remove(s),
    }
}

/// Ground-truth `|L_n(N)|` for *any* NFA via the subset construction.
///
/// Worst-case exponential in `N`'s size; this is the oracle the experiments
/// compare the FPRAS against, not a production path.
pub fn count_nfa_via_determinization(nfa: &Nfa, n: usize) -> BigNat {
    determinize(nfa).count_words(n)
}

/// Error: the automaton passed to a UFA-only routine is ambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotUnambiguousError;

impl std::fmt::Display for NotUnambiguousError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("automaton is ambiguous; exact UFA counting would overcount")
    }
}

impl std::error::Error for NotUnambiguousError {}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::{blowup_nfa, single_word_nfa, universal_nfa};
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;

    #[test]
    fn ufa_count_matches_oracle_on_blowup() {
        let n = blowup_nfa(5);
        for len in 0..12 {
            assert_eq!(
                count_ufa(&n, len).unwrap(),
                count_nfa_via_determinization(&n, len),
                "len={len}"
            );
        }
    }

    #[test]
    fn ufa_count_scales_past_u64() {
        let u = universal_nfa(Alphabet::binary());
        assert_eq!(count_ufa(&u, 200).unwrap(), BigNat::pow2(200));
        let s = single_word_nfa(100);
        assert_eq!(count_ufa(&s, 100).unwrap(), BigNat::one());
        assert_eq!(count_ufa(&s, 99).unwrap(), BigNat::zero());
    }

    #[test]
    fn ambiguous_rejected() {
        let ab = Alphabet::binary();
        let amb = Regex::parse("(0|1)*1(0|1)*", &ab).unwrap().compile();
        assert_eq!(count_ufa(&amb, 4), Err(NotUnambiguousError));
        // ...but run counting still works, and strictly overcounts words.
        let runs = count_runs(&amb, 4);
        let words = count_nfa_via_determinization(&amb, 4);
        assert_eq!(words, BigNat::from_u64(15)); // all but 0000
        assert!(runs > words);
    }

    #[test]
    fn empty_language_counts_zero() {
        let ab = Alphabet::binary();
        let n = Regex::parse("01", &ab).unwrap().compile();
        assert_eq!(count_runs(&n, 5), BigNat::zero());
        assert_eq!(count_nfa_via_determinization(&n, 5), BigNat::zero());
    }

    #[test]
    fn epsilon_instance() {
        let ab = Alphabet::binary();
        let star = Regex::parse("(0|1)*", &ab).unwrap().compile();
        assert_eq!(count_ufa(&star, 0).unwrap(), BigNat::one());
    }
}
