//! Counting witnesses: `COUNT(R)` for the two complexity classes.
//!
//! * [`exact`] — polynomial-time exact counting for MEM-UFA (Theorem 5 /
//!   §5.3.2) plus the exponential determinization oracle used to validate the
//!   FPRAS on small instances.
//! * [`naive`] — the unbiased but exponential-variance Monte-Carlo estimator
//!   the paper rules out in §6.1 (baseline for experiment E8).
//! * [`router`] — the ambiguity-aware front door: exact where exactness is
//!   affordable (unambiguous, or small subset construction), FPRAS otherwise.
//! * [`stratified`] — MEM-UFA counts and exact uniform samples refined by
//!   occurrences of a marked symbol (the §4.2 path-histogram refinement).
//!
//! The FPRAS itself (Theorem 22) lives in [`crate::fpras`].

pub mod exact;
pub mod naive;
pub mod router;
pub mod stratified;
