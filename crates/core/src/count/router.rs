//! Deprecated location of the ambiguity-aware counting router.
//!
//! The router was folded into the engine ([`crate::engine`]) so that the
//! ambiguity probe, the capped determinization, and the per-route tables are
//! cached on a [`crate::engine::PreparedInstance`] instead of being re-derived
//! on every request. The vocabulary types and the one-shot entry point
//! re-export from there; new code should import from `crate::engine`.

pub use crate::engine::{count_routed, CountRoute, RoutedCount, RouterConfig};
