//! Stratified exact counting and sampling for MEM-UFA: witnesses refined by
//! the number of occurrences of a marked symbol.
//!
//! The §4.2 application motivates this refinement: for a regular path query
//! one often wants not just `|paths of length n|` but the histogram over how
//! many edges carry a given label (cost, hazard, back-edge, …). For an
//! unambiguous automaton the §5.3.2 dynamic program extends to a
//! two-dimensional table indexed by `(remaining length, occurrences so far)`
//! without losing exactness: runs still biject with words, stratum by
//! stratum. The same table drives an exact uniform sampler *conditioned on a
//! stratum* — uniform generation from `{w ∈ L_n(N) : #σ(w) = k}` — in the
//! style of §5.3.3.

use lsc_arith::BigNat;
use lsc_automata::ops::is_unambiguous;
use lsc_automata::{Nfa, StateId, Symbol, Word};
use rand::Rng;

use crate::count::exact::NotUnambiguousError;

/// The two-dimensional completion table of a stratified count.
///
/// `table[t][q][k]` = number of accepting runs from state `q` with `t`
/// symbols left to read, exactly `k` of which are the marked symbol. For an
/// unambiguous automaton these are word counts per stratum.
#[derive(Debug)]
pub struct StratifiedCount {
    nfa: Nfa,
    marked: Symbol,
    n: usize,
    /// `table[t][q][k]`, `t ∈ 0..=n`, `k ∈ 0..=t` (rows are truncated to
    /// `t + 1` strata: no more marks than symbols).
    table: Vec<Vec<Vec<BigNat>>>,
}

impl StratifiedCount {
    /// Builds the table for witnesses of length `n` stratified by
    /// occurrences of `marked`.
    ///
    /// `O(n² · |δ|)` big-number additions.
    ///
    /// # Errors
    /// [`NotUnambiguousError`] if the automaton is ambiguous (the counts
    /// would be run counts, not word counts).
    ///
    /// # Panics
    /// Panics if `marked` is outside the automaton's alphabet.
    pub fn build(
        nfa: &Nfa,
        n: usize,
        marked: Symbol,
    ) -> Result<StratifiedCount, NotUnambiguousError> {
        assert!(
            (marked as usize) < nfa.alphabet().len(),
            "marked symbol {marked} outside alphabet"
        );
        if !is_unambiguous(nfa) {
            return Err(NotUnambiguousError);
        }
        let m = nfa.num_states();
        let mut table: Vec<Vec<Vec<BigNat>>> = Vec::with_capacity(n + 1);
        // t = 0: one empty completion from accepting states, zero marks.
        table.push(
            (0..m)
                .map(|q| {
                    vec![if nfa.is_accepting(q) {
                        BigNat::one()
                    } else {
                        BigNat::zero()
                    }]
                })
                .collect(),
        );
        for t in 1..=n {
            let mut layer = vec![vec![BigNat::zero(); t + 1]; m];
            for (q, row) in layer.iter_mut().enumerate() {
                for &(a, next) in nfa.transitions_from(q) {
                    let offset = usize::from(a == marked);
                    let prev = &table[t - 1][next];
                    for (k, cnt) in prev.iter().enumerate() {
                        if !cnt.is_zero() {
                            row[k + offset].add_assign_ref(cnt);
                        }
                    }
                }
            }
            table.push(layer);
        }
        Ok(StratifiedCount {
            nfa: nfa.clone(),
            marked,
            n,
            table,
        })
    }

    /// The witness length `n`.
    pub fn length(&self) -> usize {
        self.n
    }

    /// The marked symbol.
    pub fn marked(&self) -> Symbol {
        self.marked
    }

    /// `|{w ∈ L_n(N) : #marked(w) = k}|`.
    pub fn count_with(&self, k: usize) -> BigNat {
        if k > self.n {
            return BigNat::zero();
        }
        self.table[self.n][self.nfa.initial()]
            .get(k)
            .cloned()
            .unwrap_or_else(BigNat::zero)
    }

    /// The full histogram `k ↦ |{w : #marked(w) = k}|` for `k ∈ 0..=n`.
    pub fn histogram(&self) -> Vec<BigNat> {
        (0..=self.n).map(|k| self.count_with(k)).collect()
    }

    /// The total `|L_n(N)|` (the histogram's sum; equals the §5.3.2 count).
    pub fn total(&self) -> BigNat {
        let mut acc = BigNat::zero();
        for c in self.histogram() {
            acc.add_assign_ref(&c);
        }
        acc
    }

    /// Draws a uniform witness from the stratum `{w ∈ L_n(N) : #marked(w) = k}`;
    /// `None` if the stratum is empty.
    ///
    /// Exactly uniform: each step draws a transition with probability
    /// proportional to its completion count within the remaining stratum,
    /// with exact `BigNat` arithmetic throughout.
    pub fn sample_with<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Option<Word> {
        let total = self.count_with(k);
        if total.is_zero() {
            return None;
        }
        let mut word = Vec::with_capacity(self.n);
        let mut state: StateId = self.nfa.initial();
        let mut marks = k;
        for t in (1..=self.n).rev() {
            let mut r = BigNat::uniform_below(&self.table[t][state][marks], rng);
            let mut chosen = None;
            for &(a, next) in self.nfa.transitions_from(state) {
                let offset = usize::from(a == self.marked);
                if offset > marks {
                    continue;
                }
                let weight = self.table[t - 1][next]
                    .get(marks - offset)
                    .cloned()
                    .unwrap_or_else(BigNat::zero);
                if weight.is_zero() {
                    continue;
                }
                match r.checked_sub(&weight) {
                    Some(rest) => r = rest,
                    None => {
                        chosen = Some((a, next, offset));
                        break;
                    }
                }
            }
            let (a, next, offset) = chosen.expect("weights sum to the cell count");
            word.push(a);
            state = next;
            marks -= offset;
        }
        debug_assert_eq!(marks, 0);
        debug_assert!(self.nfa.is_accepting(state));
        Some(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::exact::count_ufa;
    use lsc_automata::families::{blowup_nfa, universal_nfa};
    use lsc_automata::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn binomial(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut c: u128 = 1;
        for i in 0..k.min(n - k) as u128 {
            c = c * (n as u128 - i) / (i + 1);
        }
        c as u64
    }

    #[test]
    fn universal_histogram_is_binomial() {
        let u = universal_nfa(Alphabet::binary());
        let s = StratifiedCount::build(&u, 10, 1).unwrap();
        for k in 0..=10usize {
            assert_eq!(
                s.count_with(k).to_u64(),
                Some(binomial(10, k as u64)),
                "stratum {k}"
            );
        }
        assert_eq!(s.total().to_u64(), Some(1024));
        assert_eq!(s.count_with(11).to_u64(), Some(0));
    }

    #[test]
    fn histogram_sums_to_the_flat_count() {
        let n = blowup_nfa(5);
        let len = 12;
        let s = StratifiedCount::build(&n, len, 0).unwrap();
        assert_eq!(s.total(), count_ufa(&n, len).unwrap());
    }

    #[test]
    fn ambiguous_automata_are_rejected() {
        use lsc_automata::regex::Regex;
        let ab = Alphabet::binary();
        let amb = Regex::parse("(0|1)*1(0|1)*", &ab).unwrap().compile();
        assert_eq!(
            StratifiedCount::build(&amb, 5, 1).unwrap_err(),
            NotUnambiguousError
        );
    }

    #[test]
    fn stratum_samples_have_the_right_mark_count() {
        let n = blowup_nfa(4);
        let len = 10;
        let s = StratifiedCount::build(&n, len, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(71);
        for k in 0..=len {
            let stratum = s.count_with(k);
            match s.sample_with(k, &mut rng) {
                Some(w) => {
                    assert!(!stratum.is_zero());
                    assert_eq!(w.len(), len);
                    assert_eq!(w.iter().filter(|&&a| a == 1).count(), k, "stratum {k}");
                    assert!(n.accepts(&w), "sampled non-witness");
                }
                None => assert!(stratum.is_zero(), "stratum {k} nonempty but sample failed"),
            }
        }
    }

    #[test]
    fn stratum_sampling_is_uniform() {
        use crate::sample::SampleStats;
        // Universal automaton, stratum k=2 at n=6: C(6,2) = 15 words.
        let u = universal_nfa(Alphabet::binary());
        let s = StratifiedCount::build(&u, 6, 1).unwrap();
        assert_eq!(s.count_with(2).to_u64(), Some(15));
        let mut rng = StdRng::seed_from_u64(72);
        let mut stats = SampleStats::new();
        for _ in 0..3000 {
            stats.record(s.sample_with(2, &mut rng).unwrap());
        }
        assert_eq!(stats.distinct(), 15);
        assert!(stats.looks_uniform(15), "chi² = {}", stats.chi_square(15));
    }

    #[test]
    fn empty_stratum_yields_none() {
        // The single-word automaton 0^n has an empty k=1 stratum for mark 1.
        let n = lsc_automata::families::single_word_nfa(6);
        let s = StratifiedCount::build(&n, 6, 1).unwrap();
        assert_eq!(s.count_with(0).to_u64(), Some(1));
        let mut rng = StdRng::seed_from_u64(73);
        assert!(s.sample_with(1, &mut rng).is_none());
        assert!(s.sample_with(0, &mut rng).is_some());
    }
}
