//! The bounded worker pool: admission control, deadlines, backpressure.
//!
//! Connection threads do no query work themselves — they parse nothing and
//! execute nothing. Every request line becomes a job submitted here, and
//! the pool's two knobs give the server its overload behavior:
//!
//! * **Admission control** — the queue is bounded. A submit against a full
//!   queue is rejected *immediately* ([`SubmitError::Full`]), and the
//!   server turns that into an `overloaded` response with a
//!   `retry_after_ms` hint. Nothing is silently dropped and nothing blocks:
//!   under overload the server sheds load at the door instead of growing
//!   an unbounded backlog (the queue is the only buffer in the system).
//! * **Deadlines** — every job records its enqueue time. A worker that
//!   dequeues a job past its deadline runs the job's *expire* path (the
//!   server answers `deadline-exceeded`) instead of its work: when the
//!   server is behind, it spends its capacity on requests whose clients
//!   are plausibly still waiting.
//!
//! Workers are plain OS threads popping from one mutex-guarded deque —
//! at protocol-message granularity the lock is uncontended noise compared
//! to query execution.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued request: what to run, what to do instead if the deadline
/// passed while queued.
struct Job {
    enqueued: Instant,
    deadline: Duration,
    work: Box<dyn FnOnce() + Send>,
    expire: Box<dyn FnOnce() + Send>,
}

/// Why a submit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after backing off.
    Full,
    /// The pool is shutting down; no further work is accepted.
    Shutdown,
}

/// Pool counters, folded into the server's stats response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed to completion.
    pub completed: u64,
    /// Submits rejected by admission control.
    pub rejected: u64,
    /// Jobs that aged past their deadline in the queue.
    pub expired: u64,
    /// Jobs whose work panicked (the worker unwinds and is respawned).
    pub panicked: u64,
    /// Replacement worker threads spawned after a panic unwound a worker —
    /// equal to [`PoolStats::panicked`] unless a respawn itself failed or
    /// the panic raced shutdown.
    pub respawned: u64,
    /// Jobs currently queued (not yet picked up).
    pub queued: usize,
}

struct PoolInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    panicked: AtomicU64,
    respawned: AtomicU64,
    /// Live worker handles. Inside `PoolInner` (not the `WorkerPool`
    /// façade) because the respawn guard registers replacement threads
    /// from *within* a dying worker.
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A fixed-size worker pool over a bounded job queue. See the module docs.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl WorkerPool {
    /// A pool with `workers` threads and room for `capacity` queued jobs
    /// (both clamped to at least 1).
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let handles: Vec<_> = (0..workers.max(1))
            .map(|i| spawn_worker(&inner, i).expect("spawn worker thread"))
            .collect();
        inner
            .workers
            .lock()
            .expect("pool workers poisoned")
            .extend(handles);
        WorkerPool { inner }
    }

    /// Submits a job. `work` runs on a worker thread; if the job instead
    /// ages past `deadline` while queued, `expire` runs (on a worker
    /// thread) and `work` never does.
    ///
    /// # Errors
    /// [`SubmitError::Full`] when the queue is at capacity (the job was
    /// not accepted — nothing will run), [`SubmitError::Shutdown`] after
    /// [`WorkerPool::shutdown`].
    pub fn submit(
        &self,
        deadline: Duration,
        work: impl FnOnce() + Send + 'static,
        expire: impl FnOnce() + Send + 'static,
    ) -> Result<(), SubmitError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::Shutdown);
        }
        let mut queue = self.inner.queue.lock().expect("pool queue poisoned");
        if queue.len() >= self.inner.capacity {
            drop(queue);
            self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Full);
        }
        queue.push_back(Job {
            enqueued: Instant::now(),
            deadline,
            work: Box::new(work),
            expire: Box::new(expire),
        });
        drop(queue);
        self.inner.available.notify_one();
        Ok(())
    }

    /// The bounded queue's capacity (what admission control rejects
    /// beyond) — with [`PoolStats::queued`], the backlog fraction the
    /// `health` verb and the adaptive `retry_after_ms` hint are computed
    /// from.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Jobs currently queued (not yet picked up) — a cheaper read than
    /// assembling full [`PoolStats`] for per-rejection hint computation.
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().expect("pool queue poisoned").len()
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            completed: self.inner.completed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            expired: self.inner.expired.load(Ordering::Relaxed),
            panicked: self.inner.panicked.load(Ordering::Relaxed),
            respawned: self.inner.respawned.load(Ordering::Relaxed),
            queued: self.inner.queue.lock().expect("pool queue poisoned").len(),
        }
    }

    /// Stops accepting work, drains the queue (queued jobs still run or
    /// expire), and joins the workers. Idempotent. Loops until the worker
    /// registry is empty: a panic racing shutdown may register one last
    /// replacement thread, which the next pass joins.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        loop {
            self.inner.available.notify_all();
            let handles: Vec<_> = self
                .inner
                .workers
                .lock()
                .expect("pool workers poisoned")
                .drain(..)
                .collect();
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns one worker thread wearing a [`RespawnGuard`].
fn spawn_worker(
    inner: &Arc<PoolInner>,
    index: usize,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let inner = inner.clone();
    std::thread::Builder::new()
        .name(format!("lsc-serve-worker-{index}"))
        .spawn(move || {
            let guard = RespawnGuard {
                inner: inner.clone(),
                index,
                armed: true,
            };
            worker_loop(&inner);
            guard.disarm();
        })
}

/// Armed for the lifetime of a worker thread. A clean exit (shutdown)
/// disarms it; a *panicking job* unwinds straight through `worker_loop`
/// and reaches this guard's `Drop` mid-unwind, which records the panic
/// and spawns a replacement worker. Without it an unwinding job would
/// silently shrink pool capacity until the server answers nothing but
/// `overloaded` — the submitter still gets its `internal` response
/// because the job's closures drop (and their completion slots fire)
/// during the unwind.
struct RespawnGuard {
    inner: Arc<PoolInner>,
    index: usize,
    armed: bool,
}

impl RespawnGuard {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.inner.panicked.fetch_add(1, Ordering::Relaxed);
        if self.inner.shutdown.load(Ordering::Acquire) {
            // Shutdown joins (and would re-join) the registry; a
            // replacement would only be torn down again.
            return;
        }
        // Everything is best-effort: this runs during an unwind, where a
        // second panic (a failed spawn, a poisoned registry) would abort
        // the process.
        if let Ok(handle) = spawn_worker(&self.inner, self.index) {
            self.inner.respawned.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut workers) = self.inner.workers.lock() {
                workers.push(handle);
            }
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.available.wait(queue).expect("pool queue poisoned");
            }
        };
        // Jobs run outside the queue lock, and *without* a catch_unwind:
        // a panicking job unwinds this thread and the RespawnGuard brings
        // a replacement up, so a panic can neither poison shared state it
        // half-mutated (nothing here is half-mutated — the lock is
        // released) nor shrink capacity.
        if job.enqueued.elapsed() > job.deadline {
            inner.expired.fetch_add(1, Ordering::Relaxed);
            (job.expire)();
        } else {
            (job.work)();
            inner.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_stats_count() {
        let pool = WorkerPool::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.submit(
                Duration::from_secs(10),
                move || tx.send(i).unwrap(),
                || panic!("should not expire"),
            )
            .unwrap();
        }
        let mut got: Vec<i32> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        pool.shutdown();
        assert_eq!(pool.stats().completed, 8);
        assert_eq!(pool.stats().queued, 0);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        // One worker wedged on a slow job; capacity 1 queue.
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(
            Duration::from_secs(10),
            move || {
                started_tx.send(()).unwrap();
                block_rx.recv().unwrap();
            },
            || {},
        )
        .unwrap();
        started_rx.recv().unwrap(); // worker is now busy
        pool.submit(Duration::from_secs(10), || {}, || {}).unwrap(); // fills the queue
        let refused = pool.submit(Duration::from_secs(10), || {}, || {});
        assert_eq!(refused, Err(SubmitError::Full));
        assert_eq!(pool.stats().rejected, 1);
        block_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn queued_jobs_past_deadline_expire() {
        let pool = WorkerPool::new(1, 8);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(
            Duration::from_secs(10),
            move || {
                started_tx.send(()).unwrap();
                block_rx.recv().unwrap();
            },
            || {},
        )
        .unwrap();
        started_rx.recv().unwrap();
        let (tx, rx) = mpsc::channel();
        let expired_tx = tx.clone();
        pool.submit(
            Duration::from_millis(10),
            move || tx.send("ran").unwrap(),
            move || expired_tx.send("expired").unwrap(),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        block_tx.send(()).unwrap();
        assert_eq!(rx.recv().unwrap(), "expired");
        pool.shutdown();
        assert_eq!(pool.stats().expired, 1);
    }

    #[test]
    fn panicking_jobs_do_not_kill_the_pool() {
        // One worker: if the unwound thread were not replaced, the second
        // job would never run.
        let pool = WorkerPool::new(1, 8);
        pool.submit(Duration::from_secs(10), || panic!("boom"), || {})
            .unwrap();
        let (tx, rx) = mpsc::channel();
        pool.submit(Duration::from_secs(10), move || tx.send(()).unwrap(), || {})
            .unwrap();
        rx.recv_timeout(Duration::from_secs(5))
            .expect("replacement worker ran the next job");
        pool.shutdown();
        assert_eq!(pool.stats().panicked, 1);
        assert_eq!(pool.stats().respawned, 1);
    }

    #[test]
    fn every_unwound_worker_is_respawned() {
        // More panics than workers: without respawn the pool would be dead
        // after two, and the final burst could never complete.
        let pool = WorkerPool::new(2, 32);
        for _ in 0..5 {
            pool.submit(Duration::from_secs(10), || panic!("boom"), || {})
                .unwrap();
        }
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.submit(Duration::from_secs(10), move || tx.send(i).unwrap(), || {})
                .unwrap();
        }
        let mut got: Vec<i32> = (0..8)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // The eighth send proves capacity survived, but the fifth unwind
        // may still be mid-flight — and a respawn racing `shutdown` is
        // (correctly) skipped — so let the counters settle before
        // shutting down and asserting on a quiescent pool.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().respawned < 5 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        pool.shutdown();
        assert_eq!(pool.stats().panicked, 5);
        assert_eq!(pool.stats().respawned, 5);
        assert_eq!(pool.stats().completed, 8);
    }

    #[test]
    fn shutdown_refuses_new_work_and_drains() {
        let pool = WorkerPool::new(1, 8);
        pool.shutdown();
        assert_eq!(
            pool.submit(Duration::from_secs(1), || {}, || {}),
            Err(SubmitError::Shutdown)
        );
        pool.shutdown(); // idempotent
    }
}
