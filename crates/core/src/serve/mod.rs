//! The concurrent serving layer: `nfa_tool serve` as a library.
//!
//! The paper's point is that `ENUM` / `COUNT` / `GEN` are cheap enough
//! *per query* to serve interactively; this module is where that becomes a
//! server. It stacks four pieces on top of the [`engine`](crate::engine):
//!
//! * [`json`] — a dependency-free JSON codec (the container vendors no
//!   registry crates, so the protocol carries its own).
//! * [`protocol`] — the versioned JSON-lines wire protocol: one request
//!   object per line, one response per line, ops mapping 1:1 onto the
//!   typed engine API (`prepare`, `count`, `count_exact`, `enumerate`
//!   with resume-token round-trips, `sample`, plus `hello` / `close` /
//!   `stats` / `bye`). The normative message reference lives in
//!   `docs/ARCHITECTURE.md` §4.
//! * [`SessionRegistry`] — connection-scoped sessions owning
//!   [`InstanceHandle`](crate::engine::InstanceHandle)s and live cursors,
//!   with idle-TTL eviction.
//! * [`WorkerPool`] — a bounded queue with admission control (reject with
//!   `retry_after_ms` when full) and per-request deadlines.
//! * [`faults`] — seeded deterministic fault injection ([`FaultPlan`])
//!   threaded through the connection streams, the snapshot store, and the
//!   worker jobs; `None` (the production configuration) is a passthrough.
//! * [`client`] — the reconnecting client: exponential backoff with
//!   seeded jitter, `retry_after_ms` honored, idle-safe verbs replayed,
//!   cursors resumed from their last token across resets and restarts.
//! * [`router`] — the cluster front-end (`nfa_tool route`): the same
//!   wire protocol, forwarded by instance fingerprint over a
//!   [`ShardMap`](crate::engine::ShardMap) ring of backend `serve`
//!   nodes, with snapshot shipping on topology change and
//!   failover-with-cursor-survival on backend death.
//!
//! [`Server`] assembles them around one shared
//! [`ShardedEngine`](crate::engine::ShardedEngine) — N independent
//! instance caches behind a consistent-hash shard map, so cache resolution
//! scales with cores — and optionally persists compiled instances through
//! the engine's [`SnapshotStore`](crate::engine::SnapshotStore), so a
//! restarted server warms every shard from disk instead of recompiling. Transports are
//! TCP ([`Server::spawn_tcp`]) — thread-per-connection by default, or the
//! readiness-based pipelining event loop via
//! [`ServeConfig::transport`](ServeConfig) — and stdio
//! ([`Server::serve_stdio`]); [`Server::handle_line`] is the
//! transport-free core.
//!
//! ```
//! use lsc_core::serve::{Server, ServeConfig};
//!
//! let server = Server::new(ServeConfig::default()).unwrap();
//! let conn = server.open_conn();
//! let reply = server.handle_line(
//!     conn,
//!     r#"{"op":"prepare","regex":"(0|1)*101(0|1)*","length":8}"#,
//! );
//! assert!(reply.text.contains(r#""ok":true"#));
//! server.shutdown();
//! ```

pub mod client;
mod event_loop;
pub mod faults;
pub mod json;
mod pool;
pub mod protocol;
pub mod router;
mod server;
mod session;

pub use client::{Client, ClientConfig, ClientError, ClientStats};
pub use faults::{Fault, FaultConfig, FaultPlan, FaultSite, FaultStats, FaultyStream};
pub use pool::{PoolStats, SubmitError, WorkerPool};
pub use protocol::{ErrorCode, WireError, PROTOCOL_VERSION};
pub use router::{BackendSpec, RouteConfig, RouteStats, Router};
pub use server::{Reply, ServeConfig, ServeStats, Server, TcpServerHandle, Transport};
pub use session::SessionRegistry;
