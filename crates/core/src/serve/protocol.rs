//! The versioned JSON-lines wire protocol.
//!
//! One request per line, one response per line, both JSON objects. Every
//! request names an `"op"`; every response carries `"ok"` (and echoes the
//! request's `"id"`, if any, so pipelining clients can match answers to
//! questions). The ops map 1:1 onto the typed [`Engine`] API:
//!
//! | op            | engine call                         |
//! |---------------|-------------------------------------|
//! | `hello`       | — (version handshake)               |
//! | `prepare`     | `Engine::prepare_nfa` (→ session)   |
//! | `count`       | `QueryKind::Count` on the handle    |
//! | `count_exact` | `QueryKind::CountExact`             |
//! | `enumerate`   | `Engine::cursor` / `resume_cursor`  |
//! | `sample`      | `QueryKind::Sample`                 |
//! | `close`       | — (drops the session)               |
//! | `stats`       | `ShardedEngine::stats` (aggregate + per-shard) + server counters |
//! | `health`      | — (liveness/degradation probe: shard count, pool depth, snapshot-store status) |
//! | `bye`         | — (ends the connection)             |
//!
//! The full normative reference — every field, an example session
//! transcript, and the resume-token grammar — lives in
//! `docs/ARCHITECTURE.md` §4. This module only defines the message types
//! and their (de)serialization; execution lives in
//! [`super::server::Server`].
//!
//! [`Engine`]: crate::engine::Engine

use crate::serve::json::{self, Json};

/// The protocol version this server speaks. Requests may carry `"proto"`;
/// a mismatch is rejected with [`ErrorCode::BadRequest`] rather than
/// half-understood.
pub const PROTOCOL_VERSION: u64 = 1;

/// A machine-readable failure class, carried as the response's `"code"`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, unknown op, missing/invalid fields, or a protocol
    /// version mismatch.
    BadRequest,
    /// The named session does not exist on this connection (never opened,
    /// closed, or evicted after idling past the server's TTL).
    UnknownSession,
    /// `count_exact` on an ambiguous instance (Theorem 5 requires MEM-UFA).
    NotUnambiguous,
    /// A resume token that does not parse or does not belong to the
    /// session's instance.
    InvalidToken,
    /// An FPRAS failure event on a randomized route.
    Fpras,
    /// Admission control: the worker queue is full. The response carries
    /// `"retry_after_ms"`; the request was not executed and is safe to
    /// retry verbatim.
    Overloaded,
    /// The request sat in the queue past the server's per-request deadline
    /// and was dropped without executing.
    DeadlineExceeded,
    /// The server failed internally (e.g. the automaton failed to compile).
    Internal,
}

impl ErrorCode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::NotUnambiguous => "not-unambiguous",
            ErrorCode::InvalidToken => "invalid-token",
            ErrorCode::Fpras => "fpras-failure",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A protocol-level failure: what goes into an `"ok": false` response.
#[derive(Clone, Debug)]
pub struct WireError {
    /// The failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Overloaded`]: how long the client should wait
    /// before retrying.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// A failure with no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    fn bad(message: impl Into<String>) -> WireError {
        WireError::new(ErrorCode::BadRequest, message)
    }
}

/// How a `prepare` names its automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceSpec {
    /// A regex over a single-character alphabet (defaults to the server's
    /// `default_alphabet`, normally `01`).
    Regex {
        /// The pattern, `lsc_automata::regex` syntax.
        pattern: String,
        /// The alphabet characters, in symbol order.
        alphabet: Option<String>,
    },
    /// A full automaton in the `lsc_automata::io` text format.
    NfaText(String),
}

/// One parsed request: the op and its arguments.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version handshake.
    Hello,
    /// Compile (or re-open) an instance and bind it to a session.
    Prepare {
        /// The automaton.
        spec: InstanceSpec,
        /// The witness length `n`.
        length: usize,
    },
    /// Routed `COUNT` on a session.
    Count {
        /// The session name.
        session: String,
    },
    /// Exact `COUNT` on a session (errors on ambiguous instances).
    CountExact {
        /// The session name.
        session: String,
    },
    /// One page of `ENUM` on a session, with optional token resumption.
    Enumerate {
        /// The session name.
        session: String,
        /// Witnesses per page (server default when absent).
        page_size: Option<usize>,
        /// Resume from this token instead of the session's live cursor.
        resume: Option<String>,
    },
    /// `GEN` on a session: `count` uniform witnesses under `seed`.
    Sample {
        /// The session name.
        session: String,
        /// Number of witnesses.
        count: usize,
        /// Draw randomness (equal seeds give equal witnesses).
        seed: u64,
    },
    /// Drop a session (its instance stays in the engine cache).
    Close {
        /// The session name.
        session: String,
    },
    /// Engine + server counters.
    Stats,
    /// Liveness and degradation probe: shard count, worker-pool depth,
    /// snapshot-store status, and the fault counters — cheap enough for a
    /// load balancer to poll (no engine work, no session required).
    Health,
    /// End the connection after the response.
    Bye,
}

/// A request plus its optional client-chosen `"id"` (echoed in the
/// response).
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// The client's correlation id, echoed verbatim.
    pub id: Option<Json>,
    /// The operation.
    pub request: Request,
}

/// Parses one request line.
///
/// # Errors
/// [`WireError`] with [`ErrorCode::BadRequest`] on malformed JSON, an
/// unknown op, a protocol-version mismatch, or missing/mistyped fields.
pub fn parse_request(line: &str) -> Result<Envelope, WireError> {
    let value = json::parse(line).map_err(|e| WireError::bad(e.to_string()))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(WireError::bad("request must be a JSON object"));
    }
    if let Some(proto) = value.get("proto") {
        if proto.as_u64() != Some(PROTOCOL_VERSION) {
            return Err(WireError::bad(format!(
                "unsupported protocol version (server speaks {PROTOCOL_VERSION})"
            )));
        }
    }
    let id = value.get("id").cloned();
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::bad("missing \"op\""))?;
    let session = |value: &Json| -> Result<String, WireError> {
        value
            .get("session")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| WireError::bad("missing \"session\""))
    };
    let request =
        match op {
            "hello" => Request::Hello,
            "prepare" => {
                let length = value
                    .get("length")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| WireError::bad("missing or invalid \"length\""))?;
                let spec = match (value.get("regex"), value.get("nfa_text")) {
                    (Some(pattern), None) => InstanceSpec::Regex {
                        pattern: pattern
                            .as_str()
                            .ok_or_else(|| WireError::bad("\"regex\" must be a string"))?
                            .to_string(),
                        alphabet: match value.get("alphabet") {
                            None => None,
                            Some(a) => Some(
                                a.as_str()
                                    .ok_or_else(|| WireError::bad("\"alphabet\" must be a string"))?
                                    .to_string(),
                            ),
                        },
                    },
                    (None, Some(text)) => InstanceSpec::NfaText(
                        text.as_str()
                            .ok_or_else(|| WireError::bad("\"nfa_text\" must be a string"))?
                            .to_string(),
                    ),
                    _ => {
                        return Err(WireError::bad(
                            "provide exactly one of \"regex\" or \"nfa_text\"",
                        ))
                    }
                };
                Request::Prepare { spec, length }
            }
            "count" => Request::Count {
                session: session(&value)?,
            },
            "count_exact" => Request::CountExact {
                session: session(&value)?,
            },
            "enumerate" => Request::Enumerate {
                session: session(&value)?,
                page_size: match value.get("page_size") {
                    None => None,
                    Some(v) => Some(v.as_usize().filter(|&n| n > 0).ok_or_else(|| {
                        WireError::bad("\"page_size\" must be a positive integer")
                    })?),
                },
                resume: match value.get("resume") {
                    None => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or_else(|| WireError::bad("\"resume\" must be a string"))?
                            .to_string(),
                    ),
                },
            },
            "sample" => Request::Sample {
                session: session(&value)?,
                count: match value.get("count") {
                    None => 1,
                    Some(v) => v.as_usize().ok_or_else(|| {
                        WireError::bad("\"count\" must be a non-negative integer")
                    })?,
                },
                seed: match value.get("seed") {
                    None => 0,
                    Some(v) => v
                        .as_u64()
                        .ok_or_else(|| WireError::bad("\"seed\" must be a non-negative integer"))?,
                },
            },
            "close" => Request::Close {
                session: session(&value)?,
            },
            "stats" => Request::Stats,
            "health" => Request::Health,
            "bye" => Request::Bye,
            other => return Err(WireError::bad(format!("unknown op {other:?}"))),
        };
    Ok(Envelope { id, request })
}

/// Builds an `"ok": true` response line from ordered fields.
pub fn ok_response(id: Option<&Json>, fields: Vec<(String, Json)>) -> String {
    let mut members = Vec::with_capacity(fields.len() + 2);
    members.push(("ok".to_string(), Json::Bool(true)));
    if let Some(id) = id {
        members.push(("id".to_string(), id.clone()));
    }
    members.extend(fields);
    Json::Obj(members).encode()
}

/// Builds an `"ok": false` response line.
pub fn error_response(id: Option<&Json>, error: &WireError) -> String {
    let mut members = vec![("ok".to_string(), Json::Bool(false))];
    if let Some(id) = id {
        members.push(("id".to_string(), id.clone()));
    }
    members.push(("code".to_string(), Json::str(error.code.as_str())));
    members.push(("error".to_string(), Json::str(error.message.clone())));
    if let Some(ms) = error.retry_after_ms {
        members.push(("retry_after_ms".to_string(), Json::num(ms as f64)));
    }
    Json::Obj(members).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases: Vec<(&str, Request)> = vec![
            (r#"{"op":"hello","proto":1}"#, Request::Hello),
            (
                r#"{"op":"prepare","regex":"(0|1)*","length":4}"#,
                Request::Prepare {
                    spec: InstanceSpec::Regex {
                        pattern: "(0|1)*".into(),
                        alphabet: None,
                    },
                    length: 4,
                },
            ),
            (
                r#"{"op":"prepare","nfa_text":"alphabet: 01\n","length":2}"#,
                Request::Prepare {
                    spec: InstanceSpec::NfaText("alphabet: 01\n".into()),
                    length: 2,
                },
            ),
            (
                r#"{"op":"count","session":"s1"}"#,
                Request::Count {
                    session: "s1".into(),
                },
            ),
            (
                r#"{"op":"count_exact","session":"s1"}"#,
                Request::CountExact {
                    session: "s1".into(),
                },
            ),
            (
                r#"{"op":"enumerate","session":"s1","page_size":5,"resume":"enum1.x"}"#,
                Request::Enumerate {
                    session: "s1".into(),
                    page_size: Some(5),
                    resume: Some("enum1.x".into()),
                },
            ),
            (
                r#"{"op":"sample","session":"s1","count":3,"seed":7}"#,
                Request::Sample {
                    session: "s1".into(),
                    count: 3,
                    seed: 7,
                },
            ),
            (
                r#"{"op":"close","session":"s1"}"#,
                Request::Close {
                    session: "s1".into(),
                },
            ),
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"health"}"#, Request::Health),
            (r#"{"op":"bye"}"#, Request::Bye),
        ];
        for (line, expected) in cases {
            assert_eq!(parse_request(line).unwrap().request, expected, "{line}");
        }
    }

    #[test]
    fn id_is_carried_through() {
        let env = parse_request(r#"{"op":"stats","id":17}"#).unwrap();
        assert_eq!(env.id, Some(Json::Num(17.0)));
        let response = ok_response(env.id.as_ref(), vec![]);
        assert_eq!(response, r#"{"ok":true,"id":17}"#);
        let error = error_response(
            env.id.as_ref(),
            &WireError::new(ErrorCode::UnknownSession, "no such session"),
        );
        assert_eq!(
            error,
            r#"{"ok":false,"id":17,"code":"unknown-session","error":"no such session"}"#
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "not json",
            "[]",
            r#"{"op":"warp"}"#,
            r#"{"op":"prepare","length":4}"#,
            r#"{"op":"prepare","regex":"a","nfa_text":"b","length":4}"#,
            r#"{"op":"prepare","regex":"a"}"#,
            r#"{"op":"count"}"#,
            r#"{"op":"enumerate","session":"s1","page_size":0}"#,
            r#"{"op":"hello","proto":2}"#,
            r#"{"op":"sample","session":"s1","seed":-1}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "accepted {line:?}");
        }
    }

    #[test]
    fn overloaded_response_carries_retry_hint() {
        let mut err = WireError::new(ErrorCode::Overloaded, "queue full");
        err.retry_after_ms = Some(50);
        let line = error_response(None, &err);
        assert_eq!(
            line,
            r#"{"ok":false,"code":"overloaded","error":"queue full","retry_after_ms":50}"#
        );
    }
}
