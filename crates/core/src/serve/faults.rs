//! Deterministic fault injection for the serve/snapshot stack.
//!
//! The serving layer's recovery claims — "a reset connection costs a
//! reconnect, never a wrong answer", "a crashed snapshot write costs a
//! re-prepare, never a torn artifact" — are only claims until something
//! *injects* those failures on a schedule the tests control. This module
//! is that schedule: a [`FaultPlan`] seeded with SplitMix64 (the same
//! vendored-RNG discipline as the shard-stress op log) decides, per I/O
//! site and per operation index, whether the next operation proceeds
//! cleanly or fails in one of the planned ways:
//!
//! * **short reads** — a stream read returns fewer bytes than asked;
//! * **partial writes** — a stream write accepts a prefix of the buffer;
//! * **mid-frame resets** — a write pushes *half* a response line onto
//!   the wire, then the connection dies (the cruelest tear: the peer sees
//!   a syntactically plausible prefix);
//! * **slow I/O** — an operation stalls before completing (exercises the
//!   socket timeouts);
//! * **disk write errors** — a snapshot save fails cleanly;
//! * **torn snapshot writes** — a snapshot save crashes mid-`tmp`-file,
//!   leaving the stale `.tmp` the startup sweep must reap;
//! * **queued-job panics** — a worker job panics mid-execution
//!   (contained by the pool; the client sees a typed `internal` error).
//!
//! **Determinism.** A decision is a pure function of `(seed, site,
//! index)` — no global RNG, no time dependence — so a failing chaos run
//! replays exactly from its seed. Concurrent connections interleave their
//! *index draws* nondeterministically (each site keeps one atomic
//! counter), but the chaos suite never asserts on *which* operation
//! failed — only that every completed answer is correct — so schedule
//! interleaving is free while the fault *mix* stays pinned.
//!
//! **Zero overhead when disabled.** Everything threads through as an
//! `Option<Arc<FaultPlan>>`; the disabled path is a single `None` branch
//! per I/O call ([`FaultyStream`] compiles to a passthrough), which is
//! noise against a syscall. The serve benches run with faults disabled
//! and pin the RTT.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64 — the decision mixer (identical constants to the shard
/// ring's; see `engine::shard`). Shared with the client's backoff jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Where in the stack an operation is about to happen. Each site draws
/// from its own decision stream (own salt, own operation counter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// A connection-stream read (blocking, thread-per-connection transport).
    StreamRead,
    /// A connection-stream write (blocking transport).
    StreamWrite,
    /// A snapshot-store save.
    SnapshotWrite,
    /// A queued worker job about to execute.
    Job,
    /// A nonblocking read driven by a readiness event (event-loop
    /// transport). Its own decision stream, so the two transports draw
    /// the same fault *mix* without aliasing each other's schedules.
    EventRead,
    /// A nonblocking write driven by a readiness event (event-loop
    /// transport).
    EventWrite,
    /// A router front connection or a router→backend forward (cluster
    /// router). Its own decision stream so router chaos does not alias
    /// the backends' stream schedules.
    RouterForward,
    /// A snapshot export/import shipped between stores by the router on
    /// topology change.
    SnapshotShip,
}

impl FaultSite {
    /// Every fault site in the stack, in stats-index order. Tests iterate
    /// this instead of hand-listing variants so a new site cannot ship
    /// without chaos coverage.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::StreamRead,
        FaultSite::StreamWrite,
        FaultSite::SnapshotWrite,
        FaultSite::Job,
        FaultSite::EventRead,
        FaultSite::EventWrite,
        FaultSite::RouterForward,
        FaultSite::SnapshotShip,
    ];

    fn salt(self) -> u64 {
        match self {
            FaultSite::StreamRead => 0x5EAD_0001,
            FaultSite::StreamWrite => 0x5EAD_0002,
            FaultSite::SnapshotWrite => 0x5EAD_0003,
            FaultSite::Job => 0x5EAD_0004,
            FaultSite::EventRead => 0x5EAD_0005,
            FaultSite::EventWrite => 0x5EAD_0006,
            FaultSite::RouterForward => 0x5EAD_0007,
            FaultSite::SnapshotShip => 0x5EAD_0008,
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::StreamRead => 0,
            FaultSite::StreamWrite => 1,
            FaultSite::SnapshotWrite => 2,
            FaultSite::Job => 3,
            FaultSite::EventRead => 4,
            FaultSite::EventWrite => 5,
            FaultSite::RouterForward => 6,
            FaultSite::SnapshotShip => 7,
        }
    }
}

/// What the plan injects into one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Deliver fewer bytes than the caller asked for (reads only).
    ShortRead,
    /// Accept a prefix of the buffer (writes only).
    PartialWrite,
    /// Fail with `ConnectionReset` — on writes, after pushing half the
    /// buffer onto the wire first (a mid-frame tear).
    Reset,
    /// Stall for the configured [`FaultConfig::slow_io`] before
    /// proceeding normally.
    SlowIo,
    /// Fail a snapshot save with an I/O error before any bytes move.
    DiskError,
    /// Crash a snapshot save mid-`tmp`-file: a prefix of the bytes lands
    /// on disk under the `.tmp` name and the save errors out.
    TornWrite,
    /// Panic inside the queued job (the worker pool contains it).
    Panic,
}

/// One planned fault plus an auxiliary draw (used where the fault needs
/// a size — e.g. how many bytes of a torn write survive).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedFault {
    /// The fault to inject.
    pub fault: Fault,
    /// A deterministic auxiliary value derived from the same decision
    /// draw (torn-write prefix length, short-read byte budget, ...).
    pub aux: u64,
}

/// Per-site fault probabilities, in parts per 1024 of operations.
///
/// Rates are per *operation class at that site*: e.g. `reset_per_1024 =
/// 64` resets ~6% of stream operations. The default plan is all-zeros
/// (a seeded but inert plan); the chaos suite turns on what it tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// The master seed: the entire schedule is a pure function of it.
    pub seed: u64,
    /// Stream reads that return fewer bytes than asked.
    pub short_read_per_1024: u16,
    /// Stream writes that accept only a prefix.
    pub partial_write_per_1024: u16,
    /// Stream operations that die with `ConnectionReset` (writes tear
    /// mid-frame first).
    pub reset_per_1024: u16,
    /// Stream operations that stall for [`FaultConfig::slow_io`] first.
    pub slow_io_per_1024: u16,
    /// The stall injected by slow-I/O faults.
    pub slow_io: Duration,
    /// Snapshot saves that fail cleanly with an I/O error.
    pub disk_error_per_1024: u16,
    /// Snapshot saves that crash mid-`tmp`-file (leaving the stale
    /// `.tmp` for the startup sweep).
    pub torn_write_per_1024: u16,
    /// Queued jobs that panic mid-execution.
    pub job_panic_per_1024: u16,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            short_read_per_1024: 0,
            partial_write_per_1024: 0,
            reset_per_1024: 0,
            slow_io_per_1024: 0,
            slow_io: Duration::from_millis(5),
            disk_error_per_1024: 0,
            torn_write_per_1024: 0,
            job_panic_per_1024: 0,
        }
    }
}

impl FaultConfig {
    /// The chaos suite's standard mix under `seed`: a few percent of
    /// stream operations fail (resets, short reads, partial writes, the
    /// occasional stall), snapshot saves occasionally tear or error, and
    /// the odd queued job panics. Everything the recovery machinery must
    /// survive, at rates high enough to fire in a smoke-sized run.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            short_read_per_1024: 48,
            partial_write_per_1024: 48,
            reset_per_1024: 24,
            slow_io_per_1024: 8,
            slow_io: Duration::from_millis(2),
            disk_error_per_1024: 96,
            torn_write_per_1024: 96,
            job_panic_per_1024: 16,
        }
    }
}

/// How many faults of each kind the plan has actually injected — the
/// observability half of the chaos harness (tests assert the run was
/// not accidentally fault-free).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Short reads injected.
    pub short_reads: u64,
    /// Partial writes injected.
    pub partial_writes: u64,
    /// Connection resets injected.
    pub resets: u64,
    /// Slow-I/O stalls injected.
    pub slow_ios: u64,
    /// Snapshot disk errors injected.
    pub disk_errors: u64,
    /// Torn snapshot writes injected.
    pub torn_writes: u64,
    /// Job panics injected.
    pub job_panics: u64,
}

impl FaultStats {
    /// Total faults injected across every class.
    pub fn total(&self) -> u64 {
        self.short_reads
            + self.partial_writes
            + self.resets
            + self.slow_ios
            + self.disk_errors
            + self.torn_writes
            + self.job_panics
    }
}

/// A seeded fault schedule shared by every wrapped I/O site. See the
/// module docs for the determinism and overhead contracts.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    /// One operation counter per site (indexed by [`FaultSite::index`]).
    counters: [AtomicU64; 8],
    short_reads: AtomicU64,
    partial_writes: AtomicU64,
    resets: AtomicU64,
    slow_ios: AtomicU64,
    disk_errors: AtomicU64,
    torn_writes: AtomicU64,
    job_panics: AtomicU64,
}

impl FaultPlan {
    /// A plan executing `config`'s schedule.
    pub fn new(config: FaultConfig) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            config,
            counters: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            short_reads: AtomicU64::new(0),
            partial_writes: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            slow_ios: AtomicU64::new(0),
            disk_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            job_panics: AtomicU64::new(0),
        })
    }

    /// The configuration this plan executes.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// What the plan would decide for operation `index` at `site` — the
    /// pure function underneath [`FaultPlan::decide`], exposed so tests
    /// can pin the schedule without consuming counter state.
    pub fn decision_at(&self, site: FaultSite, index: u64) -> Option<PlannedFault> {
        let draw = splitmix64(self.config.seed ^ site.salt() ^ index.wrapping_mul(0x9E37));
        let roll = (draw % 1024) as u16;
        let aux = splitmix64(draw);
        let c = &self.config;
        // Partition [0, 1024) into per-fault bands, site by site. A roll
        // past every band is a clean operation.
        let mut band = 0u16;
        let mut hit = |rate: u16, fault: Fault| -> Option<PlannedFault> {
            let lo = band;
            band = band.saturating_add(rate);
            (lo..band)
                .contains(&roll)
                .then_some(PlannedFault { fault, aux })
        };
        match site {
            // Readiness-driven reads/writes draw from the same rate knobs as
            // the blocking stream sites (the chaos mix applies to any
            // transport) but on their own salted streams.
            FaultSite::StreamRead | FaultSite::EventRead => hit(c.reset_per_1024, Fault::Reset)
                .or_else(|| hit(c.short_read_per_1024, Fault::ShortRead))
                .or_else(|| hit(c.slow_io_per_1024, Fault::SlowIo)),
            FaultSite::StreamWrite | FaultSite::EventWrite => hit(c.reset_per_1024, Fault::Reset)
                .or_else(|| hit(c.partial_write_per_1024, Fault::PartialWrite))
                .or_else(|| hit(c.slow_io_per_1024, Fault::SlowIo)),
            // Router front/forward traffic is duplex behind one site; the
            // reset band covers both directions and the read-only /
            // write-only bands are applied by whichever half draws them.
            FaultSite::RouterForward => hit(c.reset_per_1024, Fault::Reset)
                .or_else(|| hit(c.short_read_per_1024, Fault::ShortRead))
                .or_else(|| hit(c.partial_write_per_1024, Fault::PartialWrite))
                .or_else(|| hit(c.slow_io_per_1024, Fault::SlowIo)),
            FaultSite::SnapshotWrite | FaultSite::SnapshotShip => {
                hit(c.disk_error_per_1024, Fault::DiskError)
                    .or_else(|| hit(c.torn_write_per_1024, Fault::TornWrite))
            }
            FaultSite::Job => hit(c.job_panic_per_1024, Fault::Panic),
        }
    }

    /// Draws the next operation index for `site` and returns the planned
    /// fault, if any, recording it in the injected-fault counters.
    pub fn decide(&self, site: FaultSite) -> Option<PlannedFault> {
        let index = self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        let planned = self.decision_at(site, index)?;
        let counter = match planned.fault {
            Fault::ShortRead => &self.short_reads,
            Fault::PartialWrite => &self.partial_writes,
            Fault::Reset => &self.resets,
            Fault::SlowIo => &self.slow_ios,
            Fault::DiskError => &self.disk_errors,
            Fault::TornWrite => &self.torn_writes,
            Fault::Panic => &self.job_panics,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Some(planned)
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            short_reads: self.short_reads.load(Ordering::Relaxed),
            partial_writes: self.partial_writes.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            slow_ios: self.slow_ios.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            job_panics: self.job_panics.load(Ordering::Relaxed),
        }
    }

    /// The stall for slow-I/O faults.
    pub fn slow_io(&self) -> Duration {
        self.config.slow_io
    }
}

/// The injected `ConnectionReset` error (distinguishable in logs from a
/// real peer reset by its message).
fn reset_error() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected: connection reset")
}

/// A `Read + Write` wrapper that consults a [`FaultPlan`] before every
/// operation. With no plan it forwards untouched — the production
/// configuration compiles to a passthrough.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: Option<Arc<FaultPlan>>,
    read_site: FaultSite,
    write_site: FaultSite,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan` (`None` disables injection entirely),
    /// drawing from the blocking-transport sites
    /// ([`FaultSite::StreamRead`] / [`FaultSite::StreamWrite`]).
    pub fn new(inner: S, plan: Option<Arc<FaultPlan>>) -> FaultyStream<S> {
        FaultyStream::with_sites(inner, plan, FaultSite::StreamRead, FaultSite::StreamWrite)
    }

    /// Wraps `inner` drawing decisions from explicit sites — how the
    /// event-loop transport routes its nonblocking socket I/O through
    /// [`FaultSite::EventRead`] / [`FaultSite::EventWrite`].
    pub fn with_sites(
        inner: S,
        plan: Option<Arc<FaultPlan>>,
        read_site: FaultSite,
        write_site: FaultSite,
    ) -> FaultyStream<S> {
        FaultyStream {
            inner,
            plan,
            read_site,
            write_site,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(plan) = &self.plan else {
            return self.inner.read(buf);
        };
        match plan.decide(self.read_site) {
            Some(PlannedFault {
                fault: Fault::Reset,
                ..
            }) => Err(reset_error()),
            Some(PlannedFault {
                fault: Fault::ShortRead,
                aux,
            }) if buf.len() > 1 => {
                // Deliver a nonempty strict prefix: correctness must not
                // depend on any read filling its buffer.
                let n = 1 + (aux as usize) % (buf.len() - 1);
                self.inner.read(&mut buf[..n])
            }
            Some(PlannedFault {
                fault: Fault::SlowIo,
                ..
            }) => {
                std::thread::sleep(plan.slow_io());
                self.inner.read(buf)
            }
            _ => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(plan) = &self.plan else {
            return self.inner.write(buf);
        };
        match plan.decide(self.write_site) {
            Some(PlannedFault {
                fault: Fault::Reset,
                ..
            }) => {
                // The mid-frame tear: push half the frame, then die. The
                // peer sees a prefix of a response line with no newline.
                if buf.len() > 1 {
                    let _ = self.inner.write(&buf[..buf.len() / 2]);
                    let _ = self.inner.flush();
                }
                Err(reset_error())
            }
            Some(PlannedFault {
                fault: Fault::PartialWrite,
                aux,
            }) if buf.len() > 1 => {
                let n = 1 + (aux as usize) % (buf.len() - 1);
                self.inner.write(&buf[..n])
            }
            Some(PlannedFault {
                fault: Fault::SlowIo,
                ..
            }) => {
                std::thread::sleep(plan.slow_io());
                self.inner.write(buf)
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_site_and_index() {
        let a = FaultPlan::new(FaultConfig::chaos(42));
        let b = FaultPlan::new(FaultConfig::chaos(42));
        let c = FaultPlan::new(FaultConfig::chaos(43));
        let mut diverged = false;
        for site in FaultSite::ALL {
            for index in 0..2048 {
                assert_eq!(a.decision_at(site, index), b.decision_at(site, index));
                if a.decision_at(site, index) != c.decision_at(site, index) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds must give different schedules");
    }

    #[test]
    fn chaos_rates_actually_fire() {
        let plan = FaultPlan::new(FaultConfig::chaos(7));
        let mut stream_faults = 0usize;
        let mut snap_faults = 0usize;
        for index in 0..4096 {
            if plan.decision_at(FaultSite::StreamWrite, index).is_some() {
                stream_faults += 1;
            }
            if plan.decision_at(FaultSite::SnapshotWrite, index).is_some() {
                snap_faults += 1;
            }
        }
        // ~12% of stream writes, ~19% of snapshot saves at the chaos mix.
        assert!(
            stream_faults > 64,
            "stream faults must fire: {stream_faults}"
        );
        assert!(
            snap_faults > 128,
            "snapshot faults must fire: {snap_faults}"
        );
    }

    #[test]
    fn every_site_is_triggerable_under_chaos() {
        // Enumerate ALL (not a hand-picked subset): each site's decision
        // stream must actually fire under the standard chaos mix, and the
        // indices must be distinct so no site aliases another's stream.
        let plan = FaultPlan::new(FaultConfig::chaos(11));
        let mut indices = std::collections::BTreeSet::new();
        for site in FaultSite::ALL {
            assert!(indices.insert(site.index()), "{site:?} reuses an index");
            let fired = (0..4096).any(|i| plan.decision_at(site, i).is_some());
            assert!(fired, "{site:?} never fires under FaultConfig::chaos");
        }
        assert_eq!(indices.len(), FaultSite::ALL.len());
    }

    #[test]
    fn event_sites_share_rates_but_not_schedules() {
        // The readiness sites fire under the standard chaos mix (same rate
        // knobs as the blocking stream sites)...
        let plan = FaultPlan::new(FaultConfig::chaos(5));
        let stream: Vec<_> = (0..512)
            .map(|i| plan.decision_at(FaultSite::StreamRead, i))
            .collect();
        let event: Vec<_> = (0..512)
            .map(|i| plan.decision_at(FaultSite::EventRead, i))
            .collect();
        assert!(event.iter().any(Option::is_some));
        // ...but on their own salted decision streams.
        assert_ne!(stream, event, "sites must not alias one another");

        // A FaultyStream routed at the event sites records its injections.
        let plan = FaultPlan::new(FaultConfig {
            seed: 9,
            reset_per_1024: 1024,
            ..FaultConfig::default()
        });
        let mut s = FaultyStream::with_sites(
            std::io::Cursor::new(b"data".to_vec()),
            Some(plan.clone()),
            FaultSite::EventRead,
            FaultSite::EventWrite,
        );
        assert!(s.read(&mut [0u8; 4]).is_err());
        assert!(s.write(b"0123456789").is_err());
        assert_eq!(plan.stats().resets, 2);
    }

    #[test]
    fn disabled_stream_is_a_passthrough() {
        let mut stream = FaultyStream::new(std::io::Cursor::new(Vec::new()), None);
        stream.write_all(b"hello world").unwrap();
        stream.flush().unwrap();
        let mut stream = FaultyStream::new(std::io::Cursor::new(b"hello".to_vec()), None);
        let mut buf = [0u8; 16];
        assert_eq!(stream.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn injected_resets_and_short_reads_surface() {
        // A reset-only plan at full rate: the very first operation fails.
        let plan = FaultPlan::new(FaultConfig {
            seed: 1,
            reset_per_1024: 1024,
            ..FaultConfig::default()
        });
        let mut stream =
            FaultyStream::new(std::io::Cursor::new(b"data".to_vec()), Some(plan.clone()));
        let err = stream.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = stream.write(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The tear left a strict prefix of the frame in the stream.
        let written = stream.get_ref().get_ref();
        assert_eq!(written.len(), 5, "half the frame on the wire");
        assert_eq!(plan.stats().resets, 2);

        // A short-read-only plan: reads deliver nonempty strict prefixes.
        let plan = FaultPlan::new(FaultConfig {
            seed: 2,
            short_read_per_1024: 1024,
            ..FaultConfig::default()
        });
        let mut stream = FaultyStream::new(
            std::io::Cursor::new(b"abcdefgh".to_vec()),
            Some(plan.clone()),
        );
        let mut buf = [0u8; 8];
        let n = stream.read(&mut buf).unwrap();
        assert!(
            (1..8).contains(&n),
            "short read must be a strict prefix: {n}"
        );
        assert!(plan.stats().short_reads >= 1);
    }

    #[test]
    fn aggregate_stats_sum_the_classes() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            partial_write_per_1024: 1024,
            ..FaultConfig::default()
        });
        let mut stream = FaultyStream::new(std::io::Cursor::new(Vec::new()), Some(plan.clone()));
        // write_all loops over the injected partial writes and completes.
        stream
            .write_all(b"the whole frame eventually lands")
            .unwrap();
        assert_eq!(
            stream.get_ref().get_ref().as_slice(),
            b"the whole frame eventually lands"
        );
        let stats = plan.stats();
        assert!(stats.partial_writes >= 1);
        assert_eq!(stats.total(), stats.partial_writes);
    }
}
