//! The readiness-based TCP transport: one event loop, every connection.
//!
//! Where the threaded transport spends a blocking reader thread per
//! accepted socket, this module parks *all* of them behind one epoll
//! instance (via the vendored [`lsc_reactor`] poller) and a single loop
//! thread:
//!
//! * **Accept** — the nonblocking listener accepts until `WouldBlock`;
//!   each socket is set nonblocking and registered read-only under a
//!   fresh token.
//! * **Read** — a readability event drains the socket into the
//!   connection's read buffer and parses *every* complete JSON line out
//!   of it: a client that pipelines eight requests in one syscall gets
//!   all eight parsed off one wakeup and queued on the connection.
//! * **Execute** — parsed lines feed the same shared [`WorkerPool`] the
//!   threaded transport uses, **one in-flight job per connection**: a
//!   session is checked out of the registry while a request runs, and
//!   live cursors advance statefully, so per-connection serial execution
//!   is what makes responses bit-identical to the threaded transport
//!   (which enforces the same thing by blocking its reader thread).
//!   Pipelining overlaps *connections*, parsing, and socket I/O — not
//!   requests within one connection.
//! * **Complete** — workers push `(token, reply)` onto a shared
//!   completion queue and nudge the loop through a wake pipe
//!   ([`lsc_reactor::Waker`]); the loop appends replies to the
//!   connection's write buffer strictly in request order and submits the
//!   next queued line.
//! * **Write** — buffered responses flush until `WouldBlock`; only a
//!   backpressured connection registers write interest, and it drops it
//!   again once drained (level-triggered epoll would otherwise wake on
//!   every tick). Responses that complete while the socket is clogged
//!   coalesce into one buffer and usually one syscall.
//!
//! **Ordering guarantee.** Responses on one connection come back in
//! request order, always: lines are parsed in wire order into a FIFO,
//! executed one at a time, and appended to the write buffer as each
//! completes. A refusal (`overloaded`, shutdown) is appended at its
//! request's position the moment the submit is refused — exactly where
//! the threaded transport would write it.
//!
//! **Fault injection.** All socket I/O flows through [`FaultyStream`]
//! routed at the readiness sites ([`FaultSite::EventRead`] /
//! [`FaultSite::EventWrite`]), so the chaos suite drives partial reads,
//! partial writes, and mid-frame resets through the nonblocking paths
//! with the same seeded determinism as the blocking ones.
//!
//! **Buffer ownership.** Each connection owns exactly one read buffer
//! (unparsed bytes), one write buffer plus flush offset, and its pending
//! FIFO; nothing is shared with the loop or other connections, so an
//! event never touches memory racing with a worker. The only cross-thread
//! state is the completion queue (mutex-guarded, swapped out wholesale)
//! and the wake pipe.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lsc_reactor::{Event, Interest, Poller, Token, Waker};

use crate::serve::faults::{FaultPlan, FaultSite, FaultyStream};
use crate::serve::server::{Reply, ServerInner, TcpServerHandle};

/// Registration token of the accept listener.
const LISTENER: usize = 0;
/// Registration token of the wake pipe.
const WAKER: usize = 1;
/// First connection token (monotonic from here; tokens are never reused,
/// so a late completion can never alias a newer connection).
const FIRST_CONN: usize = 2;

/// A read buffer growing past this without a newline is a runaway frame;
/// the connection is dropped as dirty (the threaded transport's analogue
/// is a reader thread pinned forever, which the read timeout reaps).
const MAX_LINE_BYTES: usize = 4 << 20;

/// Sweep cadence for idle-connection reaping.
const SWEEP_EVERY: Duration = Duration::from_millis(500);

/// How long one `epoll_wait` may park (bounds shutdown + sweep latency).
const WAIT_TICK: Duration = Duration::from_millis(200);

/// One finished request: which connection, and what to write.
struct Completion {
    token: usize,
    reply: Reply,
}

/// Per-connection state. See the module docs for the ownership story.
struct Conn {
    /// The nonblocking socket behind the readiness fault sites.
    stream: FaultyStream<TcpStream>,
    /// The server-wide connection id (session registry key).
    id: u64,
    /// Bytes read but not yet parsed into lines.
    rbuf: Vec<u8>,
    /// Response bytes not yet flushed; `woff` is how far the flush got.
    wbuf: Vec<u8>,
    woff: usize,
    /// Parsed lines waiting their turn (FIFO — wire order), with the
    /// instant each was parsed (its queue-deadline clock starts there).
    pending: VecDeque<(String, Instant)>,
    /// One job at a time per connection (the serialization invariant).
    inflight: bool,
    /// What the poller currently watches for this socket.
    interest: Interest,
    /// Last read/completion activity, for idle reaping.
    last_activity: Instant,
    /// Peer sent EOF: drain what's queued, then close.
    read_closed: bool,
    /// A `bye` (or shutdown refusal) was answered: flush, then close,
    /// ignoring any further pipelined input — the threaded transport
    /// stops reading after `bye` too.
    closing: bool,
}

/// Spawns the event-loop transport for `inner` on `addr`.
///
/// # Errors
/// Propagates bind/poller-setup failures; hosts without epoll fail with
/// `Unsupported` (probe first via `Transport::event_loop_supported`).
pub(crate) fn spawn(inner: Arc<ServerInner>, addr: &str) -> std::io::Result<TcpServerHandle> {
    // lsc-analyze: allow(unrouted-io) reason="one-time listener setup before any connection exists; per-connection I/O flows through FaultyStream at the EventRead/EventWrite sites"
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let poller = Poller::new()?;
    let waker = Arc::new(Waker::new()?);
    poller.register(&listener, Token(LISTENER), Interest::READABLE)?;
    poller.register(&*waker, Token(WAKER), Interest::READABLE)?;
    let stop = Arc::new(AtomicBool::new(false));
    let event_loop = EventLoop {
        inner,
        listener,
        poller,
        waker: waker.clone(),
        stop: stop.clone(),
        completions: Arc::new(Mutex::new(Vec::new())),
        conns: HashMap::new(),
        next_token: FIRST_CONN,
    };
    let thread = std::thread::Builder::new()
        .name("lsc-serve-epoll".to_string())
        .spawn(move || event_loop.run())
        .expect("spawn event loop thread");
    Ok(TcpServerHandle::for_event_loop(local, stop, waker, thread))
}

struct EventLoop {
    inner: Arc<ServerInner>,
    listener: TcpListener,
    poller: Poller,
    waker: Arc<Waker>,
    stop: Arc<AtomicBool>,
    /// Finished requests, pushed by worker threads, swapped out wholesale
    /// by the loop after each wake.
    completions: Arc<Mutex<Vec<Completion>>>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if self.poller.wait(&mut events, Some(WAIT_TICK)).is_err() {
                // Transient epoll failure: re-check stop and try again
                // rather than silently wedging every connection.
                if self.stop.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            for ev in events.drain(..) {
                match ev.token.0 {
                    LISTENER => self.accept_ready(),
                    WAKER => self.waker.drain(),
                    token => {
                        if ev.readable || ev.closed {
                            self.read_ready(token);
                        }
                        if ev.writable {
                            self.pump(token);
                        }
                    }
                }
            }
            self.deliver_completions();
            if last_sweep.elapsed() >= SWEEP_EVERY {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        // Shutdown: close every socket (waking blocked peers with EOF) and
        // drop their sessions — resume tokens survive for reconnects.
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token, false);
        }
    }

    /// Accepts until `WouldBlock`, registering each socket read-only.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let id = self.inner.begin_conn();
                    if stream.set_nonblocking(true).is_err() {
                        self.inner.note_reset();
                        self.inner.end_conn(id);
                        continue;
                    }
                    // One full frame per flush: Nagle + delayed ACK would
                    // stall small response lines otherwise.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    if self
                        .poller
                        .register(&stream, Token(token), Interest::READABLE)
                        .is_err()
                    {
                        self.inner.note_reset();
                        self.inner.end_conn(id);
                        continue;
                    }
                    self.next_token += 1;
                    let plan: Option<Arc<FaultPlan>> = self.inner.faults();
                    self.conns.insert(
                        token,
                        Conn {
                            stream: FaultyStream::with_sites(
                                stream,
                                plan,
                                FaultSite::EventRead,
                                FaultSite::EventWrite,
                            ),
                            id,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            woff: 0,
                            pending: VecDeque::new(),
                            inflight: false,
                            interest: Interest::READABLE,
                            last_activity: Instant::now(),
                            read_closed: false,
                            closing: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept errors (peer already reset, fd
                // pressure): drop this wakeup, epoll will re-arm.
                Err(_) => break,
            }
        }
    }

    /// Drains the socket, parses every complete line, and pumps.
    fn read_ready(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.last_activity = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    if conn.rbuf.len() > MAX_LINE_BYTES {
                        self.close_conn(token, true);
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Peer reset or an injected EventRead fault: dirty close,
                // every other connection unaffected.
                Err(_) => {
                    self.close_conn(token, true);
                    return;
                }
            }
        }
        if !self.parse_lines(token) {
            return;
        }
        self.pump(token);
    }

    /// Splits `rbuf` into complete lines and queues them. Mirrors
    /// `BufRead::lines` framing: `\n` terminates, a trailing `\r` is
    /// stripped, EOF flushes a final unterminated line, and invalid UTF-8
    /// is an error (dirty close). Returns false when the connection died.
    fn parse_lines(&mut self, token: usize) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let now = Instant::now();
        let mut start = 0usize;
        while let Some(pos) = conn.rbuf[start..].iter().position(|&b| b == b'\n') {
            let end = start + pos;
            let mut line_bytes = &conn.rbuf[start..end];
            if line_bytes.last() == Some(&b'\r') {
                line_bytes = &line_bytes[..line_bytes.len() - 1];
            }
            let Ok(line) = std::str::from_utf8(line_bytes) else {
                self.close_conn(token, true);
                return false;
            };
            // `closing` drops any input pipelined after a `bye`, exactly
            // like the threaded loop that stopped reading.
            if !line.trim().is_empty() && !conn.closing {
                conn.pending.push_back((line.to_string(), now));
            }
            start = end + 1;
        }
        conn.rbuf.drain(..start);
        if conn.read_closed && !conn.rbuf.is_empty() {
            // EOF with a final unterminated line: serve it (threaded
            // `lines()` yields it too).
            let mut tail = std::mem::take(&mut conn.rbuf);
            if tail.last() == Some(&b'\r') {
                tail.pop();
            }
            let Ok(line) = String::from_utf8(tail) else {
                self.close_conn(token, true);
                return false;
            };
            if !line.trim().is_empty() && !conn.closing {
                conn.pending.push_back((line, now));
            }
        }
        if conn.rbuf.is_empty() && conn.rbuf.capacity() > (64 << 10) {
            conn.rbuf.shrink_to(4096);
        }
        true
    }

    /// Advances a connection: submit queued lines (one in flight at a
    /// time), flush buffered responses, update interest, close if done.
    fn pump(&mut self, token: usize) {
        self.submit_next(token);
        self.flush_conn(token);
    }

    /// Submits the head of the pending FIFO unless a job is already in
    /// flight. Refusals (`overloaded`, shutdown) are answered inline at
    /// their request's position and the loop tries the next line.
    fn submit_next(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.inflight || conn.closing {
                return;
            }
            let Some((line, parsed_at)) = conn.pending.pop_front() else {
                return;
            };
            let completions = self.completions.clone();
            let waker = self.waker.clone();
            let done = Box::new(move |reply: Reply| {
                {
                    let mut queue = completions.lock().expect("completion queue poisoned");
                    queue.push(Completion { token, reply });
                }
                waker.wake();
            });
            match self
                .inner
                .submit_async(conn.id, line, parsed_at.elapsed(), done)
            {
                Ok(()) => {
                    conn.inflight = true;
                    return;
                }
                Err(refusal) => {
                    push_reply(conn, &refusal);
                    // A shutdown refusal closes; otherwise keep answering
                    // the rest of the batch (each refusal consumes one
                    // pending line, so this terminates).
                    if conn.closing {
                        return;
                    }
                }
            }
        }
    }

    /// Swaps out the completion queue and applies each reply: clear the
    /// in-flight flag, append the response in order, submit the next line.
    fn deliver_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut queue = self.completions.lock().expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        let mut touched: Vec<usize> = Vec::with_capacity(batch.len());
        for completion in batch {
            // A connection that died while its job ran: the reply has
            // nowhere to go (the threaded transport's write would have
            // failed the same way).
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                continue;
            };
            conn.inflight = false;
            conn.last_activity = Instant::now();
            push_reply(conn, &completion.reply);
            touched.push(completion.token);
        }
        for token in touched {
            self.pump(token);
        }
    }

    /// Flushes the write buffer until done or `WouldBlock`, keeps write
    /// interest only while backpressured, and closes drained connections
    /// that have nothing left to do.
    fn flush_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.woff < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.woff..]) {
                Ok(0) => {
                    self.close_conn(token, true);
                    return;
                }
                Ok(n) => {
                    conn.woff += n;
                    // A partial write is peer progress: a slow reader
                    // draining a large response must not look idle to
                    // `sweep_idle` while it is still consuming bytes.
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Peer reset or an injected EventWrite fault (a mid-frame
                // tear pushed half the response; the peer sees a torn
                // frame, like the threaded transport's injected resets).
                Err(_) => {
                    self.close_conn(token, true);
                    return;
                }
            }
        }
        if conn.woff >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.woff = 0;
            if conn.wbuf.capacity() > (64 << 10) {
                conn.wbuf.shrink_to(4096);
            }
        }
        let backpressured = !conn.wbuf.is_empty();
        let idle = !backpressured && !conn.inflight && conn.pending.is_empty();
        if idle && (conn.closing || conn.read_closed) {
            // Clean exit: flushed, nothing queued, peer gone or `bye`d.
            self.close_conn(token, false);
            return;
        }
        let desired = Interest {
            // After `bye` (or EOF) there is nothing left to read.
            readable: !conn.closing && !conn.read_closed,
            writable: backpressured,
        };
        if desired != conn.interest
            && self
                .poller
                .reregister(conn.stream.get_ref(), Token(token), desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Reaps connections idle past the configured read timeout — the
    /// event-loop analogue of the threaded transport's socket read
    /// timeout (idle-peer reap; sessions drop, resume tokens survive).
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.inner.read_timeout() else {
            return;
        };
        let dead: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                // Pipelined lines not yet submitted count as activity the
                // server owes, and partial writes bump `last_activity`, so
                // a slow reader draining a backpressured `wbuf` is never
                // reaped mid-drain — only a peer making *no* progress for
                // a full timeout window is.
                !conn.inflight && conn.pending.is_empty() && conn.last_activity.elapsed() > timeout
            })
            .map(|(&token, _)| token)
            .collect();
        for token in dead {
            self.close_conn(token, true);
        }
    }

    /// Removes a connection: deregister, drop its sessions, count dirty
    /// exits as survived resets.
    fn close_conn(&mut self, token: usize, dirty: bool) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.get_ref());
            if dirty {
                self.inner.note_reset();
            }
            self.inner.end_conn(conn.id);
        }
    }
}

/// Appends one response line to the write buffer (in completion order ==
/// request order, per the serialization invariant) and latches `closing`
/// after a `bye`/shutdown reply, dropping any input queued behind it.
fn push_reply(conn: &mut Conn, reply: &Reply) {
    conn.wbuf.extend_from_slice(reply.text.as_bytes());
    conn.wbuf.push(b'\n');
    if reply.close {
        conn.closing = true;
        conn.pending.clear();
    }
}
