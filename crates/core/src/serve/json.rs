//! A minimal JSON codec for the wire protocol.
//!
//! The container has no registry access, so rather than pulling in `serde`
//! this module implements exactly the JSON subset the protocol needs: the
//! six value kinds, UTF-8 strings with the standard escapes, and `f64`
//! numbers. Object encoding preserves insertion order, so responses are
//! byte-deterministic — the concurrency tests compare raw response lines
//! across servers and thread counts.
//!
//! Integers ride on `f64`, which is exact up to `2^53`; anything bigger
//! (witness counts, fingerprints) crosses the wire as a decimal or hex
//! *string* by protocol design — see `docs/ARCHITECTURE.md` §4.

use std::fmt::Write as _;

/// A JSON value. Objects keep their insertion order (encoding is
/// deterministic); lookup is linear, which is fine at protocol-message
/// sizes.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to `2^53`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value from any unsigned integer (exact up to `2^53`).
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Member lookup on an object (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer
    /// within the exact `f64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace), suitable for one
    /// protocol line.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(out, "{}", *n as i64).expect("write to String");
                } else {
                    write!(out, "{n}").expect("write to String");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a line failed to parse as JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON value, requiring the whole input (modulo surrounding
/// whitespace) to be consumed.
///
/// # Errors
/// [`JsonParseError`] with the offending byte offset.
pub fn parse(text: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing input after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            at: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() == Some(b'\\') {
                                    self.at += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte structure is valid by construction).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let unit = u16::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.at = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"false"#,
            r#"0"#,
            r#"-12"#,
            r#"3.5"#,
            r#""hello""#,
            r#""esc \" \\ \n \t""#,
            r#"[1,2,[3]]"#,
            r#"{"a":1,"b":[true,null],"c":{"d":"e"}}"#,
        ];
        for text in cases {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.encode(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        // Control characters encode as escapes and round trip.
        let s = Json::str("line\nbreak\u{01}");
        assert_eq!(parse(&s.encode()).unwrap(), s);
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "nul",
            r#""unterminated"#,
            r#""\q""#,
            r#""\ud800""#,
            "1 2",
            "--1",
            "\"a\u{01}b\"",
        ] {
            assert!(parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
    }
}
