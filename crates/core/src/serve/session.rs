//! The session registry: who owns which prepared instance, per connection.
//!
//! A `prepare` binds an [`InstanceHandle`] (plus the alphabet used to
//! format witnesses, and — once an `enumerate` has run — the live
//! [`WordCursor`]) to a server-assigned session name. Sessions are scoped
//! to their connection: one client cannot touch (or even probe for)
//! another client's sessions. The handle pins the prepared artifact, so a
//! session survives engine-cache eviction; dropping the session releases
//! the pin.
//!
//! **Idle eviction.** Every registry operation sweeps sessions that have
//! not been touched within the TTL — a client that walked away mid-stream
//! does not pin its instance forever. An evicted session behaves exactly
//! like a closed one (`unknown-session` on next use); the client re-opens
//! with `prepare` (cheap: the instance is usually still cached) and, for
//! enumeration, continues from its last resume token — tokens outlive
//! sessions by design.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lsc_automata::Alphabet;

use crate::engine::{InstanceHandle, WordCursor};

/// One open session: the pinned instance, how to print its witnesses, and
/// the live cursor (if an enumeration is in flight).
pub struct Session {
    /// The pinned prepared instance.
    pub handle: InstanceHandle,
    /// Formats witnesses for the wire.
    pub alphabet: Alphabet,
    /// The live enumeration cursor, if any.
    pub cursor: Option<WordCursor>,
    last_used: Instant,
}

/// The connection-scoped session table. See the module docs.
pub struct SessionRegistry {
    inner: Mutex<HashMap<(u64, String), Session>>,
    ttl: Duration,
    next_id: AtomicU64,
    evicted: AtomicU64,
}

impl SessionRegistry {
    /// A registry whose sessions idle out after `ttl`.
    pub fn new(ttl: Duration) -> SessionRegistry {
        SessionRegistry {
            inner: Mutex::new(HashMap::new()),
            ttl,
            next_id: AtomicU64::new(1),
            evicted: AtomicU64::new(0),
        }
    }

    /// Opens a session on a connection; returns the server-assigned name
    /// (`s1`, `s2`, ...; unique server-wide).
    pub fn open(&self, conn: u64, handle: InstanceHandle, alphabet: Alphabet) -> String {
        let name = format!("s{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        let mut inner = self.inner.lock().expect("session registry poisoned");
        self.sweep(&mut inner);
        inner.insert(
            (conn, name.clone()),
            Session {
                handle,
                alphabet,
                cursor: None,
                last_used: Instant::now(),
            },
        );
        name
    }

    /// Checks a session out for one request: the entry leaves the table
    /// (so its cursor can be driven without holding the registry lock) and
    /// must be returned via [`SessionRegistry::put_back`]. `None` if the
    /// connection has no such session (never opened, closed, or evicted).
    pub fn take(&self, conn: u64, name: &str) -> Option<Session> {
        let mut inner = self.inner.lock().expect("session registry poisoned");
        self.sweep(&mut inner);
        inner.remove(&(conn, name.to_string())).map(|mut s| {
            s.last_used = Instant::now();
            s
        })
    }

    /// Returns a checked-out session to the table, refreshing its idle
    /// clock.
    pub fn put_back(&self, conn: u64, name: &str, mut session: Session) {
        session.last_used = Instant::now();
        self.inner
            .lock()
            .expect("session registry poisoned")
            .insert((conn, name.to_string()), session);
    }

    /// Closes one session. Returns whether it existed.
    pub fn close(&self, conn: u64, name: &str) -> bool {
        let mut inner = self.inner.lock().expect("session registry poisoned");
        self.sweep(&mut inner);
        inner.remove(&(conn, name.to_string())).is_some()
    }

    /// Drops every session a connection owns (the disconnect hook).
    pub fn drop_conn(&self, conn: u64) {
        self.inner
            .lock()
            .expect("session registry poisoned")
            .retain(|(owner, _), _| *owner != conn);
    }

    /// Open sessions, server-wide.
    pub fn len(&self) -> usize {
        let mut inner = self.inner.lock().expect("session registry poisoned");
        self.sweep(&mut inner);
        inner.len()
    }

    /// True when no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted by the idle TTL so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn sweep(&self, inner: &mut HashMap<(u64, String), Session>) {
        let before = inner.len();
        let ttl = self.ttl;
        inner.retain(|_, s| s.last_used.elapsed() <= ttl);
        let evicted = before - inner.len();
        if evicted > 0 {
            self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use lsc_automata::families::blowup_nfa;
    use std::sync::Arc;

    fn handle(engine: &Engine) -> InstanceHandle {
        engine.prepare_nfa(&Arc::new(blowup_nfa(3)), 6)
    }

    #[test]
    fn sessions_are_connection_scoped() {
        let engine = Engine::with_defaults();
        let registry = SessionRegistry::new(Duration::from_secs(60));
        let name = registry.open(1, handle(&engine), Alphabet::binary());
        assert!(registry.take(2, &name).is_none(), "foreign connection");
        let session = registry.take(1, &name).expect("owner sees it");
        registry.put_back(1, &name, session);
        assert!(registry.close(1, &name));
        assert!(!registry.close(1, &name), "already closed");
    }

    #[test]
    fn names_are_unique_and_drop_conn_clears() {
        let engine = Engine::with_defaults();
        let registry = SessionRegistry::new(Duration::from_secs(60));
        let a = registry.open(1, handle(&engine), Alphabet::binary());
        let b = registry.open(1, handle(&engine), Alphabet::binary());
        let c = registry.open(2, handle(&engine), Alphabet::binary());
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(registry.len(), 3);
        registry.drop_conn(1);
        assert_eq!(registry.len(), 1);
        assert!(registry.take(2, &c).is_some());
    }

    #[test]
    fn idle_sessions_evict() {
        let engine = Engine::with_defaults();
        let registry = SessionRegistry::new(Duration::from_millis(20));
        let name = registry.open(1, handle(&engine), Alphabet::binary());
        std::thread::sleep(Duration::from_millis(40));
        assert!(registry.take(1, &name).is_none(), "idled out");
        assert_eq!(registry.evicted(), 1);
        assert!(registry.is_empty());
    }
}
