//! The cluster router: the shard ring over the network.
//!
//! [`Router`] is a front-end that speaks the serve layer's JSON-lines
//! wire protocol *unmodified* and forwards every session-scoped request
//! to one of N backend `nfa_tool serve` nodes. Placement is the same
//! consistent-hash ring the in-process [`ShardedEngine`] uses — a
//! [`ShardMap`] keyed by **instance fingerprint**, computed locally from
//! the `prepare` spec — so a fingerprint's home node is a pure function
//! of the ring membership, and adding or removing a node moves only the
//! bounded set of fingerprints the ring reassigns.
//!
//! Three properties make failover-with-cursor-survival work by
//! construction rather than by protocol extension:
//!
//! * **Sessions are re-preparable.** Each backend is driven through one
//!   multiplexed reconnecting [`Client`], which keeps the `(spec,
//!   length)` registry needed to re-`prepare` any alias after a reset,
//!   restart, or idle eviction.
//! * **Resume tokens are self-contained** (`enum1.<fp>.…`): the last
//!   *acknowledged* token for a cursor replays bit-identically on any
//!   node that has (or re-prepares) the instance, so a mid-stream
//!   `enumerate` survives its home node dying.
//! * **Snapshots are the replication unit.** On `prepare` the router
//!   ships the checksummed `<fp>.snap` artifact from the home node's
//!   snapshot store to the ring replica
//!   ([`SnapshotStore::export_fingerprint`] →
//!   [`SnapshotStore::import_bytes`]); on [`Router::add_backend`] it
//!   ships every fingerprint whose home the new ring assigns to the
//!   joining node. A node started (or restarted) *after* the ship warms
//!   the instance from disk instead of recompiling.
//!
//! Failure routing: front-connection I/O draws from
//! [`FaultSite::RouterForward`], snapshot shipping from
//! [`FaultSite::SnapshotShip`]; backend sockets keep their own sites
//! inside [`Client`]. When a backend exhausts its retry budget the
//! router marks it dead, removes it from the ring, re-resolves the
//! fingerprint, re-prepares on the survivor, seeds the cursor from the
//! last acknowledged token, and replays the request — the caller sees
//! one slow page, not an error. Aggregation verbs (`stats`, `health`)
//! fan out to every live backend and merge counter-wise (documented in
//! `docs/ARCHITECTURE.md` §8).
//!
//! [`ShardedEngine`]: crate::engine::ShardedEngine

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lsc_automata::regex::Regex;
use lsc_automata::{io as nfa_io, Alphabet};

use crate::engine::{PreparedInstance, ShardMap, SnapshotStore};
use crate::serve::client::{Client, ClientConfig, ClientError};
use crate::serve::faults::{FaultPlan, FaultSite, FaultyStream};
use crate::serve::json::Json;
use crate::serve::protocol::{
    error_response, ok_response, parse_request, ErrorCode, InstanceSpec, Request, WireError,
};
use crate::serve::server::TcpServerHandle;

/// One backend node: where it listens and, if it persists snapshots,
/// where — the directory the router ships replication artifacts into
/// and out of. It must be the same directory the backend's own
/// `ServeConfig::snapshot_dir` names, reachable from the router process
/// (same host or shared filesystem).
#[derive(Clone, Debug)]
pub struct BackendSpec {
    /// `host:port` of the backend's `nfa_tool serve` listener.
    pub addr: String,
    /// The backend's snapshot directory, if it runs with one.
    pub snapshot_dir: Option<PathBuf>,
}

impl BackendSpec {
    /// A backend with no snapshot store (shipping to/from it is a no-op).
    pub fn new(addr: impl Into<String>) -> BackendSpec {
        BackendSpec {
            addr: addr.into(),
            snapshot_dir: None,
        }
    }
}

/// Router configuration. `Default` is a zero-backend stub — a usable
/// router needs at least one [`BackendSpec`].
#[derive(Clone, Debug)]
pub struct RouteConfig {
    /// The backend fleet, index-identified: backend `i` is ring shard `i`.
    pub backends: Vec<BackendSpec>,
    /// Per-backend reconnecting-client tuning (retry budget, backoff).
    pub client: ClientConfig,
    /// Virtual nodes per backend on the consistent-hash ring.
    pub ring_replicas: usize,
    /// Alphabet for `prepare` regexes that don't name one — must match
    /// the backends' `default_alphabet` or local fingerprints diverge
    /// from backend fingerprints.
    pub default_alphabet: String,
    /// Idle front-connection reap timeout (mirrors `ServeConfig`).
    pub read_timeout: Option<Duration>,
    /// Front-connection write timeout.
    pub write_timeout: Option<Duration>,
    /// Deterministic fault injection for front connections
    /// ([`FaultSite::RouterForward`]) and snapshot shipping
    /// ([`FaultSite::SnapshotShip`]). `None` is a passthrough.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for RouteConfig {
    fn default() -> RouteConfig {
        RouteConfig {
            backends: Vec::new(),
            client: ClientConfig::default(),
            ring_replicas: 64,
            default_alphabet: "01".to_string(),
            read_timeout: Some(Duration::from_secs(300)),
            write_timeout: Some(Duration::from_secs(30)),
            faults: None,
        }
    }
}

/// Router counters (a point-in-time snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Requests forwarded to a backend (aggregation verbs count once).
    pub forwarded: u64,
    /// Sessions migrated to a surviving backend after their home died.
    pub failovers: u64,
    /// Backends declared dead and removed from the ring.
    pub backends_lost: u64,
    /// Snapshot artifacts shipped between backend stores.
    pub snapshots_shipped: u64,
    /// Ships that failed (missing artifact, injected fault, I/O error).
    /// Non-fatal: the receiving node recompiles instead of warming.
    pub ship_failures: u64,
}

/// One routed session: everything needed to re-home it.
#[derive(Clone, Debug)]
struct Route {
    spec: InstanceSpec,
    length: usize,
    fingerprint: u64,
    /// The backend currently holding this alias (its client owns the
    /// last acknowledged resume token).
    backend: usize,
}

struct Backend {
    client: Mutex<Client>,
    store: Option<SnapshotStore>,
    alive: AtomicBool,
}

struct RouterInner {
    config: RouteConfig,
    backends: Mutex<Vec<Arc<Backend>>>,
    ring: Mutex<ShardMap>,
    routes: Mutex<HashMap<String, Route>>,
    next_session: AtomicU64,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    backends_lost: AtomicU64,
    snapshots_shipped: AtomicU64,
    ship_failures: AtomicU64,
}

/// The cluster front-end. See the module docs for the routing and
/// failover contract; `docs/ARCHITECTURE.md` §8 is the operator view.
pub struct Router {
    inner: Arc<RouterInner>,
}

impl Router {
    /// Builds a router over `config.backends` (ring shard `i` =
    /// backend `i`). Opens each named snapshot directory; no backend
    /// connection is made until the first forwarded request.
    ///
    /// # Errors
    /// `InvalidInput` with no backends; snapshot-directory failures
    /// propagate.
    pub fn new(config: RouteConfig) -> std::io::Result<Router> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one backend",
            ));
        }
        let backends = config
            .backends
            .iter()
            .map(|spec| backend_for(spec, &config.client))
            .collect::<std::io::Result<Vec<_>>>()?;
        let ring = ShardMap::new(backends.len(), config.ring_replicas);
        Ok(Router {
            inner: Arc::new(RouterInner {
                backends: Mutex::new(backends),
                ring: Mutex::new(ring),
                routes: Mutex::new(HashMap::new()),
                next_session: AtomicU64::new(0),
                forwarded: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                backends_lost: AtomicU64::new(0),
                snapshots_shipped: AtomicU64::new(0),
                ship_failures: AtomicU64::new(0),
                config,
            }),
        })
    }

    /// Router counters so far.
    pub fn stats(&self) -> RouteStats {
        let inner = &self.inner;
        RouteStats {
            forwarded: inner.forwarded.load(Ordering::Relaxed),
            failovers: inner.failovers.load(Ordering::Relaxed),
            backends_lost: inner.backends_lost.load(Ordering::Relaxed),
            snapshots_shipped: inner.snapshots_shipped.load(Ordering::Relaxed),
            ship_failures: inner.ship_failures.load(Ordering::Relaxed),
        }
    }

    /// Joins a backend to the ring and ships every known fingerprint the
    /// new ring homes on it (so a node started *after* this call warms
    /// those instances from disk). Returns the new backend's index.
    ///
    /// # Errors
    /// Snapshot-directory failures propagate; the ring is unchanged.
    pub fn add_backend(&self, spec: BackendSpec) -> std::io::Result<usize> {
        let backend = backend_for(&spec, &self.inner.config.client)?;
        let mut backends = self.inner.backends.lock().expect("backends poisoned");
        let id = backends.len();
        backends.push(backend);
        drop(backends);
        self.inner.ring.lock().expect("ring poisoned").add_shard(id);
        // Re-home shipped artifacts: each distinct fingerprint whose home
        // the grown ring moved onto the joiner gets its snapshot shipped
        // from wherever it currently lives.
        let moved: Vec<(u64, usize)> = {
            let ring = self.inner.ring.lock().expect("ring poisoned");
            let routes = self.inner.routes.lock().expect("routes poisoned");
            let mut seen = HashSet::new();
            routes
                .values()
                .filter(|route| seen.insert(route.fingerprint))
                .filter(|route| ring.shard_for(route.fingerprint) == id)
                .map(|route| (route.fingerprint, route.backend))
                .collect()
        };
        for (fingerprint, from) in moved {
            self.inner.ship(fingerprint, from, id);
        }
        Ok(id)
    }

    /// Removes a backend from the ring (existing sessions re-home on
    /// their next request). Returns `false` for the last live backend —
    /// the ring refuses to become empty.
    pub fn remove_backend(&self, id: usize) -> bool {
        self.inner.retire_backend(id)
    }

    /// Serves the wire protocol on `addr`, thread-per-connection (the
    /// router's work per request is one forwarded RPC, so a blocking
    /// thread per front connection is the right shape). Returns a handle
    /// whose `shutdown` stops the accept loop.
    ///
    /// # Errors
    /// Propagates `bind` failures.
    pub fn spawn_tcp(&self, addr: &str) -> std::io::Result<TcpServerHandle> {
        // lsc-analyze: allow(unrouted-io) reason="one-time listener setup; per-connection streams below wrap in FaultyStream at the RouterForward site"
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let inner = self.inner.clone();
        let stop_flag = stop.clone();
        let accept = std::thread::Builder::new()
            .name("lsc-route-accept".to_string())
            .spawn(move || {
                // lsc-analyze: allow(unrouted-io) reason="accept loop hands every stream to serve_connection, which wraps it in FaultyStream at the RouterForward site"
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let inner = inner.clone();
                    let _ = std::thread::Builder::new()
                        .name("lsc-route-conn".to_string())
                        .spawn(move || serve_connection(&inner, stream));
                }
            })
            .expect("spawn route accept thread");
        Ok(TcpServerHandle::threaded(local, stop, accept))
    }
}

fn backend_for(spec: &BackendSpec, client: &ClientConfig) -> std::io::Result<Arc<Backend>> {
    let store = match &spec.snapshot_dir {
        Some(dir) => Some(SnapshotStore::open(dir)?),
        None => None,
    };
    Ok(Arc::new(Backend {
        client: Mutex::new(Client::new(spec.addr.clone(), client.clone())),
        store,
        alive: AtomicBool::new(true),
    }))
}

/// One front connection: parse each line, dispatch, write one response
/// line — `serve_connection` for the router. Sessions created here are
/// dropped when the connection ends.
fn serve_connection(inner: &Arc<RouterInner>, stream: TcpStream) {
    let _ = stream.set_read_timeout(inner.config.read_timeout);
    let _ = stream.set_write_timeout(inner.config.write_timeout);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let plan = inner.config.faults.clone();
    let reader = BufReader::new(FaultyStream::with_sites(
        read_half,
        plan.clone(),
        FaultSite::RouterForward,
        FaultSite::RouterForward,
    ));
    let mut writer = BufWriter::new(FaultyStream::with_sites(
        stream,
        plan,
        FaultSite::RouterForward,
        FaultSite::RouterForward,
    ));
    let mut local: Vec<String> = Vec::new();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (text, close) = inner.handle_line(&mut local, &line);
        if writeln!(writer, "{text}").is_err() || writer.flush().is_err() {
            break;
        }
        if close {
            break;
        }
    }
    for alias in local {
        inner.drop_route(&alias);
    }
}

impl RouterInner {
    /// Transport-free dispatch: one request line in, one response line
    /// out plus the close-after flag. `local` accumulates the aliases
    /// this connection created (front sessions are connection-scoped,
    /// like the server's).
    fn handle_line(&self, local: &mut Vec<String>, line: &str) -> (String, bool) {
        let (id, request) = match parse_request(line) {
            Ok(envelope) => (envelope.id, envelope.request),
            Err(error) => return (error_response(None, &error), false),
        };
        let close = matches!(request, Request::Bye);
        let text = match self.dispatch(local, request) {
            Ok(fields) => ok_response(id.as_ref(), fields),
            Err(error) => error_response(id.as_ref(), &error),
        };
        (text, close)
    }

    fn dispatch(
        &self,
        local: &mut Vec<String>,
        request: Request,
    ) -> Result<Vec<(String, Json)>, WireError> {
        match request {
            Request::Hello => Ok(vec![
                ("proto".to_string(), Json::num(1.0)),
                ("server".to_string(), Json::str("nfa_tool route")),
            ]),
            Request::Prepare { spec, length } => self.op_prepare(local, spec, length),
            Request::Count { session } => {
                self.forward(&session, |client, alias| client.count(alias))
            }
            Request::CountExact { session } => {
                self.forward(&session, |client, alias| client.count_exact(alias))
            }
            Request::Sample {
                session,
                count,
                seed,
            } => self.forward(&session, move |client, alias| {
                client.sample(alias, count, seed)
            }),
            Request::Enumerate {
                session,
                page_size,
                resume,
            } => self.forward(&session, move |client, alias| {
                if let Some(token) = &resume {
                    client.resume_from(alias, token.clone())?;
                }
                client.enumerate_page(alias, page_size)
            }),
            Request::Close { session } => {
                if self.drop_route(&session) {
                    local.retain(|alias| alias != &session);
                    Ok(vec![("closed".to_string(), Json::str(session))])
                } else {
                    Err(WireError::new(
                        ErrorCode::UnknownSession,
                        format!("no session {session:?} on this connection"),
                    ))
                }
            }
            Request::Stats => self.op_stats(),
            Request::Health => self.op_health(),
            Request::Bye => Ok(vec![("bye".to_string(), Json::Bool(true))]),
        }
    }

    /// `prepare`: fingerprint the spec locally, route it on the ring,
    /// prepare on the home backend, ship the snapshot to the ring
    /// replica, and answer with the *backend's* prepare fields under the
    /// router-issued session name.
    fn op_prepare(
        &self,
        local: &mut Vec<String>,
        spec: InstanceSpec,
        length: usize,
    ) -> Result<Vec<(String, Json)>, WireError> {
        let fingerprint = self.fingerprint_of(&spec, length)?;
        let alias = format!("r{}", self.next_session.fetch_add(1, Ordering::Relaxed) + 1);
        let to_prepare = spec.clone();
        self.routes.lock().expect("routes poisoned").insert(
            alias.clone(),
            Route {
                spec,
                length,
                fingerprint,
                backend: self.home_of(fingerprint)?.0,
            },
        );
        // `forward`'s migration path re-prepares on its own when the home
        // moved mid-call; the closure covers the first-landing case.
        let prepared = self.forward(&alias, move |client, alias| {
            if client.last_prepare(alias).is_none() {
                client.prepare(alias, to_prepare.clone(), length)?;
            }
            client
                .last_prepare(alias)
                .cloned()
                .ok_or_else(|| ClientError::Usage("prepare response not cached".to_string()))
        });
        let fields = match prepared {
            Ok(fields) => fields,
            Err(error) => {
                // No session without a backend prepare.
                self.drop_route(&alias);
                return Err(error);
            }
        };
        local.push(alias.clone());
        // Replicate the artifact ahead of need: the ring minus the home
        // names the node a failover would land on.
        if let Ok((home, _)) = self.home_of(fingerprint) {
            if let Some(replica) = self.replica_of(fingerprint, home) {
                self.ship(fingerprint, home, replica);
            }
        }
        Ok(fields
            .into_iter()
            .map(|(key, value)| {
                if key == "session" {
                    (key, Json::str(alias.clone()))
                } else {
                    (key, value)
                }
            })
            .collect())
    }

    /// Runs `op` against the session's home backend, following the ring
    /// through failovers: a backend that exhausts the client's retry
    /// budget is retired, the fingerprint re-resolves, the session is
    /// re-prepared on the survivor with its cursor seeded from the last
    /// acknowledged token, and `op` replays.
    fn forward<F>(&self, session: &str, op: F) -> Result<Vec<(String, Json)>, WireError>
    where
        F: Fn(&mut Client, &str) -> Result<Json, ClientError>,
    {
        loop {
            let route = self
                .routes
                .lock()
                .expect("routes poisoned")
                .get(session)
                .cloned()
                .ok_or_else(|| {
                    WireError::new(
                        ErrorCode::UnknownSession,
                        format!("no session {session:?} on this connection"),
                    )
                })?;
            let (home, backend) = self.home_of(route.fingerprint)?;
            if home != route.backend {
                // The ring moved this session (its home died or the
                // topology changed): carry the last acknowledged token
                // across, re-prepare, resume.
                let token = {
                    let backends = self.backends.lock().expect("backends poisoned");
                    let previous = backends[route.backend].clone();
                    drop(backends);
                    let client = previous.client.lock().expect("client poisoned");
                    client.last_token(session).map(str::to_string)
                };
                let mut client = backend.client.lock().expect("client poisoned");
                match client.prepare(session, route.spec.clone(), route.length) {
                    Ok(_) => {}
                    Err(ClientError::Exhausted { .. }) => {
                        drop(client);
                        self.retire_or_fail(home)?;
                        continue;
                    }
                    Err(error) => return Err(wire_client_error(error)),
                }
                if let Some(token) = token {
                    let _ = client.resume_from(session, token);
                }
                drop(client);
                self.failovers.fetch_add(1, Ordering::Relaxed);
                if let Some(route) = self
                    .routes
                    .lock()
                    .expect("routes poisoned")
                    .get_mut(session)
                {
                    route.backend = home;
                }
            }
            let mut client = backend.client.lock().expect("client poisoned");
            match op(&mut client, session) {
                Ok(response) => {
                    drop(client);
                    self.forwarded.fetch_add(1, Ordering::Relaxed);
                    let Json::Obj(fields) = response else {
                        return Err(WireError::new(
                            ErrorCode::Internal,
                            "backend response was not an object",
                        ));
                    };
                    return Ok(fields
                        .into_iter()
                        .filter(|(key, _)| key != "ok" && key != "id")
                        .collect());
                }
                Err(ClientError::Exhausted { .. }) => {
                    drop(client);
                    self.retire_or_fail(home)?;
                }
                Err(error) => return Err(wire_client_error(error)),
            }
        }
    }

    /// The ring's current home for `fingerprint`, as `(index, backend)`.
    fn home_of(&self, fingerprint: u64) -> Result<(usize, Arc<Backend>), WireError> {
        let ring = self.ring.lock().expect("ring poisoned");
        if ring.is_empty() {
            return Err(no_backends());
        }
        let home = ring.shard_for(fingerprint);
        drop(ring);
        let backends = self.backends.lock().expect("backends poisoned");
        Ok((home, backends[home].clone()))
    }

    /// The node a failover of `fingerprint` would land on: the ring
    /// without its current home.
    fn replica_of(&self, fingerprint: u64, home: usize) -> Option<usize> {
        let mut ring = self.ring.lock().expect("ring poisoned").clone();
        ring.remove_shard(home).then(|| ring.shard_for(fingerprint))
    }

    /// Declares backend `id` dead and drops it from the ring; errors
    /// instead if it is the last one (nothing left to fail over to).
    fn retire_or_fail(&self, id: usize) -> Result<(), WireError> {
        if self.retire_backend(id) {
            Ok(())
        } else {
            Err(no_backends())
        }
    }

    fn retire_backend(&self, id: usize) -> bool {
        let backend = {
            let backends = self.backends.lock().expect("backends poisoned");
            backends.get(id).cloned()
        };
        let Some(backend) = backend else { return false };
        let removed = self.ring.lock().expect("ring poisoned").remove_shard(id);
        if removed && backend.alive.swap(false, Ordering::AcqRel) {
            self.backends_lost.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    fn drop_route(&self, alias: &str) -> bool {
        let route = self.routes.lock().expect("routes poisoned").remove(alias);
        let Some(route) = route else { return false };
        // Release the alias on its backend's client (no I/O; the backend
        // session idles out by its own TTL).
        let backends = self.backends.lock().expect("backends poisoned");
        if let Some(backend) = backends.get(route.backend).cloned() {
            drop(backends);
            backend
                .client
                .lock()
                .expect("client poisoned")
                .forget(alias);
        }
        true
    }

    /// Ships `<fingerprint>.snap` from one backend's store to another's,
    /// best-effort: a failure (no store, missing artifact, injected
    /// [`FaultSite::SnapshotShip`] fault, I/O error) is counted and the
    /// receiving node recompiles instead of warming.
    fn ship(&self, fingerprint: u64, from: usize, to: usize) {
        let (src, dst) = {
            let backends = self.backends.lock().expect("backends poisoned");
            (backends.get(from).cloned(), backends.get(to).cloned())
        };
        let (Some(src), Some(dst)) = (src, dst) else {
            return;
        };
        let (Some(src), Some(dst)) = (&src.store, &dst.store) else {
            return;
        };
        if let Some(plan) = &self.config.faults {
            if plan.decide(FaultSite::SnapshotShip).is_some() {
                self.ship_failures.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        match src
            .export_fingerprint(fingerprint)
            .and_then(|bytes| dst.import_bytes(&bytes))
        {
            Ok(_) => {
                self.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.ship_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The instance fingerprint `prepare` would compute on any backend:
    /// compile the spec locally (mirroring the server's spec handling,
    /// including the default alphabet) and hash it. Placement must be a
    /// pure function of the spec or the ring and the backends disagree.
    fn fingerprint_of(&self, spec: &InstanceSpec, length: usize) -> Result<u64, WireError> {
        let nfa = match spec {
            InstanceSpec::Regex { pattern, alphabet } => {
                let chars: Vec<char> = alphabet
                    .as_deref()
                    .unwrap_or(&self.config.default_alphabet)
                    .chars()
                    .collect();
                if chars.is_empty() {
                    return Err(WireError::new(ErrorCode::BadRequest, "empty alphabet"));
                }
                let ab = Alphabet::from_chars(&chars);
                let regex = Regex::parse(pattern, &ab)
                    .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?;
                regex.compile()
            }
            InstanceSpec::NfaText(text) => nfa_io::from_text(text)
                .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?,
        };
        Ok(PreparedInstance::instance_fingerprint(&nfa, length))
    }

    /// `stats` over the cluster: per-field sums of every live backend's
    /// `server` and `engine` sections, one `shards` row per backend
    /// (`id` = backend index, engine totals as that node reports them),
    /// plus a `router` section with the ring counters. A backend that
    /// fails the fan-out is retired exactly as on the request path.
    fn op_stats(&self) -> Result<Vec<(String, Json)>, WireError> {
        let mut server_totals: Vec<(String, Json)> = Vec::new();
        let mut engine_totals: Vec<(String, Json)> = Vec::new();
        let mut shards: Vec<Json> = Vec::new();
        for (id, response) in self.fan_out(|client| client.server_stats())? {
            sum_fields(&mut server_totals, response.get("server"));
            sum_fields(&mut engine_totals, response.get("engine"));
            let mut row = vec![("id".to_string(), Json::num(id as f64))];
            sum_fields(&mut row, response.get("engine"));
            shards.push(Json::Obj(row));
        }
        let stats = self.router_stats_json();
        Ok(vec![
            ("server".to_string(), Json::Obj(server_totals)),
            ("engine".to_string(), Json::Obj(engine_totals)),
            ("shards".to_string(), Json::Arr(shards)),
            ("router".to_string(), stats),
        ])
    }

    /// `health` over the cluster: `ok` only if every live backend reports
    /// `ok`; `queued` / `queue_capacity` / `sessions_open` sum;
    /// `retry_after_ms` is the fleet maximum (the safe wait).
    fn op_health(&self) -> Result<Vec<(String, Json)>, WireError> {
        let mut status = "ok";
        let mut queued = 0.0;
        let mut capacity = 0.0;
        let mut sessions = 0.0;
        let mut retry_after: f64 = 0.0;
        for (_, response) in self.fan_out(|client| client.health())? {
            if response.get("status").and_then(Json::as_str) != Some("ok") {
                status = "saturated";
            }
            let num = |key: &str| match response.get(key) {
                Some(Json::Num(n)) => *n,
                _ => 0.0,
            };
            queued += num("queued");
            capacity += num("queue_capacity");
            sessions += num("sessions_open");
            retry_after = retry_after.max(num("retry_after_ms"));
        }
        Ok(vec![
            ("status".to_string(), Json::str(status)),
            ("queued".to_string(), Json::num(queued)),
            ("queue_capacity".to_string(), Json::num(capacity)),
            ("sessions_open".to_string(), Json::num(sessions)),
            ("retry_after_ms".to_string(), Json::num(retry_after)),
        ])
    }

    /// Runs `op` once per live backend, retiring any that exhaust their
    /// retry budget; errors only when none are left.
    fn fan_out<F>(&self, op: F) -> Result<Vec<(usize, Json)>, WireError>
    where
        F: Fn(&mut Client) -> Result<Json, ClientError>,
    {
        let candidates: Vec<(usize, Arc<Backend>)> = {
            let ring = self.ring.lock().expect("ring poisoned");
            let backends = self.backends.lock().expect("backends poisoned");
            ring.shard_ids()
                .iter()
                .filter_map(|&id| backends.get(id).map(|b| (id, b.clone())))
                .collect()
        };
        let mut results = Vec::new();
        for (id, backend) in candidates {
            let mut client = backend.client.lock().expect("client poisoned");
            match op(&mut client) {
                Ok(response) => results.push((id, response)),
                Err(ClientError::Exhausted { .. }) => {
                    drop(client);
                    self.retire_or_fail(id)?;
                }
                Err(error) => return Err(wire_client_error(error)),
            }
        }
        if results.is_empty() {
            return Err(no_backends());
        }
        self.forwarded.fetch_add(1, Ordering::Relaxed);
        Ok(results)
    }

    fn router_stats_json(&self) -> Json {
        let backends_alive = self.ring.lock().expect("ring poisoned").len();
        let stat = |counter: &AtomicU64| Json::num(counter.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            (
                "backends_alive".to_string(),
                Json::num(backends_alive as f64),
            ),
            (
                "backends_total".to_string(),
                Json::num(self.backends.lock().expect("backends poisoned").len() as f64),
            ),
            ("forwarded".to_string(), stat(&self.forwarded)),
            ("failovers".to_string(), stat(&self.failovers)),
            ("backends_lost".to_string(), stat(&self.backends_lost)),
            (
                "snapshots_shipped".to_string(),
                stat(&self.snapshots_shipped),
            ),
            ("ship_failures".to_string(), stat(&self.ship_failures)),
        ])
    }
}

/// Sums `obj`'s numeric fields into `acc` key-wise (non-numeric fields
/// are kept from the first backend that reports them).
fn sum_fields(acc: &mut Vec<(String, Json)>, obj: Option<&Json>) {
    let Some(Json::Obj(fields)) = obj else { return };
    for (key, value) in fields {
        match acc.iter_mut().find(|(existing, _)| existing == key) {
            Some((_, total)) => {
                if let (Json::Num(a), Json::Num(b)) = (&*total, value) {
                    *total = Json::Num(a + b);
                }
            }
            None => acc.push((key.clone(), value.clone())),
        }
    }
}

fn no_backends() -> WireError {
    WireError::new(ErrorCode::Internal, "no live backends in the ring")
}

/// Maps a non-retryable client failure onto the wire error the backend
/// (or the client stack) produced. `Exhausted` never reaches here — the
/// forward loop converts it into a failover.
fn wire_client_error(error: ClientError) -> WireError {
    match error {
        ClientError::Server { code, message } => WireError::new(code_from_str(&code), message),
        other => WireError::new(ErrorCode::Internal, other.to_string()),
    }
}

fn code_from_str(code: &str) -> ErrorCode {
    match code {
        "bad-request" => ErrorCode::BadRequest,
        "unknown-session" => ErrorCode::UnknownSession,
        "not-unambiguous" => ErrorCode::NotUnambiguous,
        "invalid-token" => ErrorCode::InvalidToken,
        "fpras-failure" => ErrorCode::Fpras,
        "overloaded" => ErrorCode::Overloaded,
        "deadline-exceeded" => ErrorCode::DeadlineExceeded,
        _ => ErrorCode::Internal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, RouterConfig};
    use crate::serve::{ServeConfig, Server};

    /// Deterministic engine config shared by every node (and the
    /// single-node references): FPRAS forced, fixed seed.
    fn engine_config() -> EngineConfig {
        EngineConfig {
            router: RouterConfig {
                determinization_cap: 0,
                fpras: crate::fpras::FprasParams::quick(),
                ..RouterConfig::default()
            },
            seed: 0xBEEF,
            ..EngineConfig::default()
        }
    }

    fn backend() -> (Server, TcpServerHandle) {
        let server = Server::new(ServeConfig {
            engine: engine_config(),
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = server.spawn_tcp("127.0.0.1:0").unwrap();
        (server, handle)
    }

    fn quick_client() -> ClientConfig {
        ClientConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            ..ClientConfig::default()
        }
    }

    fn cluster(n: usize) -> (Vec<(Server, TcpServerHandle)>, Router, TcpServerHandle) {
        let nodes: Vec<_> = (0..n).map(|_| backend()).collect();
        let router = Router::new(RouteConfig {
            backends: nodes
                .iter()
                .map(|(_, h)| BackendSpec::new(h.addr().to_string()))
                .collect(),
            client: quick_client(),
            ..RouteConfig::default()
        })
        .unwrap();
        let front = router.spawn_tcp("127.0.0.1:0").unwrap();
        (nodes, router, front)
    }

    const SPECS: [(&str, usize); 4] = [
        ("(0|1)*11", 7),
        ("(0|1)*101(0|1)*", 8),
        ("1(0|1)*0", 6),
        ("(0|1)*", 5),
    ];

    fn spec(pattern: &str) -> InstanceSpec {
        InstanceSpec::Regex {
            pattern: pattern.to_string(),
            alphabet: None,
        }
    }

    /// Answers collected through any endpoint speaking the protocol:
    /// count + the full paged enumeration per spec, as canonical strings.
    fn collect(client: &mut Client) -> Vec<String> {
        let mut out = Vec::new();
        for (i, (pattern, length)) in SPECS.iter().enumerate() {
            let alias = format!("w{i}");
            client.prepare(&alias, spec(pattern), *length).unwrap();
            let count = client.count(&alias).unwrap();
            out.push(format!(
                "count {} = {}",
                pattern,
                count.get("estimate").and_then(Json::as_str).unwrap()
            ));
            loop {
                let page = client.enumerate_page(&alias, Some(3)).unwrap();
                if let Some(Json::Arr(words)) = page.get("words") {
                    for word in words {
                        out.push(format!("word {}", word.as_str().unwrap()));
                    }
                }
                if page.get("done") == Some(&Json::Bool(true)) {
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn routed_answers_are_bit_identical_to_a_single_direct_node() {
        let (reference, direct_handle) = backend();
        let mut direct = Client::new(direct_handle.addr().to_string(), quick_client());
        let expected = collect(&mut direct);
        direct.bye();
        reference.shutdown();

        let (nodes, router, front) = cluster(3);
        let mut routed = Client::new(front.addr().to_string(), quick_client());
        assert_eq!(expected, collect(&mut routed));
        // The ring actually spread the four fingerprints around (the
        // cluster is doing routing, not proxying to one node).
        let placed: HashSet<usize> = SPECS
            .iter()
            .map(|(pattern, length)| {
                router
                    .inner
                    .home_of(
                        router
                            .inner
                            .fingerprint_of(&spec(pattern), *length)
                            .unwrap(),
                    )
                    .unwrap()
                    .0
            })
            .collect();
        assert!(placed.len() > 1, "all specs landed on one backend");
        assert!(router.stats().forwarded > 0);
        routed.bye();
        drop(front);
        for (server, handle) in nodes {
            drop(handle);
            server.shutdown();
        }
    }

    #[test]
    fn stats_and_health_aggregate_across_the_fleet() {
        let (nodes, _router, front) = cluster(2);
        let mut client = Client::new(front.addr().to_string(), quick_client());
        client.prepare("s", spec("(0|1)*11"), 6).unwrap();
        client.count("s").unwrap();
        let stats = client.server_stats().unwrap();
        // Sessions live on exactly one backend; requests summed over both.
        assert_eq!(
            stats
                .get("server")
                .and_then(|s| s.get("sessions_open"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let shards = stats.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(shards.len(), 2, "one shards row per backend");
        let router_section = stats.get("router").unwrap();
        assert_eq!(
            router_section.get("backends_alive").and_then(Json::as_u64),
            Some(2)
        );
        let health = client.health().unwrap();
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        // Two backends x queue_depth 64.
        assert_eq!(
            health.get("queue_capacity").and_then(Json::as_u64),
            Some(128)
        );
        client.bye();
        drop(front);
        for (server, handle) in nodes {
            drop(handle);
            server.shutdown();
        }
    }

    #[test]
    fn killing_the_home_node_fails_over_and_resumes_the_cursor() {
        let (mut nodes, router, front) = cluster(2);
        let mut client = Client::new(front.addr().to_string(), quick_client());

        // Fault-free reference pages, from a throwaway single node.
        let (reference, ref_handle) = backend();
        let mut direct = Client::new(ref_handle.addr().to_string(), quick_client());
        direct.prepare("ref", spec("(0|1)*11"), 7).unwrap();
        let mut expected = Vec::new();
        loop {
            let page = direct.enumerate_page("ref", Some(2)).unwrap();
            expected.push(page.encode());
            if page.get("done") == Some(&Json::Bool(true)) {
                break;
            }
        }
        direct.bye();
        reference.shutdown();

        client.prepare("job", spec("(0|1)*11"), 7).unwrap();
        let fingerprint = router.inner.fingerprint_of(&spec("(0|1)*11"), 7).unwrap();
        let mut pages = Vec::new();
        pages.push(client.enumerate_page("job", Some(2)).unwrap().encode());
        pages.push(client.enumerate_page("job", Some(2)).unwrap().encode());

        // Kill the session's home mid-stream.
        let home = router.inner.home_of(fingerprint).unwrap().0;
        let (server, mut handle) = nodes.remove(home);
        handle.shutdown();
        server.shutdown();
        drop(handle);
        drop(server);

        loop {
            let page = client.enumerate_page("job", Some(2)).unwrap();
            pages.push(page.encode());
            if page.get("done") == Some(&Json::Bool(true)) {
                break;
            }
        }
        assert_eq!(expected, pages, "resumed pages diverged after failover");
        assert!(router.stats().failovers >= 1);
        assert!(router.stats().backends_lost == 1);
        client.bye();
        drop(front);
        for (server, handle) in nodes {
            drop(handle);
            server.shutdown();
        }
    }

    #[test]
    fn close_drops_the_front_session() {
        let (nodes, _router, front) = cluster(2);
        let mut client = Client::new(front.addr().to_string(), quick_client());
        let prepared = client.prepare("s", spec("(0|1)*1"), 4).unwrap();
        let session = prepared
            .get("session")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let closed = client
            .pipeline_raw(&[format!(r#"{{"op":"close","session":"{session}"}}"#)])
            .unwrap();
        assert!(closed[0].encode().contains("\"closed\""));
        let again = client
            .pipeline_raw(&[format!(r#"{{"op":"close","session":"{session}"}}"#)])
            .unwrap();
        assert!(
            again[0].encode().contains("unknown-session"),
            "double close must be unknown-session: {}",
            again[0].encode()
        );
        client.bye();
        drop(front);
        for (server, handle) in nodes {
            drop(handle);
            server.shutdown();
        }
    }
}
