//! The concurrent request server: transports, dispatch, and overload
//! behavior.
//!
//! A [`Server`] owns one [`ShardedEngine`] (N independent prepared-instance
//! caches behind a consistent-hash shard map — see
//! [`crate::engine::ShardedEngine`]), a [`SessionRegistry`], a bounded
//! [`WorkerPool`], and — optionally — a [`SnapshotStore`] it warms the
//! shard fleet from at startup and persists compiled artifacts into as
//! queries materialize them. Transports are
//! thin: the TCP accept loop ([`Server::spawn_tcp`]) and the stdio loop
//! ([`Server::serve_stdio`]) both read request lines, push them through
//! the pool ([`Server::submit_and_wait`]), and write response lines;
//! every byte of protocol behavior lives in [`Server::handle_line`], which
//! is also the direct (transport-free) entry the tests and benches drive.
//!
//! **Concurrency model.** Responses on one connection come back in
//! request order (the connection thread waits for each reply before
//! reading the next line); connections proceed in parallel up to the
//! pool's worker count; everything behind the pool — shard fleet,
//! session registry, snapshot store — is shared and thread-safe. Query
//! answers are bit-identical to direct single-threaded
//! [`Engine`](crate::engine::Engine) calls with the same configuration,
//! at any shard count: the server adds routing and bookkeeping around the
//! engines, never its own randomness.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use lsc_automata::regex::Regex;
use lsc_automata::{format_word, io as nfa_io, Alphabet, Word};

use crate::engine::{
    CountRoute, EngineConfig, EngineStats, PreparedInstance, QueryError, QueryKind, QueryOutput,
    QueryRequest, ResumeToken, ShardedConfig, ShardedEngine, SnapshotStore, SweepReport,
    WarmReport,
};
use crate::serve::faults::{Fault, FaultPlan, FaultSite, FaultyStream};
use crate::serve::json::Json;
use crate::serve::pool::{PoolStats, SubmitError, WorkerPool};
use crate::serve::protocol::{
    error_response, ok_response, parse_request, Envelope, ErrorCode, InstanceSpec, Request,
    WireError,
};
use crate::serve::session::{Session, SessionRegistry};

/// Which accept-path implementation [`Server::spawn_tcp`] drives. Both
/// transports funnel every request line through the same worker pool and
/// [`Server::handle_line`] core, so responses are bit-identical between
/// them (pinned by `tests/transport_conformance.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// One blocking reader thread per accepted connection (the default):
    /// simple, portable, and fine up to a few hundred connections.
    #[default]
    Threaded,
    /// One readiness-driven event loop (epoll via `lsc-reactor`) owning
    /// every accepted socket: nonblocking reads parse pipelined request
    /// batches, responses write-coalesce in request order, and tens of
    /// thousands of mostly-idle connections cost buffers instead of
    /// threads. Linux-only; probe with
    /// [`Transport::event_loop_supported`].
    EventLoop,
}

impl Transport {
    /// Whether the event-loop transport has a working poller backend on
    /// this host (Linux epoll). When false, `spawn_tcp` under
    /// [`Transport::EventLoop`] fails with `Unsupported` — callers fall
    /// back to [`Transport::Threaded`] or skip.
    pub fn event_loop_supported() -> bool {
        lsc_reactor::supported()
    }

    /// The CLI/config spelling (`"threaded"` / `"event-loop"`).
    pub fn parse(text: &str) -> Option<Transport> {
        match text {
            "threaded" => Some(Transport::Threaded),
            "event-loop" | "event_loop" => Some(Transport::EventLoop),
            _ => None,
        }
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The engine configuration (cache cap, router, seed policy). The byte
    /// cap is the fleet-wide total — it is divided across shards.
    pub engine: EngineConfig,
    /// Instance-cache shards (consistent-hash routed, so cache resolution
    /// scales with cores); `0` means one per hardware thread.
    pub shards: usize,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded request-queue depth; submits beyond it are rejected with
    /// `overloaded` + `retry_after_ms` (admission control).
    pub queue_depth: usize,
    /// Per-request deadline: a request still queued past this long is
    /// answered `deadline-exceeded` instead of executed.
    pub deadline: Duration,
    /// The `retry_after_ms` hint sent with `overloaded` rejections.
    pub retry_after: Duration,
    /// Idle TTL for sessions; an untouched session is evicted and answers
    /// `unknown-session` afterwards.
    pub session_ttl: Duration,
    /// Snapshot directory: warm the engine cache from it at startup,
    /// persist compiled instances into it as queries run. `None` disables
    /// persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Alphabet for `prepare` ops that send a regex without one.
    pub default_alphabet: String,
    /// Page size for `enumerate` ops that do not specify one.
    pub default_page_size: usize,
    /// Upper bound on wire-supplied `page_size` and sample `count` —
    /// deadlines only cover queue time, so this is what stops one request
    /// from pinning a worker (and buffering unbounded witnesses)
    /// indefinitely. Requests beyond it are rejected `bad-request`.
    pub max_batch: usize,
    /// Read timeout on accepted sockets: a peer silent for this long is
    /// reaped (connection closed, sessions dropped at disconnect) instead
    /// of pinning a connection thread forever. `None` waits indefinitely
    /// (the pre-hardening behavior). Resume tokens survive the reap — a
    /// reaped client reconnects and continues its cursors.
    pub read_timeout: Option<Duration>,
    /// Write timeout on accepted sockets: a peer that stops draining its
    /// socket (slow-loris reads) fails the write and is reaped, instead
    /// of blocking a connection thread on a full kernel buffer.
    pub write_timeout: Option<Duration>,
    /// Deterministic fault injection ([`FaultPlan`]) threaded through the
    /// connection streams, the snapshot store, and the worker jobs.
    /// `None` — the production configuration — compiles to passthrough
    /// I/O (one pointer-null branch per operation).
    pub faults: Option<Arc<FaultPlan>>,
    /// Which TCP accept-path implementation `spawn_tcp` uses. The stdio
    /// transport and the transport-free test entry points are unaffected.
    pub transport: Transport,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineConfig::default(),
            shards: 0,
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(30),
            retry_after: Duration::from_millis(50),
            session_ttl: Duration::from_secs(300),
            snapshot_dir: None,
            default_alphabet: "01".to_string(),
            default_page_size: 100,
            max_batch: 100_000,
            read_timeout: Some(Duration::from_secs(300)),
            write_timeout: Some(Duration::from_secs(30)),
            faults: None,
            transport: Transport::default(),
        }
    }
}

/// A snapshot of every server-side counter, returned by [`Server::stats`]
/// and serialized by the `stats` op.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests answered (any outcome except pool rejection/expiry).
    pub requests: u64,
    /// Connections accepted so far.
    pub connections: u64,
    /// Open sessions.
    pub sessions_open: usize,
    /// Sessions evicted by the idle TTL.
    pub sessions_evicted: u64,
    /// Snapshots restored at startup.
    pub snapshots_loaded: usize,
    /// Snapshot files rejected as corrupt at startup.
    pub snapshots_rejected: usize,
    /// Snapshots written since startup.
    pub snapshots_saved: u64,
    /// Corrupt snapshot files quarantined by the startup sweep
    /// (`*.snap.quarantined.N` — out of the serving path, kept on disk,
    /// numbered so repeated corruptions keep every artifact).
    pub snapshots_quarantined: usize,
    /// Stale snapshot temp files reaped by the startup sweep (debris of
    /// writers that crashed mid-save).
    pub snapshot_tmp_swept: usize,
    /// Connections that ended on an I/O error (peer reset, torn frame,
    /// socket timeout) rather than a clean EOF/`bye` — each one is a
    /// fault the server absorbed without affecting any other connection.
    pub resets_survived: u64,
    /// `overloaded` rejections issued with a `retry_after_ms` hint (the
    /// server-side view of the client retry contract).
    pub retries: u64,
    /// Worker-pool counters (admission control and deadlines).
    pub pool: PoolStats,
    /// Engine cache counters, aggregated over the shard fleet (including
    /// the hit/miss/eviction history of any since-drained shards).
    pub engine: EngineStats,
    /// Per-shard cache counters `(shard id, counters)` for the *live*
    /// fleet; the per-field sums equal [`ServeStats::engine`] as long as
    /// no shard has been drained (a drained shard's history stays in the
    /// aggregate but no longer has a per-shard row).
    pub shards: Vec<(usize, EngineStats)>,
}

/// One response line plus whether the connection should close after it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    /// The JSON response line (no trailing newline).
    pub text: String,
    /// True after a `bye` (or a shutdown refusal).
    pub close: bool,
}

pub(crate) struct ServerInner {
    config: ServeConfig,
    engine: ShardedEngine,
    sessions: SessionRegistry,
    pool: WorkerPool,
    snapshots: Option<SnapshotStore>,
    /// Which snapshot parts have been persisted per fingerprint (a bitmask
    /// of materialized artifacts), so the post-query save hook only
    /// re-encodes when something new materialized.
    snapshot_masks: Mutex<HashMap<u64, u8>>,
    warm: WarmReport,
    sweep: SweepReport,
    next_conn: AtomicU64,
    connections: AtomicU64,
    requests: AtomicU64,
    snapshots_saved: AtomicU64,
    resets_survived: AtomicU64,
    retries_hinted: AtomicU64,
}

/// The serving façade over one engine. See the module docs; construction
/// is [`Server::new`], transports are [`Server::spawn_tcp`] and
/// [`Server::serve_stdio`], and [`Server::handle_line`] is the
/// transport-free core.
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Builds a server: constructs the engine, opens the snapshot store
    /// (if configured) and warms the cache from it, and spawns the worker
    /// pool.
    ///
    /// # Errors
    /// Propagates snapshot-directory creation failures.
    pub fn new(config: ServeConfig) -> std::io::Result<Server> {
        let engine = ShardedEngine::new(ShardedConfig {
            engine: config.engine,
            shards: config.shards,
            ..ShardedConfig::default()
        });
        let snapshots = match &config.snapshot_dir {
            Some(dir) => Some(SnapshotStore::open_with_faults(dir, config.faults.clone())?),
            None => None,
        };
        let sweep = snapshots
            .as_ref()
            .map(|store| store.sweep_report())
            .unwrap_or_default();
        let warm = snapshots
            .as_ref()
            .map(|store| store.warm_sharded(&engine))
            .unwrap_or_default();
        let pool = WorkerPool::new(config.workers, config.queue_depth);
        let sessions = SessionRegistry::new(config.session_ttl);
        Ok(Server {
            inner: Arc::new(ServerInner {
                config,
                engine,
                sessions,
                pool,
                snapshots,
                snapshot_masks: Mutex::new(HashMap::new()),
                warm,
                sweep,
                next_conn: AtomicU64::new(1),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                snapshots_saved: AtomicU64::new(0),
                resets_survived: AtomicU64::new(0),
                retries_hinted: AtomicU64::new(0),
            }),
        })
    }

    /// The shared sharded engine (the tests compare server responses
    /// against direct calls on an identically configured single engine, and
    /// inspect shard residency).
    pub fn engine(&self) -> &ShardedEngine {
        &self.inner.engine
    }

    /// What the startup warm pass restored from the snapshot store.
    pub fn warm_report(&self) -> WarmReport {
        self.inner.warm
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Allocates a fresh connection id for a transport-free client (tests,
    /// benches, the stdio loop).
    pub fn open_conn(&self) -> u64 {
        self.inner.begin_conn()
    }

    /// Drops every session a connection owns (the disconnect hook for
    /// transport-free clients).
    pub fn close_conn(&self, conn: u64) {
        self.inner.sessions.drop_conn(conn);
    }

    /// Parses and executes one request line *directly* on the calling
    /// thread — the transport-free core every transport funnels into.
    /// Admission control and deadlines live in front of this (see
    /// [`Server::submit_and_wait`]); bit-for-bit, the response is the same
    /// either way.
    pub fn handle_line(&self, conn: u64, line: &str) -> Reply {
        self.inner.handle_line(conn, line)
    }

    /// Pushes one request line through the worker pool and waits for its
    /// response: the path every real transport uses. Overload and
    /// deadline outcomes surface here as `overloaded` (with
    /// `retry_after_ms`) and `deadline-exceeded` responses.
    pub fn submit_and_wait(&self, conn: u64, line: &str) -> Reply {
        self.inner.submit_and_wait(conn, line)
    }

    /// Binds a TCP listener and spawns the configured transport
    /// ([`ServeConfig::transport`]): a thread-per-connection accept loop,
    /// or the readiness-based event loop. `addr` is standard `host:port`
    /// (port 0 picks a free port — read it back from
    /// [`TcpServerHandle::addr`]).
    ///
    /// # Errors
    /// Propagates the bind failure; [`Transport::EventLoop`] on a host
    /// without epoll fails with [`std::io::ErrorKind::Unsupported`].
    pub fn spawn_tcp(&self, addr: &str) -> std::io::Result<TcpServerHandle> {
        match self.inner.config.transport {
            Transport::Threaded => self.spawn_tcp_threaded(addr),
            Transport::EventLoop => super::event_loop::spawn(self.inner.clone(), addr),
        }
    }

    /// The thread-per-connection transport: each accepted socket gets its
    /// own blocking reader thread; requests execute on the shared pool.
    fn spawn_tcp_threaded(&self, addr: &str) -> std::io::Result<TcpServerHandle> {
        // lsc-analyze: allow(unrouted-io) reason="one-time listener setup before any session exists; faults inject at the per-connection FaultyStream"
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let inner = self.inner.clone();
        let stop_flag = stop.clone();
        let accept = std::thread::Builder::new()
            .name("lsc-serve-accept".to_string())
            .spawn(move || {
                // lsc-analyze: allow(unrouted-io) reason="accept loop hands every stream to serve_connection, which wraps it in FaultyStream"
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let inner = inner.clone();
                    // Connection threads are detached: they exit at client
                    // EOF / `bye`, and shutdown only needs to stop the
                    // accept loop and the pool.
                    let _ = std::thread::Builder::new()
                        .name("lsc-serve-conn".to_string())
                        .spawn(move || serve_connection(&inner, stream));
                }
            })
            .expect("spawn accept thread");
        Ok(TcpServerHandle {
            addr: local,
            stop,
            waker: None,
            accept: Some(accept),
        })
    }

    /// Serves the stdio transport: one request line per stdin line, one
    /// response line per stdout line, until EOF or `bye`. Requests flow
    /// through the same pool as TCP traffic.
    pub fn serve_stdio(&self) {
        let conn = self.open_conn();
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let reply = self.submit_and_wait(conn, &line);
            if writeln!(out, "{}", reply.text)
                .and_then(|()| out.flush())
                .is_err()
            {
                break;
            }
            if reply.close {
                break;
            }
        }
        self.close_conn(conn);
    }

    /// Stops the worker pool (drains queued requests first). Transports
    /// should be shut down first ([`TcpServerHandle::shutdown`]).
    pub fn shutdown(&self) {
        self.inner.pool.shutdown();
    }
}

/// A running TCP transport; dropping it (or calling
/// [`TcpServerHandle::shutdown`]) stops accepting new connections.
pub struct TcpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Present on the event-loop transport: shutdown wakes the poller
    /// instead of self-connecting to unblock a blocking accept.
    waker: Option<Arc<lsc_reactor::Waker>>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TcpServerHandle {
    /// Assembles the handle for the event-loop transport (the threaded
    /// transport builds its own inside `spawn_tcp_threaded`).
    pub(crate) fn for_event_loop(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        waker: Arc<lsc_reactor::Waker>,
        thread: std::thread::JoinHandle<()>,
    ) -> TcpServerHandle {
        TcpServerHandle {
            addr,
            stop,
            waker: Some(waker),
            accept: Some(thread),
        }
    }

    /// Assembles the handle for a thread-per-connection accept loop (the
    /// server's own threaded transport and the cluster router both use
    /// this shape: a stop flag checked per accept, unblocked by a
    /// self-connect).
    pub(crate) fn threaded(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        accept: std::thread::JoinHandle<()>,
    ) -> TcpServerHandle {
        TcpServerHandle {
            addr,
            stop,
            waker: None,
            accept: Some(accept),
        }
    }

    /// The bound address (use with `addr().port()` after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the transport and joins its thread. Threaded: existing
    /// connections keep draining on their own threads. Event loop: open
    /// connections are closed (their sessions drop; resume tokens keep
    /// working across a reconnect, as always).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        match &self.waker {
            // The event loop is parked in epoll_wait; the wake pipe pulls
            // it out without touching any socket.
            Some(waker) => waker.wake(),
            // Unblock the blocking accept call.
            // lsc-analyze: allow(unrouted-io) reason="wake-the-acceptor self-connect during shutdown; not a data path"
            None => drop(TcpStream::connect(self.addr)),
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(inner: &Arc<ServerInner>, stream: TcpStream) {
    let conn = inner.begin_conn();
    // Socket timeouts: a silent or non-draining peer fails its next I/O
    // call and the connection is reaped like any other dirty exit instead
    // of pinning this thread forever. (Setting them is best-effort — a
    // socket racing into error here just dies on the first read below.)
    let _ = stream.set_read_timeout(inner.config.read_timeout);
    let _ = stream.set_write_timeout(inner.config.write_timeout);
    // One full frame per write: Nagle + delayed ACK would otherwise stall
    // small request/response lines for tens of milliseconds.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        inner.resets_survived.fetch_add(1, Ordering::Relaxed);
        inner.sessions.drop_conn(conn);
        return;
    };
    let plan = inner.config.faults.clone();
    let reader = BufReader::new(FaultyStream::new(read_half, plan.clone()));
    let mut writer = BufWriter::new(FaultyStream::new(stream, plan));
    let mut dirty = false;
    for line in reader.lines() {
        let Ok(line) = line else {
            dirty = true;
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = inner.submit_and_wait(conn, &line);
        if writeln!(writer, "{}", reply.text)
            .and_then(|()| writer.flush())
            .is_err()
        {
            dirty = true;
            break;
        }
        if reply.close {
            break;
        }
    }
    if dirty {
        // An I/O error (peer reset, injected fault, socket timeout) ended
        // this connection; every other connection is unaffected.
        inner.resets_survived.fetch_add(1, Ordering::Relaxed);
    }
    inner.sessions.drop_conn(conn);
}

/// Exactly-once completion slot for an asynchronously submitted request.
///
/// Whichever of the job's paths runs first — `work` with the real reply,
/// `expire` with `deadline-exceeded` — takes the callback and fires it;
/// the other finds the slot empty. If *neither* ran (the job panicked
/// before completing, or the pool dropped it), the slot's own `Drop` —
/// which runs once both closures are gone — delivers a typed `internal`
/// reply, so an event-loop connection can never hang on a lost job. This
/// is the nonblocking mirror of the reply-channel `RecvError` fallback in
/// [`ServerInner::submit_and_wait`].
struct DoneSlot {
    done: Mutex<Option<DoneCallback>>,
}

/// The event loop's reply hand-off, boxed once at submission.
type DoneCallback = Box<dyn FnOnce(Reply) + Send>;

impl DoneSlot {
    fn new(done: DoneCallback) -> Arc<DoneSlot> {
        Arc::new(DoneSlot {
            done: Mutex::new(Some(done)),
        })
    }

    fn fire(&self, reply: Reply) {
        // Take the callback *outside* the lock scope before invoking it:
        // the callback touches the event loop's completion queue.
        let cb = { self.done.lock().ok().and_then(|mut slot| slot.take()) };
        if let Some(cb) = cb {
            cb(reply);
        }
    }

    /// Empties the slot without firing — the admission-refusal path, where
    /// the caller delivers the refusal reply itself and the `Drop`
    /// fallback must stay quiet.
    fn defuse(&self) {
        let _cb = self.done.lock().ok().and_then(|mut slot| slot.take());
    }
}

impl Drop for DoneSlot {
    fn drop(&mut self) {
        let cb = self.done.get_mut().ok().and_then(Option::take);
        if let Some(cb) = cb {
            cb(Reply {
                text: error_response(
                    None,
                    &WireError::new(ErrorCode::Internal, "worker dropped the request"),
                ),
                close: true,
            });
        }
    }
}

impl ServerInner {
    /// Allocates a fresh connection id and counts the connection.
    pub(crate) fn begin_conn(&self) -> u64 {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.next_conn.fetch_add(1, Ordering::Relaxed)
    }

    /// Disconnect hook: drops every session the connection owns.
    pub(crate) fn end_conn(&self, conn: u64) {
        self.sessions.drop_conn(conn);
    }

    /// Counts a connection that ended on an I/O error rather than a clean
    /// EOF/`bye`.
    pub(crate) fn note_reset(&self) {
        self.resets_survived.fetch_add(1, Ordering::Relaxed);
    }

    /// The fault plan connection streams must consult.
    pub(crate) fn faults(&self) -> Option<Arc<FaultPlan>> {
        self.config.faults.clone()
    }

    /// The configured idle-peer reap timeout.
    pub(crate) fn read_timeout(&self) -> Option<Duration> {
        self.config.read_timeout
    }

    /// Submits one request line for asynchronous execution: the
    /// event-loop twin of [`ServerInner::submit_and_wait`]. `done` fires
    /// exactly once, on a worker thread, with the reply (real, expired,
    /// or — via [`DoneSlot`] — `internal` if the job was lost). `waited`
    /// is how long the line already sat parsed in the connection's
    /// pipeline buffer; it comes off the queue deadline so a pipelined
    /// request's total patience matches a sequentially submitted one's.
    ///
    /// # Errors
    /// An admission-control refusal returns the reply the caller must
    /// deliver itself, in order (`overloaded` + retry hint, or the
    /// shutdown `internal`); `done` will never fire for it.
    pub(crate) fn submit_async(
        self: &Arc<Self>,
        conn: u64,
        line: String,
        waited: Duration,
        done: DoneCallback,
    ) -> Result<(), Reply> {
        let slot = DoneSlot::new(done);
        let work = {
            let inner = self.clone();
            let slot = slot.clone();
            let line = line.clone();
            move || {
                if let Some(plan) = &inner.config.faults {
                    if let Some(planned) = plan.decide(FaultSite::Job) {
                        if planned.fault == Fault::Panic {
                            // The worker unwinds (and is respawned); the
                            // DoneSlot drops with it and answers
                            // `internal` (close: true).
                            panic!("injected: queued job panic");
                        }
                    }
                }
                let reply = inner.handle_line(conn, &line);
                slot.fire(reply);
            }
        };
        let expire = {
            let slot = slot.clone();
            let line = line.clone();
            move || {
                let id = parse_request(&line).ok().and_then(|e| e.id);
                let error = WireError::new(
                    ErrorCode::DeadlineExceeded,
                    "request expired in queue before execution",
                );
                slot.fire(Reply {
                    text: error_response(id.as_ref(), &error),
                    close: false,
                });
            }
        };
        let deadline = self.config.deadline.saturating_sub(waited);
        match self.pool.submit(deadline, work, expire) {
            Ok(()) => Ok(()),
            Err(refusal) => {
                // The job never entered the queue: the refusal reply below
                // is the only answer, so the slot's Drop fallback must not
                // add an `internal` on top of it.
                slot.defuse();
                Err(match refusal {
                    SubmitError::Full => {
                        let id = parse_request(&line).ok().and_then(|e| e.id);
                        let mut error = WireError::new(
                            ErrorCode::Overloaded,
                            "request queue is full; back off and retry",
                        );
                        error.retry_after_ms = Some(self.retry_after_ms());
                        self.retries_hinted.fetch_add(1, Ordering::Relaxed);
                        Reply {
                            text: error_response(id.as_ref(), &error),
                            close: false,
                        }
                    }
                    SubmitError::Shutdown => Reply {
                        text: error_response(
                            None,
                            &WireError::new(ErrorCode::Internal, "server is shutting down"),
                        ),
                        close: true,
                    },
                })
            }
        }
    }

    fn stats(&self) -> ServeStats {
        let engine = self.engine.stats();
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            sessions_open: self.sessions.len(),
            sessions_evicted: self.sessions.evicted(),
            snapshots_loaded: self.warm.loaded,
            snapshots_rejected: self.warm.rejected,
            snapshots_saved: self.snapshots_saved.load(Ordering::Relaxed),
            snapshots_quarantined: self.sweep.quarantined,
            snapshot_tmp_swept: self.sweep.tmp_removed,
            resets_survived: self.resets_survived.load(Ordering::Relaxed),
            retries: self.retries_hinted.load(Ordering::Relaxed),
            pool: self.pool.stats(),
            engine: engine.aggregate,
            shards: engine.per_shard,
        }
    }

    fn submit_and_wait(self: &Arc<Self>, conn: u64, line: &str) -> Reply {
        let (tx, rx) = mpsc::channel::<Reply>();
        let work = {
            let inner = self.clone();
            let line = line.to_string();
            let tx = tx.clone();
            move || {
                if let Some(plan) = &inner.config.faults {
                    if let Some(planned) = plan.decide(FaultSite::Job) {
                        if planned.fault == Fault::Panic {
                            // The worker unwinds (and the pool respawns
                            // it); the submitter sees the dropped reply
                            // channel and answers `internal` (close: true).
                            panic!("injected: queued job panic");
                        }
                    }
                }
                let _ = tx.send(inner.handle_line(conn, &line));
            }
        };
        let expire = {
            let line = line.to_string();
            move || {
                let id = parse_request(&line).ok().and_then(|e| e.id);
                let error = WireError::new(
                    ErrorCode::DeadlineExceeded,
                    "request expired in queue before execution",
                );
                let _ = tx.send(Reply {
                    text: error_response(id.as_ref(), &error),
                    close: false,
                });
            }
        };
        match self.pool.submit(self.config.deadline, work, expire) {
            Ok(()) => rx.recv().unwrap_or_else(|_| Reply {
                text: error_response(
                    None,
                    &WireError::new(ErrorCode::Internal, "worker dropped the request"),
                ),
                close: true,
            }),
            Err(SubmitError::Full) => {
                let id = parse_request(line).ok().and_then(|e| e.id);
                let mut error = WireError::new(
                    ErrorCode::Overloaded,
                    "request queue is full; back off and retry",
                );
                error.retry_after_ms = Some(self.retry_after_ms());
                self.retries_hinted.fetch_add(1, Ordering::Relaxed);
                Reply {
                    text: error_response(id.as_ref(), &error),
                    close: false,
                }
            }
            Err(SubmitError::Shutdown) => Reply {
                text: error_response(
                    None,
                    &WireError::new(ErrorCode::Internal, "server is shutting down"),
                ),
                close: true,
            },
        }
    }

    /// The `retry_after_ms` hint, scaled to the current backlog: the
    /// configured base times `1 + queued/workers` (roughly "how many
    /// queue generations stand between you and a worker"), capped at
    /// 32× the base so a pathological backlog never tells clients to
    /// sleep unboundedly.
    fn retry_after_ms(&self) -> u64 {
        let base = (self.config.retry_after.as_millis() as u64).max(1);
        let workers = self.config.workers.max(1) as u64;
        let generations = 1 + self.pool.queued() as u64 / workers;
        base.saturating_mul(generations).min(base * 32)
    }

    fn handle_line(&self, conn: u64, line: &str) -> Reply {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let envelope = match parse_request(line) {
            Ok(envelope) => envelope,
            Err(error) => {
                return Reply {
                    text: error_response(None, &error),
                    close: false,
                }
            }
        };
        let Envelope { id, request } = envelope;
        let close = matches!(request, Request::Bye);
        let text = match self.dispatch(conn, request) {
            Ok(fields) => ok_response(id.as_ref(), fields),
            Err(error) => error_response(id.as_ref(), &error),
        };
        Reply { text, close }
    }

    fn dispatch(&self, conn: u64, request: Request) -> Result<Vec<(String, Json)>, WireError> {
        match request {
            Request::Hello => Ok(vec![
                ("proto".to_string(), Json::num(1.0)),
                ("server".to_string(), Json::str("nfa_tool serve")),
            ]),
            Request::Prepare { spec, length } => self.op_prepare(conn, &spec, length),
            Request::Count { session } => self.with_session(conn, &session, |s, me| {
                let response = me
                    .engine
                    .query(&QueryRequest::on(&s.handle, QueryKind::Count, 0));
                let routed = match response.output.map_err(wire_query_error)? {
                    QueryOutput::Count(routed) => routed,
                    _ => unreachable!("Count returns Count"),
                };
                me.maybe_snapshot(s.handle.instance());
                let route = match routed.route {
                    CountRoute::ExactUnambiguous => "exact-unambiguous".to_string(),
                    CountRoute::ExactDeterminized { dfa_states } => {
                        format!("exact-determinized({dfa_states})")
                    }
                    CountRoute::Fpras => "fpras".to_string(),
                };
                let mut fields = vec![
                    ("route".to_string(), Json::str(route)),
                    ("exact".to_string(), Json::Bool(routed.is_exact())),
                    (
                        "estimate".to_string(),
                        Json::str(routed.estimate.to_string()),
                    ),
                ];
                if let Some(exact) = &routed.exact {
                    fields.push(("count".to_string(), Json::str(exact.to_string())));
                }
                fields.push(("cache_hit".to_string(), Json::Bool(response.cache_hit)));
                Ok(fields)
            }),
            Request::CountExact { session } => self.with_session(conn, &session, |s, me| {
                let response =
                    me.engine
                        .query(&QueryRequest::on(&s.handle, QueryKind::CountExact, 0));
                let count = match response.output.map_err(wire_query_error)? {
                    QueryOutput::Exact(count) => count,
                    _ => unreachable!("CountExact returns Exact"),
                };
                me.maybe_snapshot(s.handle.instance());
                Ok(vec![
                    ("count".to_string(), Json::str(count.to_string())),
                    ("cache_hit".to_string(), Json::Bool(response.cache_hit)),
                ])
            }),
            Request::Enumerate {
                session,
                page_size,
                resume,
            } => {
                let page_size = page_size.unwrap_or(self.config.default_page_size);
                self.check_batch_size("page_size", page_size)?;
                self.with_session(conn, &session, |s, me| {
                    let mut cursor = match &resume {
                        Some(text) => {
                            let token = ResumeToken::parse(text).map_err(|e| {
                                WireError::new(ErrorCode::InvalidToken, e.to_string())
                            })?;
                            me.engine.resume_cursor(&s.handle, &token).map_err(|e| {
                                WireError::new(ErrorCode::InvalidToken, e.to_string())
                            })?
                        }
                        None => match s.cursor.take() {
                            Some(cursor) => cursor,
                            None => me.engine.cursor(&s.handle),
                        },
                    };
                    // Stream the page straight off the cursor's lent buffer:
                    // each witness is formatted at the protocol boundary
                    // without materializing an owned `Word` per row.
                    let mut words = Vec::new();
                    while words.len() < page_size {
                        match cursor.advance() {
                            Some(w) => words.push(Json::str(format_word(w, &s.alphabet))),
                            None => break,
                        }
                    }
                    let returned = words.len();
                    let fields = vec![
                        ("words".to_string(), Json::Arr(words)),
                        ("returned".to_string(), Json::num(returned as f64)),
                        ("rank".to_string(), Json::num(cursor.rank() as f64)),
                        ("done".to_string(), Json::Bool(cursor.is_done())),
                        ("token".to_string(), Json::str(cursor.token().encode())),
                    ];
                    me.maybe_snapshot(s.handle.instance());
                    s.cursor = Some(cursor);
                    Ok(fields)
                })
            }
            Request::Sample {
                session,
                count,
                seed,
            } => {
                self.check_batch_size("count", count)?;
                self.with_session(conn, &session, |s, me| {
                    let response = me.engine.query(&QueryRequest::on(
                        &s.handle,
                        QueryKind::Sample { count },
                        seed,
                    ));
                    let words = match response.output.map_err(wire_query_error)? {
                        QueryOutput::Words(words) => words,
                        _ => unreachable!("Sample returns Words"),
                    };
                    me.maybe_snapshot(s.handle.instance());
                    Ok(vec![
                        ("words".to_string(), format_words(&words, &s.alphabet)),
                        ("returned".to_string(), Json::num(words.len() as f64)),
                        ("cache_hit".to_string(), Json::Bool(response.cache_hit)),
                    ])
                })
            }
            Request::Close { session } => {
                if self.sessions.close(conn, &session) {
                    Ok(vec![("closed".to_string(), Json::str(session))])
                } else {
                    Err(WireError::new(
                        ErrorCode::UnknownSession,
                        format!("no session {session:?} on this connection"),
                    ))
                }
            }
            Request::Stats => {
                let stats = self.stats();
                Ok(vec![
                    (
                        "server".to_string(),
                        Json::Obj(vec![
                            ("requests".to_string(), Json::num(stats.requests as f64)),
                            (
                                "connections".to_string(),
                                Json::num(stats.connections as f64),
                            ),
                            (
                                "sessions_open".to_string(),
                                Json::num(stats.sessions_open as f64),
                            ),
                            (
                                "sessions_evicted".to_string(),
                                Json::num(stats.sessions_evicted as f64),
                            ),
                            (
                                "rejected".to_string(),
                                Json::num(stats.pool.rejected as f64),
                            ),
                            ("expired".to_string(), Json::num(stats.pool.expired as f64)),
                            (
                                "panicked".to_string(),
                                Json::num(stats.pool.panicked as f64),
                            ),
                            ("queued".to_string(), Json::num(stats.pool.queued as f64)),
                            (
                                "snapshots_loaded".to_string(),
                                Json::num(stats.snapshots_loaded as f64),
                            ),
                            (
                                "snapshots_saved".to_string(),
                                Json::num(stats.snapshots_saved as f64),
                            ),
                            (
                                "snapshots_quarantined".to_string(),
                                Json::num(stats.snapshots_quarantined as f64),
                            ),
                            (
                                "snapshot_tmp_swept".to_string(),
                                Json::num(stats.snapshot_tmp_swept as f64),
                            ),
                            (
                                "resets_survived".to_string(),
                                Json::num(stats.resets_survived as f64),
                            ),
                            ("retries".to_string(), Json::num(stats.retries as f64)),
                        ]),
                    ),
                    ("engine".to_string(), engine_stats_json(&stats.engine, None)),
                    (
                        "shards".to_string(),
                        Json::Arr(
                            stats
                                .shards
                                .iter()
                                .map(|(id, s)| engine_stats_json(s, Some(*id)))
                                .collect(),
                        ),
                    ),
                ])
            }
            Request::Health => {
                let queued = self.pool.queued();
                let capacity = self.pool.capacity();
                let status = if queued >= capacity {
                    "saturated"
                } else {
                    "ok"
                };
                Ok(vec![
                    ("status".to_string(), Json::str(status)),
                    ("queued".to_string(), Json::num(queued as f64)),
                    ("queue_capacity".to_string(), Json::num(capacity as f64)),
                    (
                        "sessions_open".to_string(),
                        Json::num(self.sessions.len() as f64),
                    ),
                    (
                        "retry_after_ms".to_string(),
                        Json::num(self.retry_after_ms() as f64),
                    ),
                ])
            }
            Request::Bye => Ok(vec![("bye".to_string(), Json::Bool(true))]),
        }
    }

    fn op_prepare(
        &self,
        conn: u64,
        spec: &InstanceSpec,
        length: usize,
    ) -> Result<Vec<(String, Json)>, WireError> {
        let (nfa, alphabet) = match spec {
            InstanceSpec::Regex { pattern, alphabet } => {
                let chars: Vec<char> = alphabet
                    .as_deref()
                    .unwrap_or(&self.config.default_alphabet)
                    .chars()
                    .collect();
                if chars.is_empty() {
                    return Err(WireError::new(ErrorCode::BadRequest, "empty alphabet"));
                }
                let ab = Alphabet::from_chars(&chars);
                let regex = Regex::parse(pattern, &ab)
                    .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?;
                (Arc::new(regex.compile()), ab)
            }
            InstanceSpec::NfaText(text) => {
                let nfa = nfa_io::from_text(text)
                    .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?;
                let alphabet = nfa.alphabet().clone();
                (Arc::new(nfa), alphabet)
            }
        };
        let handle = self.engine.prepare_nfa(&nfa, length);
        // The classification is needed to answer (and report) anything, so
        // materialize it now — it is also the first artifact worth
        // persisting.
        let unambiguous = handle.instance().is_unambiguous();
        self.maybe_snapshot(handle.instance());
        let fields = vec![
            (
                "session".to_string(),
                Json::str(self.sessions.open(conn, handle.clone(), alphabet)),
            ),
            (
                "fingerprint".to_string(),
                Json::str(format!("{:016x}", handle.fingerprint())),
            ),
            ("length".to_string(), Json::num(length as f64)),
            ("states".to_string(), Json::num(nfa.num_states() as f64)),
            ("unambiguous".to_string(), Json::Bool(unambiguous)),
            ("cached".to_string(), Json::Bool(handle.was_cached())),
        ];
        Ok(fields)
    }

    /// Runs one request against a checked-out session, always returning
    /// the session to the registry (success or failure).
    fn with_session<T>(
        &self,
        conn: u64,
        name: &str,
        f: impl FnOnce(&mut Session, &Self) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut session = self.sessions.take(conn, name).ok_or_else(|| {
            WireError::new(
                ErrorCode::UnknownSession,
                format!("no session {name:?} on this connection (closed or idled out?)"),
            )
        })?;
        let result = f(&mut session, self);
        self.sessions.put_back(conn, name, session);
        result
    }

    /// Post-query persistence hook: save a snapshot when (and only when) a
    /// new artifact materialized on the instance since the last save.
    fn maybe_snapshot(&self, inst: &Arc<PreparedInstance>) {
        let Some(store) = &self.snapshots else { return };
        let (unambiguous, degree, completions, det_count) = inst.snapshot_parts();
        let mask = u8::from(unambiguous.is_some())
            | (u8::from(degree.is_some()) << 1)
            | (u8::from(completions.is_some()) << 2)
            | (u8::from(det_count.is_some()) << 3)
            | (u8::from(inst.sketch_snapshot().is_some()) << 4);
        {
            let masks = self.snapshot_masks.lock().expect("snapshot masks poisoned");
            if masks.get(&inst.fingerprint()) == Some(&mask) {
                return;
            }
        }
        // Persist outside the mask lock (encoding can be slow); record the
        // mask only on success so failures retry on the next query. Only a
        // save that actually wrote a file counts toward `snapshots_saved`
        // ("snapshots written") — `Ok(false)` means an identical file was
        // already on disk.
        if let Ok(wrote) = store.save(inst) {
            if wrote {
                self.snapshots_saved.fetch_add(1, Ordering::Relaxed);
            }
            self.snapshot_masks
                .lock()
                .expect("snapshot masks poisoned")
                .insert(inst.fingerprint(), mask);
        }
    }

    /// Enforces the `max_batch` cap on wire-supplied page/count sizes.
    fn check_batch_size(&self, what: &str, requested: usize) -> Result<(), WireError> {
        if requested > self.config.max_batch {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                format!(
                    "\"{what}\" {requested} exceeds this server's limit of {}",
                    self.config.max_batch
                ),
            ));
        }
        Ok(())
    }
}

/// Serializes one engine-stats block (the aggregate, or — with an id — one
/// shard's counters) for the `stats` op.
fn engine_stats_json(stats: &EngineStats, shard_id: Option<usize>) -> Json {
    let mut fields = Vec::with_capacity(7);
    if let Some(id) = shard_id {
        fields.push(("id".to_string(), Json::num(id as f64)));
    }
    fields.extend([
        ("hits".to_string(), Json::num(stats.hits as f64)),
        ("misses".to_string(), Json::num(stats.misses as f64)),
        ("evictions".to_string(), Json::num(stats.evictions as f64)),
        ("entries".to_string(), Json::num(stats.entries as f64)),
        ("bytes".to_string(), Json::num(stats.bytes as f64)),
        ("domains".to_string(), Json::num(stats.domains as f64)),
    ]);
    Json::Obj(fields)
}

fn wire_query_error(error: QueryError) -> WireError {
    match error {
        QueryError::NotUnambiguous => WireError::new(
            ErrorCode::NotUnambiguous,
            "instance is ambiguous; exact counting requires MEM-UFA (use \"count\")",
        ),
        QueryError::Fpras(e) => WireError::new(ErrorCode::Fpras, e.to_string()),
    }
}

fn format_words(words: &[Word], alphabet: &Alphabet) -> Json {
    Json::Arr(
        words
            .iter()
            .map(|w| Json::str(format_word(w, alphabet)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::json;

    fn server() -> Server {
        Server::new(ServeConfig::default()).unwrap()
    }

    fn ok(reply: &Reply) -> Json {
        let value = json::parse(&reply.text).unwrap();
        assert_eq!(
            value.get("ok"),
            Some(&Json::Bool(true)),
            "expected ok: {}",
            reply.text
        );
        value
    }

    #[test]
    fn hello_prepare_count_enumerate_sample_round_trip() {
        let server = server();
        let conn = server.open_conn();
        let hello = ok(&server.handle_line(conn, r#"{"op":"hello","proto":1}"#));
        assert_eq!(hello.get("proto").and_then(Json::as_u64), Some(1));

        let prepared = ok(&server.handle_line(
            conn,
            r#"{"op":"prepare","regex":"(0|1)*101(0|1)*","length":6}"#,
        ));
        let session = prepared
            .get("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(prepared.get("cached"), Some(&Json::Bool(false)));

        // The routed count answers on any instance; exact counting rejects
        // this (ambiguous) one with its own error code.
        let count =
            ok(&server.handle_line(conn, &format!(r#"{{"op":"count","session":"{session}"}}"#)));
        assert!(count.get("route").is_some());
        let exact = server.handle_line(
            conn,
            &format!(r#"{{"op":"count_exact","session":"{session}"}}"#),
        );
        let exact = json::parse(&exact.text).unwrap();
        assert_eq!(
            exact.get("code").and_then(Json::as_str),
            Some("not-unambiguous")
        );

        let page = ok(&server.handle_line(
            conn,
            &format!(r#"{{"op":"enumerate","session":"{session}","page_size":4}}"#),
        ));
        assert_eq!(page.get("returned").and_then(Json::as_u64), Some(4));
        let token = page.get("token").unwrap().as_str().unwrap().to_string();
        assert!(token.starts_with("enum1."));

        let sample = ok(&server.handle_line(
            conn,
            &format!(r#"{{"op":"sample","session":"{session}","count":3,"seed":9}}"#),
        ));
        assert_eq!(sample.get("returned").and_then(Json::as_u64), Some(3));

        let bye = server.handle_line(conn, r#"{"op":"bye"}"#);
        assert!(bye.close);
        server.close_conn(conn);
        server.shutdown();
    }

    #[test]
    fn unknown_sessions_and_foreign_connections_are_rejected() {
        let server = server();
        let conn = server.open_conn();
        let reply = server.handle_line(conn, r#"{"op":"count","session":"s99"}"#);
        let value = json::parse(&reply.text).unwrap();
        assert_eq!(value.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("unknown-session")
        );
        // A session opened on one connection is invisible to another.
        let prepared =
            ok(&server.handle_line(conn, r#"{"op":"prepare","regex":"(0|1)*1","length":4}"#));
        let session = prepared.get("session").unwrap().as_str().unwrap();
        let other = server.open_conn();
        let reply =
            server.handle_line(other, &format!(r#"{{"op":"count","session":"{session}"}}"#));
        let value = json::parse(&reply.text).unwrap();
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("unknown-session")
        );
        server.shutdown();
    }

    #[test]
    fn live_cursor_and_token_resume_agree() {
        let server = server();
        let conn = server.open_conn();
        let prepared =
            ok(&server.handle_line(conn, r#"{"op":"prepare","regex":"(0|1)*11","length":5}"#));
        let session = prepared
            .get("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        // Page twice through the live cursor.
        let p1 = ok(&server.handle_line(
            conn,
            &format!(r#"{{"op":"enumerate","session":"{session}","page_size":3}}"#),
        ));
        let p2 = ok(&server.handle_line(
            conn,
            &format!(r#"{{"op":"enumerate","session":"{session}","page_size":3}}"#),
        ));
        // Re-walk the same pages by explicit token resumption.
        let t1 = p1.get("token").unwrap().as_str().unwrap();
        let r2 = ok(&server.handle_line(
            conn,
            &format!(r#"{{"op":"enumerate","session":"{session}","page_size":3,"resume":"{t1}"}}"#),
        ));
        assert_eq!(p2.get("words"), r2.get("words"));
        assert_eq!(p2.get("rank"), r2.get("rank"));
        server.shutdown();
    }

    #[test]
    fn invalid_tokens_are_rejected_with_their_code() {
        let server = server();
        let conn = server.open_conn();
        let prepared =
            ok(&server.handle_line(conn, r#"{"op":"prepare","regex":"(0|1)*11","length":5}"#));
        let session = prepared
            .get("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let reply = server.handle_line(
            conn,
            &format!(r#"{{"op":"enumerate","session":"{session}","resume":"enum1.garbage"}}"#),
        );
        let value = json::parse(&reply.text).unwrap();
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("invalid-token")
        );
        server.shutdown();
    }

    #[test]
    fn oversized_pages_and_sample_counts_are_rejected() {
        let config = ServeConfig {
            max_batch: 10,
            ..ServeConfig::default()
        };
        let server = Server::new(config).unwrap();
        let conn = server.open_conn();
        let prepared =
            ok(&server.handle_line(conn, r#"{"op":"prepare","regex":"(0|1)*11","length":5}"#));
        let session = prepared
            .get("session")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        for request in [
            format!(r#"{{"op":"enumerate","session":"{session}","page_size":11}}"#),
            format!(r#"{{"op":"sample","session":"{session}","count":11}}"#),
        ] {
            let reply = server.handle_line(conn, &request);
            let value = json::parse(&reply.text).unwrap();
            assert_eq!(
                value.get("code").and_then(Json::as_str),
                Some("bad-request"),
                "{request} must hit the max_batch cap: {}",
                reply.text
            );
        }
        // At the cap is fine.
        ok(&server.handle_line(
            conn,
            &format!(r#"{{"op":"enumerate","session":"{session}","page_size":10}}"#),
        ));
        server.shutdown();
    }

    #[test]
    fn stats_report_engine_and_server_counters() {
        let server = server();
        let conn = server.open_conn();
        ok(&server.handle_line(conn, r#"{"op":"prepare","regex":"(0|1)*11","length":5}"#));
        let stats = ok(&server.handle_line(conn, r#"{"op":"stats"}"#));
        let engine = stats.get("engine").unwrap();
        assert_eq!(engine.get("entries").and_then(Json::as_u64), Some(1));
        let srv = stats.get("server").unwrap();
        assert_eq!(srv.get("sessions_open").and_then(Json::as_u64), Some(1));
        server.shutdown();
    }
}
