//! The reconnecting client: retries, backoff, and cursor resumption.
//!
//! The server's failure semantics (see `docs/ARCHITECTURE.md` §7) make
//! every wire verb safe to replay: `count` / `count_exact` / `sample`
//! are pure given their arguments, `prepare` is idempotent, and
//! `enumerate` resumed by an explicit token re-serves exactly the page
//! the token names. This module is the client half of that contract —
//! a [`Client`] that owns one TCP connection and, on any failure,
//! classifies it and recovers without surfacing an error to the caller
//! until its retry budget is spent:
//!
//! * **Transport failures** (connect refused, reset, EOF, a torn frame —
//!   a response line with no trailing newline or unparseable JSON) —
//!   drop the connection, back off, reconnect, replay. Sessions are
//!   connection-scoped, so the replay transparently re-`prepare`s from
//!   the client-side spec registry first.
//! * **`overloaded`** — the request was *not* executed (admission
//!   control rejected it at the door); sleep the server's
//!   `retry_after_ms` hint and replay verbatim.
//! * **`deadline-exceeded`** — the request expired in the queue without
//!   executing; back off and replay.
//! * **`internal`** — the worker died mid-request (e.g. an injected
//!   panic); the connection is closing, so reconnect and replay.
//! * **`unknown-session`** — the session idled out (or the server
//!   restarted); re-`prepare` it and replay.
//!
//! Anything else (`bad-request`, `invalid-token`, `not-unambiguous`,
//! `fpras-failure`) is the caller's problem and returns immediately as
//! [`ClientError::Server`].
//!
//! **Why replay is exact, not just safe.** The one stateful verb is
//! `enumerate` through the session's *live* cursor. The client never
//! replays a live-cursor page across an ambiguous boundary: pages after
//! the first always carry the last received resume token (so a replay
//! re-serves that exact page), and a first page (no token yet) only ever
//! replays after a *reconnect* — which re-prepares a fresh session whose
//! live cursor is back at rank 0. The retryable error codes that do
//! *not* reconnect (`overloaded`, `deadline-exceeded`) are precisely the
//! ones where the server guarantees the request never executed.
//!
//! **Backoff.** `delay(attempt) = min(cap, base · 2^attempt · jitter)`
//! with jitter drawn from `[1.0, 1.5)` by SplitMix64 over
//! `seed ^ attempt`: deterministic per seed (the chaos suite replays
//! schedules exactly), monotone nondecreasing in the attempt (jitter
//! stays below the factor-2 growth), and capped. [`backoff_delay`] is
//! the pure function; the proptest in `tests/crash_safety.rs` pins all
//! three properties.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::serve::faults::splitmix64;
use crate::serve::json::{self, Json};
use crate::serve::protocol::{InstanceSpec, PROTOCOL_VERSION};

/// Client tuning knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Jitter seed: equal seeds replay the same backoff schedule.
    pub seed: u64,
    /// Attempts per request (first try included) before
    /// [`ClientError::Exhausted`].
    pub max_attempts: usize,
    /// First backoff step (scaled by `2^attempt · jitter`).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Client-side socket read/write timeouts (`None` waits forever).
    pub io_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            seed: 0,
            max_attempts: 10,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_secs(1),
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Why a request ultimately failed (after the retry machinery gave up or
/// classified the failure as not-retryable).
#[derive(Clone, Debug)]
pub enum ClientError {
    /// The retry budget is spent; `last` describes the final failure.
    Exhausted {
        /// Attempts made (== the configured `max_attempts`).
        attempts: usize,
        /// The last failure the machinery absorbed.
        last: String,
    },
    /// The server answered with a non-retryable error code.
    Server {
        /// The wire `"code"`.
        code: String,
        /// The wire `"error"` message.
        message: String,
    },
    /// The caller misused the client (e.g. a session alias that was never
    /// prepared).
    Usage(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Usage(message) => write!(f, "client misuse: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Client-side recovery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful connections (the first one included).
    pub connects: u64,
    /// Connections after the first — each one is a failure survived.
    pub reconnects: u64,
    /// Request attempts beyond the first (replays of any cause).
    pub retries: u64,
    /// Sessions re-`prepare`d from the spec registry.
    pub re_prepares: u64,
    /// Response frames discarded as torn (no trailing newline, or
    /// unparseable JSON).
    pub torn_frames: u64,
    /// `retry_after_ms` hints honored (slept) from `overloaded` answers.
    pub hints_honored: u64,
    /// Pipelined batches sent via [`Client::pipeline_raw`].
    pub pipelined_batches: u64,
}

/// The pure backoff schedule: `min(cap, base · 2^attempt · jitter)` with
/// jitter in `[1.0, 1.5)` drawn by SplitMix64 over `seed ^ attempt`.
/// Deterministic per seed, monotone nondecreasing in `attempt`, capped.
pub fn backoff_delay(base: Duration, cap: Duration, seed: u64, attempt: u32) -> Duration {
    // [0, 2^24) / 2^25 ∈ [0, 0.5): high bits of the mix, so nearby seeds
    // do not share low-bit patterns.
    let jitter = 1.0 + (splitmix64(seed ^ u64::from(attempt)) >> 40) as f64 / (1u64 << 25) as f64;
    let exp = 2f64.powi(attempt.min(48) as i32);
    let raw = base.as_secs_f64() * exp * jitter;
    Duration::from_secs_f64(raw.min(cap.as_secs_f64()))
}

/// One session's client-side record: enough to re-`prepare` it from
/// scratch and to resume its cursor exactly.
#[derive(Clone, Debug)]
struct SessionEntry {
    spec: InstanceSpec,
    length: usize,
    /// The server-issued session name on the *current* connection
    /// (`None` after a reconnect or an idle eviction).
    session: Option<String>,
    /// The last resume token received for this session's cursor.
    token: Option<String>,
    /// The full response of the most recent server-side `prepare` —
    /// fingerprint, states, unambiguous, cached — so a proxying caller
    /// (the cluster router) can forward the backend's prepare fields
    /// without a second round trip.
    prepared: Option<Json>,
}

/// One live connection: a buffered reader over a cloned read half plus
/// the write half.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// How one send/receive step failed (pre-classification).
enum Step {
    /// Transport trouble: reconnect and replay.
    Io(String),
    /// A server error response: classify by code.
    Wire {
        code: String,
        message: String,
        retry_after_ms: Option<u64>,
    },
}

/// A reconnecting JSON-lines client for `nfa_tool serve`. See the module
/// docs for the retry contract.
pub struct Client {
    addr: String,
    config: ClientConfig,
    conn: Option<Conn>,
    sessions: HashMap<String, SessionEntry>,
    stats: ClientStats,
}

impl Client {
    /// A client for the server at `addr` (standard `host:port`). No I/O
    /// happens until the first request.
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Client {
        Client {
            addr: addr.into(),
            config,
            conn: None,
            sessions: HashMap::new(),
            stats: ClientStats::default(),
        }
    }

    /// Recovery counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The last resume token received for `alias` (survives reconnects
    /// and server restarts; hand it to a future process via
    /// [`Client::resume_from`]).
    pub fn last_token(&self, alias: &str) -> Option<&str> {
        self.sessions.get(alias)?.token.as_deref()
    }

    /// The full response of the most recent server-side `prepare` for
    /// `alias` (fingerprint, length, states, unambiguous, cached), if one
    /// has happened on the current connection's lifetime. The cluster
    /// router forwards these fields to its own caller verbatim.
    pub fn last_prepare(&self, alias: &str) -> Option<&Json> {
        self.sessions.get(alias)?.prepared.as_ref()
    }

    /// Drops the client-side record for `alias` (the server session, if
    /// any, idles out by TTL). A later call with the same alias starts
    /// from a fresh `prepare`.
    pub fn forget(&mut self, alias: &str) {
        self.sessions.remove(alias);
    }

    /// Seeds `alias`'s cursor position from a token saved elsewhere: the
    /// next [`Client::enumerate_page`] resumes there.
    pub fn resume_from(
        &mut self,
        alias: &str,
        token: impl Into<String>,
    ) -> Result<(), ClientError> {
        let entry = self
            .sessions
            .get_mut(alias)
            .ok_or_else(|| ClientError::Usage(format!("no prepared session {alias:?}")))?;
        entry.token = Some(token.into());
        Ok(())
    }

    /// Prepares an instance under the client-chosen `alias` and binds a
    /// server session to it. The spec is kept so the session can be
    /// re-prepared transparently after resets, restarts, and idle
    /// evictions.
    ///
    /// # Errors
    /// [`ClientError`] per the module-level retry contract.
    pub fn prepare(
        &mut self,
        alias: impl Into<String>,
        spec: InstanceSpec,
        length: usize,
    ) -> Result<Json, ClientError> {
        let alias = alias.into();
        self.sessions.insert(
            alias.clone(),
            SessionEntry {
                spec,
                length,
                session: None,
                token: None,
                prepared: None,
            },
        );
        // The generic session machinery re-prepares on demand; driving it
        // with a `health` probe both establishes the session and checks
        // the connection in one round trip.
        let entry = self.rpc(Some(&alias), |_| request_line("health", &[]))?;
        drop(entry);
        let session = self
            .sessions
            .get(&alias)
            .and_then(|e| e.session.clone())
            .expect("rpc established the session");
        Ok(Json::Obj(vec![
            ("session".to_string(), Json::str(session)),
            ("alias".to_string(), Json::str(alias)),
        ]))
    }

    /// Routed `COUNT` on `alias`.
    ///
    /// # Errors
    /// [`ClientError`] per the module-level retry contract.
    pub fn count(&mut self, alias: &str) -> Result<Json, ClientError> {
        self.rpc(Some(alias), |session| {
            request_line(
                "count",
                &[("session", Json::str(session.unwrap_or_default()))],
            )
        })
    }

    /// Exact `COUNT` on `alias` (server-side `not-unambiguous` errors
    /// surface as [`ClientError::Server`]).
    ///
    /// # Errors
    /// [`ClientError`] per the module-level retry contract.
    pub fn count_exact(&mut self, alias: &str) -> Result<Json, ClientError> {
        self.rpc(Some(alias), |session| {
            request_line(
                "count_exact",
                &[("session", Json::str(session.unwrap_or_default()))],
            )
        })
    }

    /// `GEN`: `count` uniform witnesses under `seed` (pure given the
    /// seed, so replays are exact).
    ///
    /// # Errors
    /// [`ClientError`] per the module-level retry contract.
    pub fn sample(&mut self, alias: &str, count: usize, seed: u64) -> Result<Json, ClientError> {
        self.rpc(Some(alias), move |session| {
            request_line(
                "sample",
                &[
                    ("session", Json::str(session.unwrap_or_default())),
                    ("count", Json::num(count as f64)),
                    ("seed", Json::num(seed as f64)),
                ],
            )
        })
    }

    /// The next `ENUM` page for `alias`, resuming from the last received
    /// token (explicitly, so a replay re-serves exactly this page). The
    /// returned object carries `words`, `rank`, `done`, and `token`; the
    /// token is also recorded for the next call.
    ///
    /// # Errors
    /// [`ClientError`] per the module-level retry contract.
    pub fn enumerate_page(
        &mut self,
        alias: &str,
        page_size: Option<usize>,
    ) -> Result<Json, ClientError> {
        let token = self
            .sessions
            .get(alias)
            .ok_or_else(|| ClientError::Usage(format!("no prepared session {alias:?}")))?
            .token
            .clone();
        let value = self.rpc(Some(alias), move |session| {
            let mut fields = vec![("session", Json::str(session.unwrap_or_default()))];
            if let Some(size) = page_size {
                fields.push(("page_size", Json::num(size as f64)));
            }
            if let Some(token) = &token {
                fields.push(("resume", Json::str(token.clone())));
            }
            request_line("enumerate", &fields)
        })?;
        if let Some(token) = value.get("token").and_then(Json::as_str) {
            if let Some(entry) = self.sessions.get_mut(alias) {
                entry.token = Some(token.to_string());
            }
        }
        Ok(value)
    }

    /// Sends every request line as **one pipelined batch** — a single
    /// buffered write, usually one syscall — then reads exactly one
    /// response per line, in request order (the transports guarantee
    /// order per connection; see `docs/ARCHITECTURE.md` §4).
    ///
    /// Pipelining trades the per-request replay contract for round-trip
    /// elimination, so this mode is deliberately raw: lines are sent
    /// verbatim (no session aliasing), error responses (`ok: false`) are
    /// returned as values for the caller to inspect, and any transport
    /// failure mid-batch drops the connection and surfaces immediately —
    /// the retry machinery cannot know which requests of a half-answered
    /// batch executed.
    ///
    /// # Errors
    /// [`ClientError::Exhausted`] (single attempt) on connect failure,
    /// a mid-batch transport failure, or a torn response frame.
    pub fn pipeline_raw(&mut self, lines: &[impl AsRef<str>]) -> Result<Vec<Json>, ClientError> {
        let fail = |last: String| ClientError::Exhausted { attempts: 1, last };
        if self.conn.is_none() {
            self.try_connect().map_err(fail)?;
        }
        let mut batch = String::new();
        for line in lines {
            batch.push_str(line.as_ref());
            batch.push('\n');
        }
        let conn = self.conn.as_mut().expect("connected above");
        if let Err(e) = conn
            .writer
            .write_all(batch.as_bytes())
            .and_then(|()| conn.writer.flush())
        {
            self.drop_conn();
            return Err(fail(format!("pipelined write: {e}")));
        }
        self.stats.pipelined_batches += 1;
        let mut responses = Vec::with_capacity(lines.len());
        for index in 0..lines.len() {
            let conn = self.conn.as_mut().expect("still connected");
            let mut response = String::new();
            match conn.reader.read_line(&mut response) {
                Err(e) => {
                    self.drop_conn();
                    return Err(fail(format!("pipelined read {index}: {e}")));
                }
                Ok(0) => {
                    self.drop_conn();
                    return Err(fail(format!(
                        "connection closed after {index} of {} pipelined responses",
                        lines.len()
                    )));
                }
                Ok(_) => {}
            }
            if !response.ends_with('\n') {
                self.stats.torn_frames += 1;
                self.drop_conn();
                return Err(fail(format!("pipelined response {index}: torn frame")));
            }
            match json::parse(response.trim_end()) {
                Ok(value) => responses.push(value),
                Err(e) => {
                    self.stats.torn_frames += 1;
                    self.drop_conn();
                    return Err(fail(format!("pipelined response {index}: {e}")));
                }
            }
        }
        Ok(responses)
    }

    /// The server's `health` probe.
    ///
    /// # Errors
    /// [`ClientError`] per the module-level retry contract.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.rpc(None, |_| request_line("health", &[]))
    }

    /// The server's `stats` counters.
    ///
    /// # Errors
    /// [`ClientError`] per the module-level retry contract.
    pub fn server_stats(&mut self) -> Result<Json, ClientError> {
        self.rpc(None, |_| request_line("stats", &[]))
    }

    /// Sends `bye` (best-effort) and drops the connection. The spec
    /// registry survives, so the next request reconnects.
    pub fn bye(&mut self) {
        if let Some(conn) = &mut self.conn {
            let _ = writeln!(conn.writer, "{}", request_line("bye", &[]));
            let _ = conn.writer.flush();
        }
        self.conn = None;
        for entry in self.sessions.values_mut() {
            entry.session = None;
        }
    }

    /// The generic retry loop: classify every failure, recover where the
    /// contract allows, give up where it does not.
    fn rpc(
        &mut self,
        alias: Option<&str>,
        build: impl Fn(Option<&str>) -> String,
    ) -> Result<Json, ClientError> {
        let mut last = "never attempted".to_string();
        for attempt in 0..self.config.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            if self.conn.is_none() {
                if let Err(message) = self.try_connect() {
                    last = message;
                    self.sleep_backoff(attempt as u32);
                    continue;
                }
            }
            // Session-scoped verbs need a live server session; re-prepare
            // from the registry when the current connection has none.
            let session = match alias {
                None => None,
                Some(alias) => match self.ensure_session(alias) {
                    Ok(session) => Some(session),
                    Err(step) => {
                        last = self.classify(step, attempt as u32, alias)?;
                        continue;
                    }
                },
            };
            let line = build(session.as_deref());
            match self.send_recv(&line) {
                Ok(value) => return Ok(value),
                Err(step) => {
                    last = self.classify(step, attempt as u32, alias.unwrap_or(""))?;
                    continue;
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.config.max_attempts.max(1),
            last,
        })
    }

    /// Turns one failed step into either a fatal [`ClientError`] or an
    /// absorbed failure (returned as the retry-cause description),
    /// applying the recovery side effects — dropping the connection,
    /// forgetting the session, sleeping the hint or the backoff.
    fn classify(&mut self, step: Step, attempt: u32, alias: &str) -> Result<String, ClientError> {
        match step {
            Step::Io(message) => {
                self.drop_conn();
                self.sleep_backoff(attempt);
                Ok(message)
            }
            Step::Wire {
                code,
                message,
                retry_after_ms,
            } => match code.as_str() {
                // Not executed: honor the server's hint and replay.
                "overloaded" => {
                    let hint = retry_after_ms
                        .map(Duration::from_millis)
                        .unwrap_or_else(|| {
                            backoff_delay(
                                self.config.backoff_base,
                                self.config.backoff_cap,
                                self.config.seed,
                                attempt,
                            )
                        });
                    self.stats.hints_honored += 1;
                    std::thread::sleep(hint.min(self.config.backoff_cap));
                    Ok(format!("overloaded: {message}"))
                }
                // Expired unexecuted in the queue: replay.
                "deadline-exceeded" => {
                    self.sleep_backoff(attempt);
                    Ok(format!("deadline-exceeded: {message}"))
                }
                // The worker died mid-request and the server is closing
                // the connection: reconnect and replay.
                "internal" => {
                    self.drop_conn();
                    self.sleep_backoff(attempt);
                    Ok(format!("internal: {message}"))
                }
                // Idled out (or the server restarted behind a proxy):
                // forget the binding; the next attempt re-prepares.
                "unknown-session" => {
                    if let Some(entry) = self.sessions.get_mut(alias) {
                        entry.session = None;
                    }
                    Ok(format!("unknown-session: {message}"))
                }
                _ => Err(ClientError::Server { code, message }),
            },
        }
    }

    /// The server session for `alias`, re-`prepare`d from the registry if
    /// the current connection has none.
    fn ensure_session(&mut self, alias: &str) -> Result<String, Step> {
        let line = match self.sessions.get(alias) {
            None => {
                return Err(Step::Wire {
                    code: "bad-request".to_string(),
                    message: format!("no prepared session {alias:?}"),
                    retry_after_ms: None,
                })
            }
            Some(entry) => match &entry.session {
                Some(session) => return Ok(session.clone()),
                None => prepare_line(&entry.spec, entry.length),
            },
        };
        let value = self.send_recv(&line)?;
        let session = value
            .get("session")
            .and_then(Json::as_str)
            .ok_or_else(|| Step::Io("prepare response missing \"session\"".to_string()))?
            .to_string();
        self.stats.re_prepares += 1;
        if let Some(entry) = self.sessions.get_mut(alias) {
            entry.session = Some(session.clone());
            entry.prepared = Some(value);
        }
        Ok(session)
    }

    /// One connect attempt (handshake included). Any failure leaves the
    /// client disconnected.
    fn try_connect(&mut self) -> Result<(), String> {
        // lsc-analyze: allow(unrouted-io) reason="client-side socket: chaos injects faults at the server's FaultyStream and exercises this path via reconnects"
        let stream = TcpStream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
        let _ = stream.set_read_timeout(self.config.io_timeout);
        let _ = stream.set_write_timeout(self.config.io_timeout);
        // One full frame per write: Nagle + delayed ACK would otherwise
        // stall small request lines for tens of milliseconds.
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        self.conn = Some(Conn {
            reader: BufReader::new(read_half),
            writer: stream,
        });
        // Sessions are connection-scoped: anything bound to the previous
        // connection is gone.
        for entry in self.sessions.values_mut() {
            entry.session = None;
        }
        if self.stats.connects > 0 {
            self.stats.reconnects += 1;
        }
        self.stats.connects += 1;
        match self.send_recv(&request_line("hello", &[])) {
            Ok(_) => Ok(()),
            Err(Step::Io(message)) => {
                self.drop_conn();
                Err(format!("handshake: {message}"))
            }
            Err(Step::Wire { code, message, .. }) => {
                self.drop_conn();
                Err(format!("handshake refused [{code}]: {message}"))
            }
        }
    }

    /// One request/response round trip on the live connection. A torn
    /// frame — EOF mid-line, a line with no trailing newline, or JSON
    /// that does not parse — is a transport failure, never a value.
    fn send_recv(&mut self, line: &str) -> Result<Json, Step> {
        let conn = self
            .conn
            .as_mut()
            .ok_or_else(|| Step::Io("not connected".to_string()))?;
        writeln!(conn.writer, "{line}")
            .and_then(|()| conn.writer.flush())
            .map_err(|e| Step::Io(format!("write: {e}")))?;
        let mut response = String::new();
        match conn.reader.read_line(&mut response) {
            Err(e) => return Err(Step::Io(format!("read: {e}"))),
            Ok(0) => return Err(Step::Io("connection closed by server".to_string())),
            Ok(_) => {}
        }
        if !response.ends_with('\n') {
            self.stats.torn_frames += 1;
            return Err(Step::Io(
                "torn frame: response line not terminated".to_string(),
            ));
        }
        let value = match json::parse(response.trim_end()) {
            Ok(value) => value,
            Err(e) => {
                self.stats.torn_frames += 1;
                return Err(Step::Io(format!("torn frame: {e}")));
            }
        };
        if value.get("ok") == Some(&Json::Bool(true)) {
            return Ok(value);
        }
        Err(Step::Wire {
            code: value
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("internal")
                .to_string(),
            message: value
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_string(),
            retry_after_ms: value.get("retry_after_ms").and_then(Json::as_u64),
        })
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        for entry in self.sessions.values_mut() {
            entry.session = None;
        }
    }

    fn sleep_backoff(&self, attempt: u32) {
        std::thread::sleep(backoff_delay(
            self.config.backoff_base,
            self.config.backoff_cap,
            self.config.seed,
            attempt,
        ));
    }
}

/// Builds one request line with proper JSON escaping.
fn request_line(op: &str, fields: &[(&str, Json)]) -> String {
    let mut members = Vec::with_capacity(fields.len() + 2);
    members.push(("op".to_string(), Json::str(op)));
    members.push(("proto".to_string(), Json::num(PROTOCOL_VERSION as f64)));
    members.extend(fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
    Json::Obj(members).encode()
}

/// The `prepare` line for a registered spec.
fn prepare_line(spec: &InstanceSpec, length: usize) -> String {
    let mut fields: Vec<(&str, Json)> = Vec::with_capacity(3);
    match spec {
        InstanceSpec::Regex { pattern, alphabet } => {
            fields.push(("regex", Json::str(pattern.clone())));
            if let Some(alphabet) = alphabet {
                fields.push(("alphabet", Json::str(alphabet.clone())));
            }
        }
        InstanceSpec::NfaText(text) => fields.push(("nfa_text", Json::str(text.clone()))),
    }
    fields.push(("length", Json::num(length as f64)));
    request_line("prepare", &fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{FaultConfig, FaultPlan, ServeConfig, Server};

    fn spawn() -> (Server, crate::serve::TcpServerHandle) {
        let server = Server::new(ServeConfig::default()).unwrap();
        let handle = server.spawn_tcp("127.0.0.1:0").unwrap();
        (server, handle)
    }

    fn quick_config() -> ClientConfig {
        ClientConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            ..ClientConfig::default()
        }
    }

    #[test]
    fn round_trip_and_cursor_pagination() {
        let (server, handle) = spawn();
        let mut client = Client::new(handle.addr().to_string(), quick_config());
        client
            .prepare(
                "job",
                InstanceSpec::Regex {
                    pattern: "(0|1)*11".to_string(),
                    alphabet: None,
                },
                5,
            )
            .unwrap();
        let count = client.count("job").unwrap();
        assert!(count.get("estimate").is_some());
        let mut words = Vec::new();
        loop {
            let page = client.enumerate_page("job", Some(3)).unwrap();
            if let Some(Json::Arr(items)) = page.get("words") {
                words.extend(items.iter().filter_map(|w| w.as_str().map(str::to_string)));
            }
            if page.get("done") == Some(&Json::Bool(true)) {
                break;
            }
        }
        assert!(!words.is_empty());
        assert!(words.iter().all(|w| w.ends_with("11")));
        client.bye();
        server.shutdown();
    }

    #[test]
    fn survives_a_server_side_session_eviction() {
        let config = ServeConfig {
            session_ttl: Duration::from_millis(150),
            ..ServeConfig::default()
        };
        let server = Server::new(config).unwrap();
        let handle = server.spawn_tcp("127.0.0.1:0").unwrap();
        let mut client = Client::new(handle.addr().to_string(), quick_config());
        client
            .prepare(
                "job",
                InstanceSpec::Regex {
                    pattern: "(0|1)*1".to_string(),
                    alphabet: None,
                },
                4,
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        // The session idled out; the client re-prepares transparently.
        let count = client.count("job").unwrap();
        assert!(count.get("estimate").is_some());
        assert!(client.stats().re_prepares >= 2);
        client.bye();
        server.shutdown();
    }

    #[test]
    fn reconnects_and_resumes_across_a_server_restart() {
        let (server, mut handle) = spawn();
        let port = handle.addr().port();
        let mut client = Client::new(format!("127.0.0.1:{port}"), quick_config());
        client
            .prepare(
                "job",
                InstanceSpec::Regex {
                    pattern: "(0|1)*101".to_string(),
                    alphabet: None,
                },
                6,
            )
            .unwrap();
        let first = client.enumerate_page("job", Some(2)).unwrap();
        // Kill the server (accept loop + pool), then restart on the port.
        handle.shutdown();
        server.shutdown();
        drop(handle);
        drop(server);
        let server = Server::new(ServeConfig::default()).unwrap();
        let _handle = server.spawn_tcp(&format!("127.0.0.1:{port}")).unwrap();
        // The next page resumes from the saved token on the new server.
        let second = client.enumerate_page("job", Some(2)).unwrap();
        assert!(client.stats().reconnects >= 1);
        assert_ne!(first.get("words"), second.get("words"));
        assert_eq!(second.get("rank").and_then(Json::as_u64), Some(4));
        client.bye();
        server.shutdown();
    }

    #[test]
    fn replay_mid_pagination_resumes_from_the_last_acknowledged_token() {
        // The resume-after-`unknown-session` audit, pinned end to end: a
        // paged enumerate under injected stream faults *and* aggressive
        // session eviction must assemble exactly the fault-free page
        // sequence — never a duplicated first page (replaying the
        // original `enumerate` instead of the last acked token), never a
        // skipped page (trusting a server-side cursor that advanced on a
        // torn reply). Every retried page is sent with an explicit
        // `resume` token captured *before* the attempt.
        let spec = || InstanceSpec::Regex {
            pattern: "(0|1)*11".to_string(),
            alphabet: None,
        };
        let paginate = |client: &mut Client, pause_every: Option<usize>| {
            client.prepare("job", spec(), 8).unwrap();
            let mut words = Vec::new();
            let mut pages = 0usize;
            loop {
                let page = client.enumerate_page("job", Some(2)).unwrap();
                if let Some(Json::Arr(items)) = page.get("words") {
                    words.extend(items.iter().filter_map(|w| w.as_str().map(str::to_string)));
                }
                pages += 1;
                if page.get("done") == Some(&Json::Bool(true)) {
                    break;
                }
                if pause_every.is_some_and(|n| pages.is_multiple_of(n)) {
                    // Outlive the server's session TTL mid-pagination so
                    // the next page replays through `unknown-session`.
                    std::thread::sleep(Duration::from_millis(220));
                }
            }
            client.bye();
            words
        };

        // Fault-free single-server reference.
        let (server, handle) = spawn();
        let mut client = Client::new(handle.addr().to_string(), quick_config());
        let expected = paginate(&mut client, None);
        assert!(expected.len() > 16, "workload too small to paginate");
        server.shutdown();

        // The same pagination under chaos-rate stream faults plus a
        // session TTL shorter than the mid-run pauses.
        let plan = FaultPlan::new(FaultConfig {
            disk_error_per_1024: 0, // no snapshots in this test
            torn_write_per_1024: 0,
            ..FaultConfig::chaos(0x7E57_0003)
        });
        let config = ServeConfig {
            session_ttl: Duration::from_millis(150),
            faults: Some(plan.clone()),
            ..ServeConfig::default()
        };
        let server = Server::new(config).unwrap();
        let handle = server.spawn_tcp("127.0.0.1:0").unwrap();
        let mut client = Client::new(
            handle.addr().to_string(),
            ClientConfig {
                max_attempts: 64,
                ..quick_config()
            },
        );
        let got = paginate(&mut client, Some(6));
        assert_eq!(expected, got, "pages duplicated or skipped under replay");
        let stats = client.stats();
        assert!(
            stats.re_prepares >= 3,
            "the eviction path never fired (re_prepares={})",
            stats.re_prepares
        );
        assert!(
            plan.stats().total() > 0,
            "no faults fired; the run was not actually under injection"
        );
        server.shutdown();
    }

    #[test]
    fn pipeline_raw_answers_each_line_in_request_order() {
        let (server, handle) = spawn();
        let mut client = Client::new(handle.addr().to_string(), quick_config());
        let responses = client
            .pipeline_raw(&[
                r#"{"op":"prepare","regex":"(0|1)*11","length":5}"#,
                r#"{"op":"count","session":"s1"}"#,
                r#"{"op":"nonsense"}"#,
                r#"{"op":"health"}"#,
            ])
            .unwrap();
        assert_eq!(responses.len(), 4);
        assert!(responses[0].get("session").is_some(), "prepare first");
        assert!(responses[1].get("estimate").is_some(), "count second");
        // Raw mode returns error responses as values, in position.
        assert_eq!(responses[2].get("ok"), Some(&Json::Bool(false)));
        assert!(responses[3].get("queued").is_some(), "health last");
        assert_eq!(client.stats().pipelined_batches, 1);
        client.bye();
        server.shutdown();
    }

    #[test]
    fn non_retryable_errors_surface_immediately() {
        let (server, handle) = spawn();
        let mut client = Client::new(handle.addr().to_string(), quick_config());
        client
            .prepare(
                "ambiguous",
                InstanceSpec::Regex {
                    pattern: "(0|1)*101(0|1)*".to_string(),
                    alphabet: None,
                },
                6,
            )
            .unwrap();
        let err = client.count_exact("ambiguous").unwrap_err();
        match err {
            ClientError::Server { code, .. } => assert_eq!(code, "not-unambiguous"),
            other => panic!("expected a server error, got {other}"),
        }
        client.bye();
        server.shutdown();
    }

    #[test]
    fn exhaustion_reports_the_last_failure() {
        // Nothing listens on this port (bound then dropped).
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let mut client = Client::new(
            format!("127.0.0.1:{port}"),
            ClientConfig {
                max_attempts: 3,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(5),
                ..ClientConfig::default()
            },
        );
        let err = client.health().unwrap_err();
        match err {
            ClientError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.contains("connect"), "{last}");
            }
            other => panic!("expected exhaustion, got {other}"),
        }
    }

    #[test]
    fn backoff_is_monotone_capped_and_deterministic() {
        let base = Duration::from_millis(5);
        let cap = Duration::from_secs(1);
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let mut prev = Duration::ZERO;
            for attempt in 0..24 {
                let d = backoff_delay(base, cap, seed, attempt);
                assert!(d >= prev, "monotone: {prev:?} then {d:?}");
                assert!(d <= cap, "capped: {d:?}");
                assert_eq!(d, backoff_delay(base, cap, seed, attempt), "deterministic");
                prev = d;
            }
            assert_eq!(prev, cap, "schedule reaches the cap");
        }
    }
}
