//! Algorithm 1: constant-delay enumeration over the unrolled DAG.
//!
//! The enumerator keeps the list of *decision points* of the current
//! start→accepting path — the DAG vertices with more than one out-edge,
//! together with the edge index taken (the paper's `list` of
//! `(q, (a, q'))` entries). Producing the next word:
//!
//! 1. retire exhausted decisions from the tail (paper step 7),
//! 2. advance the last surviving decision to its successor edge (step 8),
//! 3. replay the walk from the start, consuming stored decisions and taking
//!    the minimal edge (recording a new decision) past them (step 3).
//!
//! Every step is O(1) on a RAM, and the replay is `|output|` steps, so the
//! delay is `c·|output|`, independent of the automaton — the paper's
//! constant-delay notion. On an unambiguous automaton paths ↔ words, so words
//! are enumerated without repetition (Lemma 15); on an ambiguous one the same
//! iterator enumerates *runs* (exposed as [`ConstantDelayEnumerator::paths`]).

use std::sync::Arc;

use lsc_automata::ops::is_unambiguous;
use lsc_automata::unroll::{NodeId, UnrolledDag};
use lsc_automata::{Nfa, Symbol, Word};

use crate::count::exact::NotUnambiguousError;

/// The constant-delay enumerator (Algorithm 1). Create with
/// [`ConstantDelayEnumerator::new`] (checked, UFA-only),
/// [`ConstantDelayEnumerator::paths`] (any NFA; yields one word per *path*),
/// or [`ConstantDelayEnumerator::from_dag`] (shared preprocessing artifact).
pub struct ConstantDelayEnumerator {
    dag: Arc<UnrolledDag>,
    /// `(vertex, edge index)` for each branching vertex on the current path.
    decisions: Vec<(NodeId, usize)>,
    /// The most recently emitted word, rebuilt in place by each replay so the
    /// borrowing [`ConstantDelayEnumerator::advance`] path allocates nothing
    /// per output once the buffer has reached the word length.
    word_buf: Word,
    started: bool,
    done: bool,
    /// Abstract RAM steps spent producing the most recent output (for the
    /// delay experiment E4).
    last_delay_steps: u64,
}

impl ConstantDelayEnumerator {
    /// Preprocessing phase for an unambiguous automaton: builds the DAG of
    /// Lemma 15 in polynomial time.
    ///
    /// # Errors
    /// Rejects ambiguous automata (their path enumeration would repeat words);
    /// use [`ConstantDelayEnumerator::paths`] for run enumeration instead.
    pub fn new(nfa: &Nfa, n: usize) -> Result<Self, NotUnambiguousError> {
        if !is_unambiguous(nfa) {
            return Err(NotUnambiguousError);
        }
        Ok(Self::paths(nfa, n))
    }

    /// Path enumeration over any NFA (one output per accepting run).
    pub fn paths(nfa: &Nfa, n: usize) -> Self {
        Self::from_dag(Arc::new(UnrolledDag::build(nfa, n)))
    }

    /// Path enumeration over a pre-built (shared) unrolled DAG — the engine's
    /// warm path: the preprocessing artifact of Lemma 15 is computed once per
    /// prepared instance and every enumerator clones only the `Arc`. The
    /// iteration order and outputs are identical to
    /// [`ConstantDelayEnumerator::paths`] on the same automaton and length.
    /// Word-level (repetition-free) enumeration still requires the DAG to
    /// come from an unambiguous automaton, which the caller asserts.
    pub fn from_dag(dag: Arc<UnrolledDag>) -> Self {
        ConstantDelayEnumerator {
            dag,
            decisions: Vec::new(),
            word_buf: Word::new(),
            started: false,
            done: false,
            last_delay_steps: 0,
        }
    }

    /// Rebuilds an enumerator mid-stream from a serialized decision list —
    /// the engine's cursor-resume path (`lsc_core::engine::ResumeToken`).
    ///
    /// `decisions` must be exactly the decision list held after some word was
    /// emitted (one `(vertex, edge index)` entry per *branching* vertex on
    /// that word's path, in path order) — which is what
    /// [`ConstantDelayEnumerator::decisions`] returns. The walk is replayed
    /// once to validate the list; the returned enumerator then continues
    /// bit-identically to an uninterrupted run: its next output is the word
    /// *after* the one the decisions describe.
    ///
    /// Returns `None` if the list does not describe a complete start→accept
    /// path of the DAG (wrong instance, corrupted token, or an empty
    /// language).
    pub fn resume(dag: Arc<UnrolledDag>, decisions: Vec<(NodeId, usize)>) -> Option<Self> {
        let n = dag.word_length();
        let mut cur = dag.start()?;
        let mut ptr = 0;
        for _ in 0..n {
            let edges = dag.out_edges(cur);
            let idx = if edges.len() == 1 {
                0
            } else {
                let &(v, i) = decisions.get(ptr)?;
                if v != cur || i >= edges.len() {
                    return None;
                }
                ptr += 1;
                i
            };
            cur = edges[idx].1;
        }
        if ptr != decisions.len() {
            return None;
        }
        Some(ConstantDelayEnumerator {
            dag,
            decisions,
            word_buf: Word::new(),
            started: true,
            done: false,
            last_delay_steps: 0,
        })
    }

    /// The current decision list: one `(vertex, edge index)` entry per
    /// branching vertex on the most recently emitted word's path. Together
    /// with the DAG this pinpoints the enumeration position — it is the
    /// payload of the engine's resume tokens, fed back through
    /// [`ConstantDelayEnumerator::resume`].
    pub fn decisions(&self) -> &[(NodeId, usize)] {
        &self.decisions
    }

    /// Abstract steps spent on the most recent `next()` call. Experiment E4
    /// plots this against the automaton size to exhibit input-independence.
    pub fn last_delay_steps(&self) -> u64 {
        self.last_delay_steps
    }

    /// The underlying DAG (preprocessing output).
    pub fn dag(&self) -> &UnrolledDag {
        &self.dag
    }

    /// Replays the stored decisions from the start vertex, extending with
    /// minimal edges (recording fresh decisions) once they are exhausted.
    /// Writes the word into the reused `word_buf`.
    fn replay(&mut self) {
        let n = self.dag.word_length();
        self.word_buf.clear();
        self.word_buf.reserve(n);
        let mut cur = self.dag.start().expect("nonempty dag");
        let mut ptr = 0;
        for _ in 0..n {
            let edges = self.dag.out_edges(cur);
            // Only branching vertices appear in the decision list; single-exit
            // vertices are walked through silently.
            let idx = if edges.len() == 1 {
                0
            } else if ptr < self.decisions.len() {
                debug_assert_eq!(self.decisions[ptr].0, cur, "decisions replay in path order");
                let i = self.decisions[ptr].1;
                ptr += 1;
                i
            } else {
                self.decisions.push((cur, 0));
                ptr = self.decisions.len();
                0
            };
            let (symbol, next) = edges[idx];
            self.word_buf.push(symbol);
            cur = next;
            self.last_delay_steps += 1;
        }
    }

    /// Lending form of `next()`: advances to the next word and returns it as
    /// a borrow of the enumerator's reused buffer. After warm-up this
    /// allocates nothing per output, which is what lets cursor pages stream
    /// witnesses without a per-word `Word` materialization (the `Iterator`
    /// impl is `advance().map(<[Symbol]>::to_vec)`). The borrow is valid
    /// until the next `advance`/`next` call.
    pub fn advance(&mut self) -> Option<&[Symbol]> {
        self.last_delay_steps = 0;
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.dag.is_empty() {
                self.done = true;
                return None;
            }
            self.replay();
            return Some(&self.word_buf);
        }
        // Retire exhausted decisions (paper step 7), then advance the last one.
        loop {
            self.last_delay_steps += 1;
            match self.decisions.last_mut() {
                None => {
                    self.done = true;
                    return None;
                }
                Some((v, idx)) => {
                    if *idx + 1 < self.dag.out_edges(*v).len() {
                        *idx += 1;
                        break;
                    }
                    self.decisions.pop();
                }
            }
        }
        self.replay();
        Some(&self.word_buf)
    }

    /// The most recently emitted word (the buffer [`advance`] lends out).
    /// Meaningful only after a successful `advance`/`next`.
    ///
    /// [`advance`]: ConstantDelayEnumerator::advance
    pub fn current_word(&self) -> &[Symbol] {
        &self.word_buf
    }
}

impl Iterator for ConstantDelayEnumerator {
    type Item = Word;

    fn next(&mut self) -> Option<Word> {
        self.advance().map(<[Symbol]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::{blowup_nfa, single_word_nfa, universal_nfa};
    use lsc_automata::regex::Regex;
    use lsc_automata::{format_word, Alphabet, Nfa};

    fn figure1() -> Nfa {
        let ab = Alphabet::from_chars(&['a', 'b']);
        let mut b = Nfa::builder(ab, 7);
        b.set_initial(0);
        b.set_accepting(5);
        for (f, s, t) in [
            (0, 0, 1),
            (0, 1, 2),
            (1, 0, 3),
            (2, 1, 4),
            (2, 0, 6),
            (3, 0, 5),
            (3, 1, 5),
            (4, 0, 5),
            (6, 1, 6),
        ] {
            b.add_transition(f, s, t);
        }
        b.build()
    }

    #[test]
    fn figure1_enumeration_order() {
        // §5.3.1 walks this example: aaa, then aab, then the b-branch (bba).
        let n = figure1();
        let ab = n.alphabet().clone();
        let words: Vec<String> = ConstantDelayEnumerator::new(&n, 3)
            .unwrap()
            .map(|w| format_word(&w, &ab))
            .collect();
        assert_eq!(words, vec!["aaa", "aab", "bba"]);
    }

    #[test]
    fn enumerates_all_without_repetition() {
        let n = blowup_nfa(3);
        let len = 9;
        let words: Vec<Word> = ConstantDelayEnumerator::new(&n, len).unwrap().collect();
        let expected = crate::count::exact::count_nfa_via_determinization(&n, len);
        assert_eq!(words.len() as u64, expected.to_u64().unwrap());
        let mut dedup = words.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), words.len(), "no repetitions");
        for w in &words {
            assert!(n.accepts(w));
        }
    }

    #[test]
    fn empty_language_yields_nothing() {
        let ab = Alphabet::binary();
        let n = Regex::parse("01", &ab).unwrap().compile();
        let mut e = ConstantDelayEnumerator::new(&n, 5).unwrap();
        assert_eq!(e.next(), None);
        assert_eq!(e.next(), None, "stays exhausted");
    }

    #[test]
    fn single_word() {
        let n = single_word_nfa(6);
        let words: Vec<Word> = ConstantDelayEnumerator::new(&n, 6).unwrap().collect();
        assert_eq!(words, vec![vec![0; 6]]);
    }

    #[test]
    fn ambiguous_rejected_but_paths_work() {
        let ab = Alphabet::binary();
        let amb = Regex::parse("(0|1)*1(0|1)*", &ab).unwrap().compile();
        assert!(ConstantDelayEnumerator::new(&amb, 4).is_err());
        // Path enumeration yields one output per run: more than the word count.
        let runs = ConstantDelayEnumerator::paths(&amb, 4).count();
        assert!(runs > 15);
    }

    #[test]
    fn delay_is_linear_in_output_not_input() {
        // Same language (Σ^n) at wildly different automaton sizes: the
        // measured per-output steps must not grow with m.
        let len = 12;
        let mut delays = Vec::new();
        for copies in [1usize, 4, 8] {
            // `copies` redundant states, all equivalent to the single state of
            // the universal automaton — but only reachable ones survive, so
            // inflate with a reachable deterministic chain feeding a loop.
            let ab = Alphabet::binary();
            let mut b = Nfa::builder(ab, copies + 1);
            b.set_initial(0);
            // Build an unambiguous automaton: chain 0→1→...→copies, loop at end.
            for i in 0..copies {
                b.add_transition(i, 0, i + 1);
                b.add_transition(i, 1, i + 1);
            }
            b.add_transition(copies, 0, copies);
            b.add_transition(copies, 1, copies);
            b.set_accepting(copies);
            let n = b.build();
            let mut e = ConstantDelayEnumerator::new(&n, len).unwrap();
            let mut max_delay = 0;
            while e.next().is_some() {
                max_delay = max_delay.max(e.last_delay_steps());
            }
            delays.push(max_delay);
        }
        let spread = *delays.iter().max().unwrap() as f64 / *delays.iter().min().unwrap() as f64;
        assert!(
            spread < 1.5,
            "delay should be independent of automaton size: {delays:?}"
        );
    }

    #[test]
    fn enumeration_matches_universal_language() {
        let u = universal_nfa(Alphabet::binary());
        let words: Vec<Word> = ConstantDelayEnumerator::new(&u, 3).unwrap().collect();
        assert_eq!(words.len(), 8);
        // Lexicographic by the fixed edge order.
        assert_eq!(words[0], vec![0, 0, 0]);
        assert_eq!(words[7], vec![1, 1, 1]);
    }
}
