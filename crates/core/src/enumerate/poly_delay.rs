//! Polynomial-delay enumeration for arbitrary NFAs (Theorem 16, first part).
//!
//! The paper derives this from self-reducibility plus a polynomial-time
//! emptiness check, citing [Sch09, Thm 4.9] — the classic *flashlight* (binary
//! partition) search. Concretely: grow a prefix symbol by symbol, descending
//! into symbol `a` only if some witness extends the current prefix through `a`.
//! The viability oracle is free after preprocessing: the prefix's reachable
//! state set, intersected with the unrolled DAG's layer (which already encodes
//! "can still reach acceptance"), is nonempty iff an extension exists.
//!
//! Unlike Algorithm 1, duplicates cannot arise even on ambiguous automata — the
//! search tree is over *prefixes*, not runs — at the cost of `O(|Σ|·m²)` work
//! per symbol, i.e. polynomial (not constant) delay.

use std::sync::Arc;

use lsc_automata::unroll::UnrolledDag;
use lsc_automata::{Nfa, StateSet, Symbol, Word};

/// Flashlight enumerator over all witnesses of `(N, 0^n)`, in lexicographic
/// symbol order, without repetition, for arbitrary (ambiguous) NFAs.
pub struct PolyDelayEnumerator {
    nfa: Arc<Nfa>,
    dag: Arc<UnrolledDag>,
    /// DFS stack: `stack[t]` = (reachable-and-viable states after `prefix[..t]`,
    /// next symbol to try at depth `t`).
    stack: Vec<(StateSet, Symbol)>,
    prefix: Word,
    started: bool,
    done: bool,
    /// Abstract steps for the most recent output (experiment E5).
    last_delay_steps: u64,
}

impl PolyDelayEnumerator {
    /// Preprocessing: the unrolled DAG (viability tables).
    pub fn new(nfa: &Nfa, n: usize) -> Self {
        let dag = Arc::new(UnrolledDag::build(nfa, n));
        Self::from_parts(Arc::new(nfa.clone()), dag)
    }

    /// Enumeration over a pre-built (shared) automaton and unrolled DAG — the
    /// engine's warm path; outputs and order are identical to
    /// [`PolyDelayEnumerator::new`] on the same inputs. The DAG must be the
    /// unrolling of `nfa` at the target length.
    pub fn from_parts(nfa: Arc<Nfa>, dag: Arc<UnrolledDag>) -> Self {
        PolyDelayEnumerator {
            nfa,
            dag,
            stack: Vec::new(),
            prefix: Vec::new(),
            started: false,
            done: false,
            last_delay_steps: 0,
        }
    }

    /// Rebuilds an enumerator mid-stream, positioned exactly after `last` —
    /// the engine's cursor-resume path (`lsc_core::engine::ResumeToken`).
    ///
    /// The flashlight search's whole state after emitting a witness is a
    /// function of that witness (the per-level viable state sets, and the
    /// next-symbol pointers `last[t] + 1`), so the word alone is a complete,
    /// compact resume position. The returned enumerator's next output is the
    /// witness lexicographically after `last`, and the continued stream is
    /// bit-identical to an uninterrupted run.
    ///
    /// Returns `None` if `last` is not a witness of this instance (wrong
    /// length, wrong instance, or corrupted token).
    pub fn resume_after(nfa: Arc<Nfa>, dag: Arc<UnrolledDag>, last: &[Symbol]) -> Option<Self> {
        let n = dag.word_length();
        if last.len() != n || dag.is_empty() {
            return None;
        }
        let width = nfa.alphabet().len() as Symbol;
        let mut e = Self::from_parts(nfa, dag);
        let mut states = StateSet::new(e.nfa.num_states());
        states.insert(e.nfa.initial());
        let mut stack = Vec::with_capacity(n + 1);
        for (t, &sym) in last.iter().enumerate() {
            if sym >= width {
                return None;
            }
            stack.push((states.clone(), sym + 1));
            let next = e.viable_step(&states, sym, t + 1);
            if next.is_empty() {
                return None;
            }
            states = next;
        }
        stack.push((states, 0));
        e.stack = stack;
        e.prefix = last.to_vec();
        e.started = true;
        e.last_delay_steps = 0;
        Some(e)
    }

    /// Abstract steps spent on the most recent `next()` call.
    pub fn last_delay_steps(&self) -> u64 {
        self.last_delay_steps
    }

    /// States reachable on `symbol` from `from` that are still viable at
    /// layer `t` (i.e. appear in the pruned DAG).
    fn viable_step(&mut self, from: &StateSet, symbol: Symbol, t: usize) -> StateSet {
        let mut next = StateSet::new(self.nfa.num_states());
        for q in from.iter() {
            self.last_delay_steps += 1;
            for s in self.nfa.step(q, symbol) {
                if self.dag.node_at(t, s).is_some() {
                    next.insert(s);
                }
            }
        }
        next
    }

    /// The most recently emitted witness (the search's own `prefix` state —
    /// [`PolyDelayEnumerator::advance`] lends exactly this buffer).
    /// Meaningful only after a successful `advance`/`next`.
    pub fn current_word(&self) -> &[Symbol] {
        &self.prefix
    }

    /// Lending form of `next()`: advances to the next witness and returns it
    /// as a borrow of the search's live `prefix`. The flashlight search
    /// already maintains the emitted word in place, so this simply skips the
    /// defensive clone the `Iterator` impl adds on top. The borrow is valid
    /// until the next `advance`/`next` call.
    pub fn advance(&mut self) -> Option<&[Symbol]> {
        self.last_delay_steps = 0;
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            if self.dag.is_empty() {
                self.done = true;
                return None;
            }
            let mut init = StateSet::new(self.nfa.num_states());
            init.insert(self.nfa.initial());
            self.stack.push((init, 0));
            self.descend();
            return Some(&self.prefix);
        }
        // Pop the completed witness level, then backtrack and descend.
        self.stack.pop();
        self.prefix.pop();
        if !self.backtrack() {
            self.done = true;
            return None;
        }
        self.descend();
        Some(&self.prefix)
    }

    /// Descends greedily (smallest viable symbol first) until the prefix has
    /// full length. The witness is left in `self.prefix`. Precondition: top
    /// of stack is viable.
    fn descend(&mut self) {
        let n = self.dag.word_length();
        while self.prefix.len() < n {
            let t = self.prefix.len();
            let (states, mut sym) = self.stack.last().map(|(s, y)| (s.clone(), *y)).unwrap();
            let width = self.nfa.alphabet().len() as Symbol;
            let mut moved = false;
            while sym < width {
                self.last_delay_steps += 1;
                let next = self.viable_step(&states, sym, t + 1);
                if !next.is_empty() {
                    self.stack.last_mut().unwrap().1 = sym + 1;
                    self.stack.push((next, 0));
                    self.prefix.push(sym);
                    moved = true;
                    break;
                }
                sym += 1;
            }
            debug_assert!(
                moved,
                "a viable prefix always extends (layers are co-reachable)"
            );
            if !moved {
                break;
            }
        }
    }

    /// Backtracks to the deepest level with an untried viable symbol; returns
    /// false when the search is exhausted.
    fn backtrack(&mut self) -> bool {
        loop {
            let Some(&(ref states, sym)) = self.stack.last() else {
                return false;
            };
            let t = self.prefix.len();
            let width = self.nfa.alphabet().len() as Symbol;
            let states = states.clone();
            let mut s = sym;
            while s < width {
                self.last_delay_steps += 1;
                let next = self.viable_step(&states, s, t + 1);
                if !next.is_empty() {
                    self.stack.last_mut().unwrap().1 = s + 1;
                    self.stack.push((next, 0));
                    self.prefix.push(s);
                    return true;
                }
                s += 1;
            }
            self.stack.last_mut().unwrap().1 = width;
            self.stack.pop();
            if self.prefix.pop().is_none() {
                return false;
            }
        }
    }
}

impl Iterator for PolyDelayEnumerator {
    type Item = Word;

    fn next(&mut self) -> Option<Word> {
        self.advance().map(<[Symbol]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::exact::count_nfa_via_determinization;
    use lsc_automata::families::ambiguity_gap_nfa;
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;

    fn all_words_of(nfa: &Nfa, n: usize) -> Vec<Word> {
        PolyDelayEnumerator::new(nfa, n).collect()
    }

    #[test]
    fn enumerates_ambiguous_without_repetition() {
        let ab = Alphabet::binary();
        let amb = Regex::parse("(0|1)*1(0|1)*", &ab).unwrap().compile();
        let words = all_words_of(&amb, 5);
        assert_eq!(words.len(), 31); // 2^5 - 1
        let mut sorted = words.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 31, "no repetitions");
        assert_eq!(sorted, words, "lexicographic order");
        for w in &words {
            assert!(amb.accepts(w));
        }
    }

    #[test]
    fn matches_oracle_on_gap_family() {
        let n = ambiguity_gap_nfa(3);
        for len in 0..7 {
            let words = all_words_of(&n, len);
            let truth = count_nfa_via_determinization(&n, len);
            assert_eq!(words.len() as u64, truth.to_u64().unwrap(), "len={len}");
        }
    }

    #[test]
    fn empty_language() {
        let ab = Alphabet::binary();
        let n = Regex::parse("01", &ab).unwrap().compile();
        let mut e = PolyDelayEnumerator::new(&n, 7);
        assert_eq!(e.next(), None);
        assert_eq!(e.next(), None);
    }

    #[test]
    fn length_zero() {
        let ab = Alphabet::binary();
        let star = Regex::parse("(0|1)*", &ab).unwrap().compile();
        let words = all_words_of(&star, 0);
        assert_eq!(words, vec![Vec::<Symbol>::new()]);
    }

    #[test]
    fn delay_instrumentation_reports() {
        let ab = Alphabet::binary();
        let amb = Regex::parse("(0|1)*1", &ab).unwrap().compile();
        let mut e = PolyDelayEnumerator::new(&amb, 6);
        let mut total = 0;
        while e.next().is_some() {
            assert!(e.last_delay_steps() > 0);
            total += e.last_delay_steps();
        }
        assert!(total > 0);
    }
}
