//! Enumerating witnesses: `ENUM(R)`.
//!
//! * [`constant_delay`] — Algorithm 1: after polynomial preprocessing (the
//!   unrolled DAG of Lemma 15), outputs are produced with delay `O(|output|)`,
//!   independent of the input size — the paper's constant-delay notion
//!   (§2.3). Exact enumeration of *words* requires an unambiguous automaton.
//! * [`poly_delay`] — polynomial-delay enumeration for arbitrary NFAs, the
//!   flashlight search enabled by self-reducibility plus a polynomial-time
//!   emptiness check ([Sch09, Thm 4.9], invoked by the paper for Theorem 16).

pub mod constant_delay;
pub mod poly_delay;

pub use constant_delay::ConstantDelayEnumerator;
pub use poly_delay::PolyDelayEnumerator;
