//! The polynomial-time Las Vegas uniform generator for MEM-NFA
//! (Theorem 2 / Corollary 23).
//!
//! Preparation runs the FPRAS once (Algorithm 5), keeping every per-vertex
//! sketch. Generation then calls `Sample` at the virtual final vertex: each
//! invocation either fails (probability bounded away from 1 — at most
//! `1 − e⁻⁵` under the paper's parameters, Proposition 18) or returns a
//! witness that is *exactly* uniform over `W_{MEM-NFA}((N, 0^n))`, thanks to
//! the rejection step. Retrying drives the failure probability below any
//! target; the PLVUG definition (§2.4) requires < 1/2.

use lsc_automata::{Nfa, Word};
use rand::Rng;

use crate::fpras::{run_fpras, FprasError, FprasParams, FprasState};

/// Result of one generation request, mirroring the paper's `Σ* ∪ {⊥, fail}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenOutcome {
    /// `⊥`: the witness set is empty (never returned when a witness exists —
    /// condition 2 of the PLVUG definition).
    Empty,
    /// A uniformly drawn witness.
    Witness(Word),
    /// The Las Vegas coin came up tails for every attempt.
    Fail,
}

impl GenOutcome {
    /// Extracts the witness, if any.
    pub fn witness(self) -> Option<Word> {
        match self {
            GenOutcome::Witness(w) => Some(w),
            _ => None,
        }
    }
}

/// A prepared Las Vegas uniform generator over `W_{MEM-NFA}((N, 0^n))`.
pub struct Plvug {
    state: FprasState,
    /// Attempts per [`Plvug::generate`] call; with success probability ≥ e⁻⁵
    /// per attempt, the default 256 pushes failure below 2⁻²... far below the
    /// PLVUG's required 1/2.
    pub retries: usize,
}

impl Plvug {
    /// Runs the preprocessing (Algorithm 5). Polynomial time; all later
    /// generation calls are comparatively cheap.
    ///
    /// # Errors
    /// Propagates FPRAS failure events (vanishing probability).
    pub fn prepare<R: Rng + ?Sized>(
        nfa: &Nfa,
        n: usize,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<Self, FprasError> {
        let state = run_fpras(nfa, n, params, rng)?;
        Ok(Plvug {
            state,
            retries: 256,
        })
    }

    /// Wraps an existing FPRAS state (sharing the work with counting).
    pub fn from_state(state: FprasState) -> Self {
        Plvug {
            state,
            retries: 256,
        }
    }

    /// The underlying sketch state.
    pub fn state(&self) -> &FprasState {
        &self.state
    }

    /// A single Las Vegas attempt — the object Corollary 23 analyzes. Returns
    /// `Empty` iff the witness set is empty, otherwise `Witness`/`Fail`.
    pub fn generate_once<R: Rng + ?Sized>(&self, rng: &mut R) -> GenOutcome {
        if self.state.is_empty_language() {
            return GenOutcome::Empty;
        }
        match self.state.sample_witness(rng) {
            Some(w) => GenOutcome::Witness(w),
            None => GenOutcome::Fail,
        }
    }

    /// Generation with retries: fails only if all [`Plvug::retries`] attempts
    /// reject. One `witness_sampler` — and with it one weight memo cache — is
    /// shared across the attempts, so rejected walks amortize the union
    /// estimates for the retries that follow.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> GenOutcome {
        if self.state.is_empty_language() {
            return GenOutcome::Empty;
        }
        let mut sampler = self.state.witness_sampler();
        for _ in 0..self.retries {
            if let Some(w) = sampler.sample(rng) {
                return GenOutcome::Witness(w);
            }
        }
        GenOutcome::Fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::ambiguity_gap_nfa;
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn empty_language_reports_bottom() {
        let ab = Alphabet::binary();
        let n = Regex::parse("01", &ab).unwrap().compile();
        let mut rng = StdRng::seed_from_u64(3);
        let g = Plvug::prepare(&n, 9, FprasParams::quick(), &mut rng).unwrap();
        assert_eq!(g.generate(&mut rng), GenOutcome::Empty);
        assert_eq!(g.generate_once(&mut rng), GenOutcome::Empty);
    }

    #[test]
    fn witnesses_are_members_and_cover_support() {
        // Ambiguous instance — the case exact samplers cannot handle.
        let ab = Alphabet::binary();
        let nfa = Regex::parse("(0|1)*1(0|1)*", &ab).unwrap().compile();
        let len = 5; // 31 witnesses
        let mut rng = StdRng::seed_from_u64(4);
        let g = Plvug::prepare(&nfa, len, FprasParams::quick(), &mut rng).unwrap();
        let mut counts: HashMap<Word, usize> = HashMap::new();
        let mut fails = 0;
        for _ in 0..4000 {
            match g.generate(&mut rng) {
                GenOutcome::Witness(w) => {
                    assert!(nfa.accepts(&w));
                    assert_eq!(w.len(), len);
                    *counts.entry(w).or_default() += 1;
                }
                GenOutcome::Fail => fails += 1,
                GenOutcome::Empty => panic!("nonempty language reported empty"),
            }
        }
        assert_eq!(fails, 0, "with retries, failures should be negligible");
        assert_eq!(counts.len(), 31, "all witnesses reachable");
        // Rough uniformity: min/max within 2x on ~129 expected per word.
        let min = *counts.values().min().unwrap() as f64;
        let max = *counts.values().max().unwrap() as f64;
        assert!(max / min < 2.0, "min {min}, max {max}");
    }

    #[test]
    fn single_attempt_failure_rate_is_moderate() {
        // Success probability per attempt is ≈ rejection_constant; with the
        // default e⁻² that is ≈ 0.135, and the PLVUG wrapper's retries push
        // overall failure toward zero. Check the single-attempt rate is in a
        // plausible band (not 0, not 1).
        let nfa = ambiguity_gap_nfa(3);
        let len = 8;
        let mut rng = StdRng::seed_from_u64(5);
        let g = Plvug::prepare(&nfa, len, FprasParams::quick(), &mut rng).unwrap();
        let mut ok = 0;
        let trials = 2000;
        for _ in 0..trials {
            if matches!(g.generate_once(&mut rng), GenOutcome::Witness(_)) {
                ok += 1;
            }
        }
        let rate = ok as f64 / trials as f64;
        assert!(rate > 0.02 && rate < 0.9, "success rate {rate}");
    }
}
