//! Statistical diagnostics for generators: the uniformity checks used by the
//! test suite and the experiment harness (E6/E7/B1).

use std::collections::HashMap;

use lsc_automata::Word;

/// Frequency counts of drawn witnesses.
#[derive(Default, Debug)]
pub struct SampleStats {
    counts: HashMap<Word, usize>,
    draws: usize,
}

impl SampleStats {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one draw.
    pub fn record(&mut self, witness: Word) {
        *self.counts.entry(witness).or_default() += 1;
        self.draws += 1;
    }

    /// Number of draws recorded.
    pub fn draws(&self) -> usize {
        self.draws
    }

    /// Number of distinct witnesses observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Pearson's chi-square statistic against the uniform distribution over a
    /// known support size (unobserved witnesses contribute their full
    /// expected count).
    ///
    /// # Panics
    /// Panics if no draws were recorded or `support` is smaller than the
    /// number of distinct observations.
    pub fn chi_square(&self, support: usize) -> f64 {
        assert!(self.draws > 0, "no draws recorded");
        assert!(
            support >= self.counts.len(),
            "support {} < {} distinct observations",
            support,
            self.counts.len()
        );
        let expected = self.draws as f64 / support as f64;
        let mut stat: f64 = self
            .counts
            .values()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        stat += (support - self.counts.len()) as f64 * expected;
        stat
    }

    /// Does the tally pass a (coarse, ~99.9%) uniformity test? Uses the
    /// normal approximation `df + 3·√(2·df)` to the chi-square quantile,
    /// adequate for the df range of these experiments.
    pub fn looks_uniform(&self, support: usize) -> bool {
        self.chi_square(support) < chi_square_threshold((support - 1) as f64)
    }

    /// An empirical estimate of the total-variation distance to uniform:
    /// `½ Σ_w |p̂(w) − 1/support|`. Biased upward for draws ≪ support; use on
    /// small supports with many draws.
    pub fn total_variation(&self, support: usize) -> f64 {
        let uniform = 1.0 / support as f64;
        let observed: f64 = self
            .counts
            .values()
            .map(|&c| (c as f64 / self.draws as f64 - uniform).abs())
            .sum();
        let unobserved = (support - self.counts.len()) as f64 * uniform;
        (observed + unobserved) / 2.0
    }
}

/// The coarse 99.9% chi-square quantile via the normal approximation.
pub fn chi_square_threshold(df: f64) -> f64 {
    df + 3.0 * (2.0 * df).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn uniform_draws_pass() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SampleStats::new();
        for _ in 0..32_000 {
            stats.record(vec![rng.gen_range(0..32u32)]);
        }
        assert_eq!(stats.draws(), 32_000);
        assert_eq!(stats.distinct(), 32);
        assert!(stats.looks_uniform(32));
        assert!(stats.total_variation(32) < 0.05);
    }

    #[test]
    fn skewed_draws_fail() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = SampleStats::new();
        for _ in 0..32_000 {
            // Value 0 drawn 4x as often as it should be.
            let v = if rng.gen_bool(0.2) {
                0
            } else {
                rng.gen_range(0..32u32)
            };
            stats.record(vec![v]);
        }
        assert!(!stats.looks_uniform(32));
        assert!(stats.total_variation(32) > 0.1);
    }

    #[test]
    fn missing_support_counts_against() {
        let mut stats = SampleStats::new();
        for i in 0..16u32 {
            for _ in 0..100 {
                stats.record(vec![i]);
            }
        }
        // Uniform over 16 but the declared support is 32: fails.
        assert!(stats.looks_uniform(16));
        assert!(!stats.looks_uniform(32));
        assert!((stats.total_variation(32) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no draws")]
    fn empty_tally_panics() {
        SampleStats::new().chi_square(4);
    }
}
