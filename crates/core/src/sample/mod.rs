//! Uniform generation of witnesses: `GEN(R)`.
//!
//! * [`ufa_exact`] — exact uniform generation for MEM-UFA in polynomial time
//!   (Theorem 5 / §5.3.3): both the paper-literal sampler that walks the
//!   self-reduction chain `ψ` recomputing counts at every step, and the
//!   equivalent (much faster) sampler over one precomputed count table.
//! * [`nfa_plvug`] — the polynomial-time Las Vegas uniform generator for
//!   MEM-NFA (Theorem 2 / Corollary 23), built on the FPRAS sketches.

pub mod diagnostics;
pub mod nfa_plvug;
pub mod ufa_exact;

pub use diagnostics::{chi_square_threshold, SampleStats};
pub use nfa_plvug::{GenOutcome, Plvug};
pub use ufa_exact::{psi_chain_sample, TableSampler};
