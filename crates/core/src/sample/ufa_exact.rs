//! Exact uniform generation for unambiguous NFAs (paper §5.3.3).
//!
//! Two equivalent implementations:
//!
//! * [`TableSampler`] — one backward count table over the unrolled DAG; each
//!   sample walks forward choosing edges with probability proportional to
//!   completion counts. Since a UFA's words correspond one-to-one to paths,
//!   path-weighted sampling is exactly uniform over `L_n(N)`.
//! * [`psi_chain_sample`] — the paper's own procedure, verbatim: at each of
//!   the `k` steps, build the derived automata `ψ((N', 0^{k'}), a)` for every
//!   symbol `a`, *recount* their witness sets with the polynomial-time
//!   counting algorithm, and pick `a` with probability `A(N_a, k'−1) / Σ_b
//!   A(N_b, k'−1)` (§5.3.3 step 2). Asymptotically slower by a factor ~`n`
//!   per sample (rebuild + recount per step); ablation B7 measures the gap.
//!
//! Both use exact big-integer arithmetic and [`lsc_arith::BigNat::uniform_below`]
//! rejection sampling, so output probabilities are *exactly* `1/|W|` — no
//! floating-point approximation anywhere.

use std::sync::Arc;

use lsc_arith::BigNat;
use lsc_automata::ops::is_unambiguous;
use lsc_automata::unroll::UnrolledDag;
use lsc_automata::{Nfa, Word};
use rand::Rng;

use crate::count::exact::{count_runs, NotUnambiguousError};
use crate::count::naive::sample_uniform_path;
use crate::self_reduce::psi;

/// Exact uniform sampler over `L_n(N)` for unambiguous `N`, driven by one
/// precomputed completion-count table.
pub struct TableSampler {
    dag: Arc<UnrolledDag>,
    completions: Arc<Vec<BigNat>>,
}

impl TableSampler {
    /// Builds the table (`O(n·|δ|)` big-number additions).
    ///
    /// # Errors
    /// Rejects ambiguous automata: path-uniform sampling would then be biased
    /// toward words with many runs — exactly the §6.1 pitfall.
    pub fn new(nfa: &Nfa, n: usize) -> Result<Self, NotUnambiguousError> {
        if !is_unambiguous(nfa) {
            return Err(NotUnambiguousError);
        }
        Ok(Self::over_paths(nfa, n))
    }

    /// Path-uniform sampler for *any* NFA (uniform over accepting runs, not
    /// words) — the primitive behind the naive estimator of §6.1.
    pub fn over_paths(nfa: &Nfa, n: usize) -> Self {
        let dag = Arc::new(UnrolledDag::build(nfa, n));
        let completions = Arc::new(dag.completion_counts());
        TableSampler { dag, completions }
    }

    /// A sampler over a pre-built (shared) DAG and completion-count table —
    /// the engine's warm path: `prepare` materializes both once, and every
    /// sampler clones only the `Arc`s. `completions` must be
    /// [`UnrolledDag::completion_counts`] of `dag`; draws are distributed (and,
    /// for a fixed rng stream, bit-for-bit) identical to
    /// [`TableSampler::over_paths`] on the same instance. Word-uniformity
    /// (rather than run-uniformity) still requires the DAG of an unambiguous
    /// automaton, which the caller asserts.
    pub fn from_parts(dag: Arc<UnrolledDag>, completions: Arc<Vec<BigNat>>) -> Self {
        debug_assert_eq!(dag.num_nodes(), completions.len());
        TableSampler { dag, completions }
    }

    /// Exact witness count `|L_n(N)|` (total paths from the start vertex).
    pub fn count(&self) -> BigNat {
        match self.dag.start() {
            None => BigNat::zero(),
            Some(s) => self.completions[s].clone(),
        }
    }

    /// Draws one uniform witness; `None` iff the witness set is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Word> {
        if self.dag.is_empty() {
            return None;
        }
        Some(sample_uniform_path(&self.dag, &self.completions, rng))
    }
}

/// The paper-literal uniform generator (§5.3.3): self-reduction chain with a
/// fresh exact count at every step. Returns `None` iff `L_n(N) = ∅`.
///
/// # Errors
/// Rejects ambiguous automata up front (the §5.3.3 analysis needs `A(N, k)` to
/// count words, which the run-counting DP only does for UFAs).
pub fn psi_chain_sample<R: Rng + ?Sized>(
    nfa: &Nfa,
    n: usize,
    rng: &mut R,
) -> Result<Option<Word>, NotUnambiguousError> {
    if !is_unambiguous(nfa) {
        return Err(NotUnambiguousError);
    }
    if count_runs(nfa, n).is_zero() {
        return Ok(None);
    }
    let width = nfa.alphabet().len() as u32;
    let mut current = nfa.clone();
    let mut word = Vec::with_capacity(n);
    for remaining in (1..=n).rev() {
        // Step 2(a)–(b): derive ψ(N', a) for every symbol and recount.
        // (ψ preserves unambiguity — §5.2, re-verified in self_reduce tests —
        // so the run DP counts words.)
        let mut derived: Vec<(u32, Nfa, BigNat)> = Vec::with_capacity(width as usize);
        let mut total = BigNat::zero();
        for a in 0..width {
            let na = psi(&current, a);
            let count = count_runs(&na, remaining - 1);
            total.add_assign_ref(&count);
            derived.push((a, na, count));
        }
        debug_assert!(!total.is_zero(), "nonempty residual language");
        // Step 2(c): pick a symbol with probability A(N_a)/Σ A(N_b), exactly.
        let mut draw = BigNat::uniform_below(&total, rng);
        let mut pick = None;
        for (a, na, count) in derived {
            match draw.checked_sub(&count) {
                Some(rest) => draw = rest,
                None => {
                    pick = Some((a, na));
                    break;
                }
            }
        }
        let (a, na) = pick.expect("counts sum to total");
        word.push(a);
        current = na;
    }
    Ok(Some(word))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::{blowup_nfa, single_word_nfa};
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Chi-square-style uniformity check: every witness observed, with counts
    /// within `tol`× of the expected mean.
    fn check_uniform(counts: &HashMap<Word, usize>, support: usize, draws: usize, tol: f64) {
        assert_eq!(counts.len(), support, "all witnesses must be reachable");
        let mean = draws as f64 / support as f64;
        for (w, &c) in counts {
            let ratio = c as f64 / mean;
            assert!(
                (1.0 - tol..1.0 + tol).contains(&ratio),
                "word {w:?} frequency off: {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn table_sampler_uniform_on_blowup() {
        let n = blowup_nfa(3);
        let len = 6;
        let sampler = TableSampler::new(&n, len).unwrap();
        let support = sampler.count().to_u64().unwrap() as usize;
        assert_eq!(support, 32);
        let mut rng = StdRng::seed_from_u64(7);
        let draws = 32_000;
        let mut counts: HashMap<Word, usize> = HashMap::new();
        for _ in 0..draws {
            let w = sampler.sample(&mut rng).unwrap();
            assert!(n.accepts(&w));
            *counts.entry(w).or_default() += 1;
        }
        check_uniform(&counts, support, draws, 0.15);
    }

    #[test]
    fn psi_chain_matches_table_distribution() {
        let ab = Alphabet::binary();
        let n = Regex::parse("(01|10|11)*", &ab).unwrap().compile();
        assert!(is_unambiguous(&n));
        let len = 4;
        let mut rng = StdRng::seed_from_u64(11);
        let table = TableSampler::new(&n, len).unwrap();
        let support = table.count().to_u64().unwrap() as usize;
        let draws = 9000;
        let mut counts_table: HashMap<Word, usize> = HashMap::new();
        let mut counts_psi: HashMap<Word, usize> = HashMap::new();
        for _ in 0..draws {
            *counts_table
                .entry(table.sample(&mut rng).unwrap())
                .or_default() += 1;
            let w = psi_chain_sample(&n, len, &mut rng).unwrap().unwrap();
            assert!(n.accepts(&w), "ψ-chain emitted non-witness {w:?}");
            *counts_psi.entry(w).or_default() += 1;
        }
        check_uniform(&counts_table, support, draws, 0.25);
        check_uniform(&counts_psi, support, draws, 0.25);
    }

    #[test]
    fn degenerate_cases() {
        let s = single_word_nfa(5);
        let mut rng = StdRng::seed_from_u64(1);
        let t = TableSampler::new(&s, 5).unwrap();
        assert_eq!(t.sample(&mut rng), Some(vec![0; 5]));
        assert_eq!(psi_chain_sample(&s, 5, &mut rng).unwrap(), Some(vec![0; 5]));
        // Empty witness set.
        let t0 = TableSampler::new(&s, 4).unwrap();
        assert_eq!(t0.sample(&mut rng), None);
        assert_eq!(psi_chain_sample(&s, 4, &mut rng).unwrap(), None);
        // Length zero: the empty word iff the initial state accepts.
        let ab = Alphabet::binary();
        let star = Regex::parse("0*", &ab).unwrap().compile();
        let tz = TableSampler::new(&star, 0).unwrap();
        assert_eq!(tz.sample(&mut rng), Some(vec![]));
        assert_eq!(psi_chain_sample(&star, 0, &mut rng).unwrap(), Some(vec![]));
    }

    #[test]
    fn ambiguous_rejected() {
        let ab = Alphabet::binary();
        let amb = Regex::parse("(0|1)*1(0|1)*", &ab).unwrap().compile();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(TableSampler::new(&amb, 4).is_err());
        assert!(psi_chain_sample(&amb, 4, &mut rng).is_err());
        // over_paths still works, uniform over runs.
        let paths = TableSampler::over_paths(&amb, 4);
        assert!(paths.sample(&mut rng).is_some());
    }
}
