//! Ambiguity-aware counting routes — the router, folded into the engine.
//!
//! The paper's theorems split cleanly: unambiguous instances get exact
//! polynomial counting (Theorem 5), everything else gets the FPRAS
//! (Theorem 22). A production system should not ask the caller to know which
//! side of the split an automaton falls on, so the engine decides at runtime,
//! spending bounded effort on the cheap exact routes before paying for
//! randomized approximation:
//!
//! 1. **Unambiguous** (`MEM-UFA`): the `#L` dynamic program of §5.3.2 —
//!    exact, polynomial, deterministic.
//! 2. **Small subset construction**: an ambiguous NFA whose determinization
//!    stays under a state cap is counted exactly on the DFA. The cap bounds
//!    the time wasted probing instances that do blow up (the `blowup`
//!    family needs `2^k` subsets by design).
//! 3. **FPRAS**: the general case — `(1 ± δ)`-approximation with
//!    probability ≥ 3/4 (Theorem 22).
//!
//! This module holds the route vocabulary and the one-shot entry point. The
//! decision machinery lives on [`PreparedInstance`], where the ambiguity
//! check, the determinization probe, and the per-route tables are all cached
//! — so under the engine a routing decision is made once per instance, not
//! re-probed per request as the original standalone `count::router` did.

use lsc_arith::{BigFloat, BigNat};
use lsc_automata::ops::AmbiguityDegree;
use lsc_automata::Nfa;
use rand::Rng;

use crate::engine::prepared::PreparedInstance;
use crate::fpras::{FprasError, FprasParams};

/// Which counting algorithm the router selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CountRoute {
    /// The automaton is unambiguous: the exact `#L` dynamic program (§5.3.2).
    ExactUnambiguous,
    /// The subset construction stayed under the cap: exact DFA counting.
    ExactDeterminized {
        /// States of the determinized automaton.
        dfa_states: usize,
    },
    /// General case: the #NFA FPRAS (Theorem 22).
    Fpras,
}

/// Router tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Abort determinization past this many subsets (route 2). `0` disables
    /// the determinization probe entirely.
    pub determinization_cap: usize,
    /// FPRAS parameters for route 3.
    pub fpras: FprasParams,
    /// Also classify the automaton in the Weber–Seidl hierarchy (an extra
    /// `O(m²)`–`O(m³)` diagnostic; disable for very large automata).
    pub classify_ambiguity: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            determinization_cap: 4096,
            fpras: FprasParams::quick(),
            classify_ambiguity: true,
        }
    }
}

/// The routed count: provenance plus the number itself.
#[derive(Clone, Debug)]
pub struct RoutedCount {
    /// The algorithm that produced the answer.
    pub route: CountRoute,
    /// Weber–Seidl classification, if requested in [`RouterConfig`].
    pub degree: Option<AmbiguityDegree>,
    /// The exact count, when an exact route fired.
    pub exact: Option<BigNat>,
    /// The count as a `BigFloat`: exact (up to float conversion) on exact
    /// routes, the FPRAS estimate otherwise.
    pub estimate: BigFloat,
}

impl RoutedCount {
    /// True iff the reported number is exact rather than an estimate.
    pub fn is_exact(&self) -> bool {
        self.exact.is_some()
    }
}

/// Counts `|L_n(N)|`, choosing the cheapest sound algorithm — the one-shot
/// entry point, compiling a transient [`PreparedInstance`] per call. For
/// repeated queries, hold the instance (or go through
/// [`crate::engine::Engine`]) so the classification and tables are reused.
///
/// # Errors
/// Propagates [`FprasError`] when the FPRAS route fires and its (vanishing
/// probability) internal failure events occur; exact routes cannot fail.
pub fn count_routed<R: Rng + ?Sized>(
    nfa: &Nfa,
    n: usize,
    config: &RouterConfig,
    rng: &mut R,
) -> Result<RoutedCount, FprasError> {
    PreparedInstance::new(nfa.clone(), n).count_routed(config, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::exact::count_nfa_via_determinization;
    use lsc_automata::families::{ambiguity_gap_nfa, blowup_nfa, universal_nfa};
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(929)
    }

    #[test]
    fn unambiguous_goes_exact() {
        let n = blowup_nfa(6);
        let r = count_routed(&n, 14, &RouterConfig::default(), &mut rng()).unwrap();
        assert_eq!(r.route, CountRoute::ExactUnambiguous);
        assert_eq!(r.degree, Some(AmbiguityDegree::Unambiguous));
        assert_eq!(r.exact.unwrap(), count_nfa_via_determinization(&n, 14));
    }

    #[test]
    fn small_ambiguous_goes_determinized() {
        // a*a*-style ambiguity with a tiny DFA: route 2 fires.
        let ab = Alphabet::from_chars(&['a', 'b']);
        let n = Regex::parse("(a|b)*a(a|b)*", &ab).unwrap().compile();
        let r = count_routed(&n, 10, &RouterConfig::default(), &mut rng()).unwrap();
        match r.route {
            CountRoute::ExactDeterminized { dfa_states } => assert!(dfa_states <= 8),
            other => panic!("expected determinized route, got {other:?}"),
        }
        assert_eq!(r.exact.unwrap(), count_nfa_via_determinization(&n, 10));
        assert!(!r.degree.unwrap().supports_exact_counting());
    }

    #[test]
    fn capped_blowup_falls_back_to_fpras() {
        // Ambiguous + a cap below the subset-construction size (the gap
        // family determinizes to 3 subsets): route 3 fires, and the estimate
        // is close to the exact oracle.
        let n = ambiguity_gap_nfa(5);
        let len = 12;
        let config = RouterConfig {
            determinization_cap: 2,
            ..RouterConfig::default()
        };
        let r = count_routed(&n, len, &config, &mut rng()).unwrap();
        assert_eq!(r.route, CountRoute::Fpras);
        assert_eq!(r.degree, Some(AmbiguityDegree::Exponential));
        assert!(r.exact.is_none());
        let truth = count_nfa_via_determinization(&n, len).to_f64();
        let err = (r.estimate.to_f64() - truth).abs() / truth;
        assert!(err < 0.15, "estimate {} vs truth {truth}", r.estimate);
    }

    #[test]
    fn cap_zero_disables_the_probe() {
        let ab = Alphabet::from_chars(&['a', 'b']);
        let n = Regex::parse("(a|b)*a(a|b)*", &ab).unwrap().compile();
        let config = RouterConfig {
            determinization_cap: 0,
            ..RouterConfig::default()
        };
        let r = count_routed(&n, 8, &config, &mut rng()).unwrap();
        assert_eq!(r.route, CountRoute::Fpras);
    }

    #[test]
    fn classification_can_be_skipped() {
        let n = universal_nfa(Alphabet::binary());
        let config = RouterConfig {
            classify_ambiguity: false,
            ..RouterConfig::default()
        };
        let r = count_routed(&n, 16, &config, &mut rng()).unwrap();
        assert_eq!(r.route, CountRoute::ExactUnambiguous);
        assert_eq!(r.degree, None);
        assert_eq!(r.exact.unwrap().to_f64(), 65536.0);
    }

    #[test]
    fn empty_language_routes_exact_zero() {
        let ab = Alphabet::binary();
        let n = Regex::parse("01", &ab).unwrap().compile();
        let r = count_routed(&n, 7, &RouterConfig::default(), &mut rng()).unwrap();
        assert!(r.is_exact());
        assert!(r.exact.unwrap().is_zero());
        assert!(r.estimate.is_zero());
    }

    #[test]
    fn larger_cap_reprobes_after_a_failed_small_cap() {
        // The standalone router honored each call's cap independently; the
        // cached probe must too. A failing tiny cap must not poison a later
        // default-cap call into the FPRAS route.
        let ab = Alphabet::from_chars(&['a', 'b']);
        let n = Regex::parse("(a|b)*a(a|b)*", &ab).unwrap().compile();
        let inst = PreparedInstance::new(n, 10);
        let small = RouterConfig {
            determinization_cap: 1,
            ..RouterConfig::default()
        };
        let r1 = inst.count_routed(&small, &mut rng()).unwrap();
        assert_eq!(r1.route, CountRoute::Fpras);
        let r2 = inst
            .count_routed(&RouterConfig::default(), &mut rng())
            .unwrap();
        assert!(
            matches!(r2.route, CountRoute::ExactDeterminized { .. }),
            "default cap must still find the small DFA, got {:?}",
            r2.route
        );
        // And the successful probe keeps serving smaller-but-sufficient caps.
        let mid = RouterConfig {
            determinization_cap: 16,
            ..RouterConfig::default()
        };
        let r3 = inst.count_routed(&mid, &mut rng()).unwrap();
        assert_eq!(r3.route, r2.route);
        assert_eq!(r3.exact, r2.exact);
    }

    #[test]
    fn repeated_routing_probes_once() {
        // The cached path answers identically to the one-shot path, and the
        // second call on the same instance reuses every cached piece.
        let n = ambiguity_gap_nfa(4);
        let config = RouterConfig::default();
        let inst = PreparedInstance::new(n.clone(), 10);
        let warm1 = inst.count_routed_cached(&config, 7).unwrap();
        let warm2 = inst.count_routed_cached(&config, 7).unwrap();
        assert_eq!(warm1.route, warm2.route);
        assert_eq!(warm1.estimate.to_f64(), warm2.estimate.to_f64());
        // A cold one-shot with the same seed agrees bit for bit.
        let cold = PreparedInstance::new(n, 10)
            .count_routed_cached(&config, 7)
            .unwrap();
        assert_eq!(warm1.estimate.to_f64(), cold.estimate.to_f64());
        assert_eq!(warm1.exact, cold.exact);
    }
}
