//! On-disk persistence of [`PreparedInstance`] artifacts.
//!
//! A serving process accumulates compiled instances in the engine's LRU
//! cache; a restart used to throw that work away and recompile every
//! instance on first touch. [`SnapshotStore`] closes the loop: the serving
//! layer saves each instance's expensive-to-recompute parts to a
//! fingerprint-keyed file, and a restarted engine warms its cache from the
//! directory instead of recompiling ([`SnapshotStore::warm`]).
//!
//! **What is persisted.** The automaton (in the `lsc_automata::io` text
//! format), the witness length, and whichever of the super-linear artifacts
//! have been materialized: the ambiguity classification (a product
//! construction), the Weber–Seidl degree, the completion-count table (the
//! big-integer dynamic program), the determinized word count, and — since
//! format version 2 — the cached FPRAS sketch behind its explicit
//! `(params, seed)` caching key, so a warm restart serves approximate
//! counts and Las-Vegas samples without re-running Algorithm 5. The CSR
//! unrolled DAG is *not* persisted — it is a deterministic linear-time
//! rebuild from `(N, n)` and is reconstructed eagerly at load time
//! ([`PreparedInstance::from_snapshot_parts`]) — and neither are the
//! sketch samples' reach sets, which are the same kind of deterministic
//! rebuild (`reach_of(N, w)` per persisted sample word). Every persisted
//! value is a pure function of the instance (plus, for the sketch, its
//! explicit build seed), so warm answers are bit-identical to cold ones.
//!
//! **File format** (`<fingerprint:016x>.snap`, all integers little-endian;
//! the normative spec lives in `docs/ARCHITECTURE.md` §5):
//!
//! ```text
//! magic      8 bytes   "LSCSNAP1"
//! version    u32       2 (files with version 1 — no sketch section — still load)
//! fingerprint u64      PreparedInstance::fingerprint()
//! payload_len u64
//! checksum   u64       FNV-1a(64) over the payload bytes
//! payload    ...       see `encode_payload`
//! ```
//!
//! Loading verifies the magic, the version, the checksum, the payload
//! framing, and that the decoded automaton/length reproduce the header
//! fingerprint — a flipped byte anywhere in the file is rejected with
//! [`SnapshotError::Corrupt`], never served. Writes go through a temp file
//! plus an atomic rename, so a crash mid-save cannot leave a torn snapshot
//! under the final name.
//!
//! **Crash safety.** A publish is durable, not just atomic: the temp file
//! is `fsync`ed before the rename and the directory is `fsync`ed after it,
//! so a machine crash cannot reorder the rename ahead of the data. Opening
//! a store sweeps the debris earlier crashes can leave: stale `*.tmp`
//! files (a writer died mid-save) are deleted, and `*.snap` files that
//! fail validation are *quarantined* — renamed to the first free
//! `*.snap.quarantined.N`, out of the serving path but on disk for
//! inspection (numbered, so repeated corruptions of one fingerprint keep
//! every artifact) — instead of crashing
//! the startup or being served. The sweep's findings are reported in
//! [`SweepReport`] (surfaced by the server's `health`/`stats` verbs). The
//! net recovery contract: after a crash at *any* write boundary, a
//! restarted store serves exactly the prefix of fully published snapshots,
//! and a corrupted file costs one re-preparation, never a wrong answer.
//!
//! For tests, every save consults an optional
//! [`FaultPlan`](crate::serve::faults::FaultPlan): planned disk errors
//! fail the save cleanly and planned torn writes crash it mid-temp-file —
//! exactly the debris the sweep is specified against.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use lsc_arith::{BigFloat, BigNat};
use lsc_automata::io as nfa_io;
use lsc_automata::ops::AmbiguityDegree;
use lsc_automata::{Nfa, Word};

use crate::engine::cache::Engine;
use crate::engine::prepared::PreparedInstance;
use crate::fpras::{reach_of, FprasParams, FprasState, SampleEntry, VertexData};
use crate::serve::faults::{Fault, FaultPlan, FaultSite};

const MAGIC: &[u8; 8] = b"LSCSNAP1";
const VERSION: u32 = 2;
/// The oldest format version `decode` still accepts: a v1 file is a v2 file
/// that can never carry a sketch section.
const MIN_VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

/// Why a snapshot failed to save or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file exists but is not a valid snapshot (bad magic, unknown
    /// version, checksum mismatch, truncated or trailing payload, an
    /// automaton that does not parse, or a fingerprint that does not match
    /// the decoded instance).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(reason) => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a over a byte slice — the snapshot checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What [`SnapshotStore::warm`] did: how many snapshots entered the engine
/// cache, and how many files were rejected as corrupt (rejected files are
/// left in place for inspection, never served).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmReport {
    /// Instances restored into the engine cache.
    pub loaded: usize,
    /// Snapshot files that failed validation.
    pub rejected: usize,
}

/// What the crash-recovery sweep at [`SnapshotStore::open`] found: debris
/// from interrupted writers (stale temp files, deleted) and snapshots that
/// failed validation (quarantined as `*.snap.quarantined.N`, never served).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Stale `*.tmp` files deleted (a writer crashed mid-save).
    pub tmp_removed: usize,
    /// Corrupt or truncated `*.snap` files renamed out of the serving
    /// path (`*.snap.quarantined.N` — numbered so repeated corruptions of
    /// one fingerprint never overwrite an earlier artifact).
    pub quarantined: usize,
}

/// A directory of fingerprint-keyed [`PreparedInstance`] snapshots.
///
/// The store is safe to share across threads: saves are atomic
/// (temp-file-plus-rename) and idempotent (an unchanged artifact is not
/// rewritten), and loads never trust file contents — everything is
/// checksummed and re-validated against the decoded instance.
///
/// ```
/// use std::sync::Arc;
/// use lsc_automata::families::blowup_nfa;
/// use lsc_core::engine::{Engine, PreparedInstance, SnapshotStore};
///
/// let dir = std::env::temp_dir().join("lsc-snapshot-doctest");
/// let store = SnapshotStore::open(&dir).unwrap();
///
/// // First process: compile, query, persist.
/// let inst = Arc::new(PreparedInstance::new(blowup_nfa(3), 8));
/// let count = inst.count_exact().unwrap();
/// store.save(&inst).unwrap();
///
/// // Restarted process: warm the cache from disk — no recompilation.
/// let engine = Engine::with_defaults();
/// let report = store.warm(&engine);
/// assert!(report.loaded >= 1);
/// let handle = engine.prepare_nfa(inst.nfa_arc(), 8);
/// assert!(handle.was_cached());
/// assert_eq!(handle.instance().count_exact().unwrap(), count);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct SnapshotStore {
    dir: PathBuf,
    /// Checksum of the last payload saved per fingerprint, so repeated saves
    /// of an unchanged artifact skip the filesystem entirely.
    saved: Mutex<HashMap<u64, u64>>,
    /// What the crash-recovery sweep found at open time.
    sweep: SweepReport,
    /// Planned fault injection for saves (`None` in production — a single
    /// branch, no other cost).
    faults: Option<Arc<FaultPlan>>,
}

impl SnapshotStore {
    /// Opens (creating if necessary) a snapshot directory and runs the
    /// crash-recovery sweep: stale `*.tmp` files are deleted and corrupt
    /// `*.snap` files are quarantined ([`SnapshotStore::sweep_report`]).
    ///
    /// # Errors
    /// Propagates the directory-creation failure (the sweep itself is
    /// best-effort: an unreadable entry is skipped, not fatal).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<SnapshotStore> {
        SnapshotStore::open_with_faults(dir, None)
    }

    /// [`SnapshotStore::open`] with a fault plan: planned
    /// [`Fault::DiskError`]s fail saves cleanly and planned
    /// [`Fault::TornWrite`]s crash them mid-temp-file. Production callers
    /// pass `None` (what `open` does).
    ///
    /// # Errors
    /// As [`SnapshotStore::open`].
    pub fn open_with_faults(
        dir: impl Into<PathBuf>,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<SnapshotStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let sweep = sweep_debris(&dir);
        Ok(SnapshotStore {
            dir,
            saved: Mutex::new(HashMap::new()),
            sweep,
            faults,
        })
    }

    /// The directory the store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the open-time crash-recovery sweep found.
    pub fn sweep_report(&self) -> SweepReport {
        self.sweep
    }

    /// The file a given instance fingerprint persists to.
    pub fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.snap"))
    }

    /// Persists an instance's current snapshot parts. Returns `true` if a
    /// file was written, `false` if an identical snapshot was already on
    /// disk (saving is cheap to call after every query — unchanged artifacts
    /// are detected by checksum and skipped).
    ///
    /// # Errors
    /// Propagates filesystem failures.
    pub fn save(&self, inst: &PreparedInstance) -> Result<bool, SnapshotError> {
        let payload = encode_payload(inst);
        let checksum = fnv64(&payload);
        let fingerprint = inst.fingerprint();
        if self
            .saved
            .lock()
            .expect("snapshot index poisoned")
            .get(&fingerprint)
            == Some(&checksum)
        {
            return Ok(false);
        }
        let record = |this: &Self| {
            this.saved
                .lock()
                .expect("snapshot index poisoned")
                .insert(fingerprint, checksum);
        };
        let path = self.path_for(fingerprint);
        // An identical file from a previous process also counts as saved.
        // lsc-analyze: allow(unrouted-io) reason="pre-publish dedup read; the write path below decides SnapshotWrite faults, and a failed read just re-publishes"
        if let Ok(existing) = std::fs::read(&path) {
            if existing.len() == HEADER_LEN + payload.len()
                && existing[28..36] == checksum.to_le_bytes()
            {
                record(self);
                return Ok(false);
            }
        }
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&fingerprint.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes.extend_from_slice(&payload);
        let tmp = self.dir.join(format!("{fingerprint:016x}.tmp"));
        self.publish(&tmp, &path, &bytes)?;
        // Only a durable file marks the checksum as saved — a failed write
        // above must be retried by the next save, not remembered as done.
        record(self);
        Ok(true)
    }

    /// The durable publish: write `bytes` to `tmp`, `fsync` the file,
    /// rename over `path`, `fsync` the directory — with planned faults
    /// injected ahead of (disk error) or inside (torn write) the temp
    /// write. A torn write deliberately leaves the partial `tmp` behind:
    /// that is the debris the open-time sweep is specified against.
    fn publish(&self, tmp: &Path, path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
        if let Some(plan) = &self.faults {
            if let Some(planned) = plan.decide(FaultSite::SnapshotWrite) {
                match planned.fault {
                    Fault::DiskError => {
                        return Err(SnapshotError::Io(std::io::Error::other(
                            "injected: snapshot disk write error",
                        )));
                    }
                    Fault::TornWrite => {
                        // Crash mid-temp-file: a strict prefix lands on
                        // disk under the `.tmp` name, the rename never
                        // happens.
                        let keep = (planned.aux as usize) % bytes.len().max(1);
                        let mut file = std::fs::File::create(tmp)?;
                        file.write_all(&bytes[..keep])?;
                        let _ = file.sync_all();
                        return Err(SnapshotError::Io(std::io::Error::other(
                            "injected: snapshot writer crashed mid-file",
                        )));
                    }
                    _ => {}
                }
            }
        }
        let mut file = std::fs::File::create(tmp)?;
        file.write_all(bytes)?;
        // Data must be durable before the rename can expose it, and the
        // rename must be durable before the save is reported done.
        file.sync_all()?;
        drop(file);
        std::fs::rename(tmp, path)?;
        fsync_dir(&self.dir)?;
        Ok(())
    }

    /// Loads and validates one snapshot file.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] if the file cannot be read,
    /// [`SnapshotError::Corrupt`] if any validation step fails.
    pub fn load(&self, path: &Path) -> Result<Arc<PreparedInstance>, SnapshotError> {
        // lsc-analyze: allow(unrouted-io) reason="read-side recovery path; pinned by the crash-safety corruption matrix rather than the write-side fault plan"
        Ok(decode(&std::fs::read(path)?)?.0)
    }

    /// Loads the snapshot for one fingerprint, if present.
    ///
    /// # Errors
    /// As [`SnapshotStore::load`]; a missing file is an [`SnapshotError::Io`].
    pub fn load_fingerprint(
        &self,
        fingerprint: u64,
    ) -> Result<Arc<PreparedInstance>, SnapshotError> {
        self.load(&self.path_for(fingerprint))
    }

    /// Reads the raw, fully validated bytes of one fingerprint's snapshot
    /// — the replication unit a cluster router ships to another node's
    /// store via [`SnapshotStore::import_bytes`]. The bytes are decoded
    /// end-to-end before they are handed out, so a corrupt file is
    /// rejected here rather than shipped.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] when the file is missing or unreadable,
    /// [`SnapshotError::Corrupt`] when it fails validation or its header
    /// names a different fingerprint than the caller asked for.
    pub fn export_fingerprint(&self, fingerprint: u64) -> Result<Vec<u8>, SnapshotError> {
        // lsc-analyze: allow(unrouted-io) reason="read-side export; the shipping caller decides SnapshotShip faults before invoking this, and a failed read surfaces as a failed ship"
        let bytes = std::fs::read(self.path_for(fingerprint))?;
        let (inst, _) = decode(&bytes)?;
        if inst.fingerprint() != fingerprint {
            return Err(SnapshotError::Corrupt(
                "exported file's header names a different fingerprint".to_string(),
            ));
        }
        Ok(bytes)
    }

    /// Validates shipped snapshot bytes and publishes them into this store
    /// under their own fingerprint — the same durable temp-file + rename +
    /// directory-fsync path as [`SnapshotStore::save`] (and the same
    /// [`crate::serve::faults::FaultSite::SnapshotWrite`] fault decisions),
    /// so a crash mid-import leaves sweepable debris, never a torn
    /// artifact. The store's save index is seeded so a later identical
    /// save is skipped. Returns the imported fingerprint.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] when the bytes fail validation (nothing
    /// is written), [`SnapshotError::Io`] on publish failure.
    pub fn import_bytes(&self, bytes: &[u8]) -> Result<u64, SnapshotError> {
        let (inst, checksum) = decode(bytes)?;
        let fingerprint = inst.fingerprint();
        let path = self.path_for(fingerprint);
        let tmp = self.dir.join(format!("{fingerprint:016x}.tmp"));
        self.publish(&tmp, &path, bytes)?;
        self.saved
            .lock()
            .expect("snapshot index poisoned")
            .insert(fingerprint, checksum);
        Ok(fingerprint)
    }

    /// Restores every valid snapshot in the directory into the engine's
    /// instance cache ([`Engine::insert_prepared`]), so a restarted server
    /// answers repeat traffic as cache hits instead of recompiling. Corrupt
    /// files are counted and skipped — never served, never deleted.
    pub fn warm(&self, engine: &Engine) -> WarmReport {
        self.warm_each(|inst| {
            engine.insert_prepared(inst);
        })
    }

    /// The shard-aware warm pass: like [`SnapshotStore::warm`], but each
    /// restored instance enters its *home shard* of a
    /// [`crate::engine::ShardedEngine`] ([`ShardedEngine::insert_prepared`]
    /// routes by the instance fingerprint), so a restarted sharded server
    /// holds every instance on exactly the shard its queries resolve to.
    ///
    /// [`ShardedEngine::insert_prepared`]: crate::engine::ShardedEngine::insert_prepared
    pub fn warm_sharded(&self, engine: &crate::engine::ShardedEngine) -> WarmReport {
        self.warm_each(|inst| {
            engine.insert_prepared(inst);
        })
    }

    /// Decodes, validates, and hands every snapshot in the directory to
    /// `insert` — the cache-shape-agnostic core behind both warm passes.
    fn warm_each(&self, mut insert: impl FnMut(Arc<PreparedInstance>)) -> WarmReport {
        let mut report = WarmReport::default();
        // lsc-analyze: allow(unrouted-io) reason="read-side warm pass; pinned by the crash-safety corruption matrix rather than the write-side fault plan"
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return report;
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "snap"))
            .collect();
        paths.sort();
        for path in paths {
            // lsc-analyze: allow(unrouted-io) reason="read-side warm pass; pinned by the crash-safety corruption matrix rather than the write-side fault plan"
            match std::fs::read(&path)
                .map_err(SnapshotError::from)
                .and_then(|bytes| decode(&bytes))
            {
                Ok((inst, checksum)) => {
                    // Seed the save index with the on-disk checksum (already
                    // verified by decode — no second read), so the serving
                    // layer's post-query saves skip unchanged artifacts.
                    self.saved
                        .lock()
                        .expect("snapshot index poisoned")
                        .insert(inst.fingerprint(), checksum);
                    insert(inst);
                    report.loaded += 1;
                }
                Err(_) => report.rejected += 1,
            }
        }
        report
    }
}

/// `fsync` a directory so a just-completed rename inside it is durable.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    // lsc-analyze: allow(unrouted-io) reason="called only from publish, downstream of the SnapshotWrite fault decision"
    std::fs::File::open(dir)?.sync_all()
}

/// The open-time crash-recovery sweep: delete stale `*.tmp` files and
/// rename invalid `*.snap` files to `*.snap.quarantined.N`. Best-effort —
/// an entry that cannot be read or renamed is left alone (warm passes
/// still refuse to serve it).
fn sweep_debris(dir: &Path) -> SweepReport {
    let mut report = SweepReport::default();
    // lsc-analyze: allow(unrouted-io) reason="open-time debris sweep; driven through every byte-boundary crash point by the crash-safety suite"
    let Ok(entries) = std::fs::read_dir(dir) else {
        return report;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        match path.extension().and_then(|e| e.to_str()) {
            // lsc-analyze: allow(unrouted-io) reason="open-time debris sweep; driven through every byte-boundary crash point by the crash-safety suite"
            Some("tmp") if std::fs::remove_file(&path).is_ok() => {
                report.tmp_removed += 1;
            }
            Some("snap") => {
                // lsc-analyze: allow(unrouted-io) reason="open-time debris sweep; driven through every byte-boundary crash point by the crash-safety suite"
                let valid = std::fs::read(&path)
                    .map_err(SnapshotError::from)
                    .and_then(|bytes| decode(&bytes))
                    .is_ok();
                if !valid {
                    // Numbered suffix: a second corruption of the same
                    // fingerprint must land beside the first artifact, not
                    // overwrite it.
                    // lsc-analyze: allow(unrouted-io) reason="open-time debris sweep; driven through every byte-boundary crash point by the crash-safety suite"
                    if std::fs::rename(&path, quarantine_path(&path)).is_ok() {
                        report.quarantined += 1;
                    }
                }
            }
            _ => {}
        }
    }
    report
}

/// The first free `<name>.snap.quarantined.N` (N from 1) beside `path`.
/// Each corruption of the same fingerprint gets its own numbered artifact;
/// a fixed suffix would silently overwrite the previous one.
fn quarantine_path(path: &Path) -> PathBuf {
    let base = path.as_os_str().to_os_string();
    for n in 1u64.. {
        let mut candidate = base.clone();
        candidate.push(format!(".quarantined.{n}"));
        let candidate = PathBuf::from(candidate);
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("u64 quarantine numbers cannot be exhausted")
}

// ---- payload codec ----

/// Payload flag bits.
const FLAG_UNAMBIGUOUS_KNOWN: u8 = 1 << 0;
const FLAG_UNAMBIGUOUS_VALUE: u8 = 1 << 1;
const FLAG_DEGREE: u8 = 1 << 2;
const FLAG_COMPLETIONS: u8 = 1 << 3;
const FLAG_DET_COUNT: u8 = 1 << 4;
/// Version-2 section: the cached FPRAS sketch plus its `(params, seed)` key.
const FLAG_SKETCH: u8 = 1 << 5;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Serializes the instance's persisted parts (see the module docs for the
/// layout; all integers little-endian, byte strings `u64`-length-prefixed).
fn encode_payload(inst: &PreparedInstance) -> Vec<u8> {
    let (unambiguous, degree, completions, det_count) = inst.snapshot_parts();
    let sketch = inst.sketch_snapshot();
    let mut out = Vec::new();
    put_u64(&mut out, inst.length() as u64);
    put_bytes(&mut out, nfa_io::to_text(inst.nfa()).as_bytes());
    let mut flags = 0u8;
    if let Some(u) = unambiguous {
        flags |= FLAG_UNAMBIGUOUS_KNOWN;
        if u {
            flags |= FLAG_UNAMBIGUOUS_VALUE;
        }
    }
    if degree.is_some() {
        flags |= FLAG_DEGREE;
    }
    if completions.is_some() {
        flags |= FLAG_COMPLETIONS;
    }
    if det_count.is_some() {
        flags |= FLAG_DET_COUNT;
    }
    if sketch.is_some() {
        flags |= FLAG_SKETCH;
    }
    out.push(flags);
    if let Some(d) = degree {
        let (tag, poly) = match d {
            AmbiguityDegree::Unambiguous => (0u8, 0u64),
            AmbiguityDegree::Finite => (1, 0),
            AmbiguityDegree::Polynomial { degree } => (2, degree as u64),
            AmbiguityDegree::Exponential => (3, 0),
        };
        out.push(tag);
        put_u64(&mut out, poly);
    }
    if let Some(table) = completions {
        put_u64(&mut out, table.len() as u64);
        for entry in table.iter() {
            put_bytes(&mut out, &entry.to_le_bytes());
        }
    }
    if let Some(count) = det_count {
        put_bytes(&mut out, &count.to_le_bytes());
    }
    if let Some((seed, state)) = sketch {
        encode_sketch(&mut out, seed, state);
    }
    out
}

fn put_bigfloat(out: &mut Vec<u8>, v: BigFloat) {
    let (mantissa_bits, exponent) = v.to_raw_parts();
    put_u64(out, mantissa_bits);
    put_u64(out, exponent as u64);
}

/// The v2 sketch section: the `(params, seed)` caching key, the final
/// estimate, and the per-vertex table (exact flag, estimate `R(s)`, sample
/// words). Sample *reach sets* are deliberately not persisted —
/// `reach_of(N, w)` is a deterministic linear-time rebuild, recomputed at
/// load time just like the DAG itself — which keeps the section linear in
/// the sample words rather than quadratic in the automaton.
fn encode_sketch(out: &mut Vec<u8>, seed: u64, state: &FprasState) {
    let p = state.params();
    put_u64(out, seed);
    put_u64(out, p.k as u64);
    put_u64(out, p.attempts as u64);
    put_u64(out, p.rejection_constant.to_bits());
    out.push(
        u8::from(p.exact_handling)
            | (u8::from(p.recompute_membership) << 1)
            | (u8::from(p.weight_cache) << 2)
            | (u8::from(p.quadratic_estimator) << 3),
    );
    put_u64(out, p.threads as u64);
    put_bigfloat(out, state.estimate());
    let data = state.vertex_data();
    put_u64(out, data.len() as u64);
    for entry in data {
        match entry {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                out.push(u8::from(v.exact));
                put_bigfloat(out, v.r);
                put_u64(out, v.samples.len() as u64);
                for s in &v.samples {
                    put_u64(out, s.word.len() as u64);
                    for &sym in &s.word {
                        out.extend_from_slice(&sym.to_le_bytes());
                    }
                }
            }
        }
    }
}

/// A bounds-checked little-endian reader over the payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| SnapshotError::Corrupt("truncated payload".into()))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn len(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .ok()
            .filter(|&n| n <= self.bytes.len())
            .ok_or_else(|| SnapshotError::Corrupt("implausible length".into()))
    }

    fn bytes_field(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len()?;
        self.take(n)
    }

    fn bigfloat(&mut self) -> Result<BigFloat, SnapshotError> {
        let mantissa_bits = self.u64()?;
        let exponent = self.u64()? as i64;
        BigFloat::from_raw_parts(mantissa_bits, exponent)
            .ok_or_else(|| SnapshotError::Corrupt("invalid extended float".into()))
    }
}

/// Decoded-but-not-yet-attached sketch section: everything except the
/// `Arc<Nfa>`/`Arc<UnrolledDag>` backbone, which the caller grafts on once
/// the instance (and its eagerly rebuilt DAG) exists.
type SketchParts = (u64, FprasParams, BigFloat, Vec<Option<VertexData>>);

/// Parses and validates the v2 sketch section, recomputing each persisted
/// sample's reach set from the automaton (the counterpart of
/// `encode_sketch` not persisting them).
fn decode_sketch(
    r: &mut Reader<'_>,
    nfa: &Nfa,
    length: usize,
) -> Result<SketchParts, SnapshotError> {
    let corrupt = |reason: &str| SnapshotError::Corrupt(reason.to_string());
    let seed = r.u64()?;
    let k = usize::try_from(r.u64()?).map_err(|_| corrupt("implausible sketch k"))?;
    let attempts = usize::try_from(r.u64()?).map_err(|_| corrupt("implausible sketch attempts"))?;
    let rejection_constant = f64::from_bits(r.u64()?);
    if !rejection_constant.is_finite() || rejection_constant <= 0.0 {
        return Err(corrupt("invalid sketch rejection constant"));
    }
    let param_flags = r.u8()?;
    if param_flags & !0b1111 != 0 {
        return Err(corrupt("unknown sketch parameter flags"));
    }
    let threads = usize::try_from(r.u64()?).map_err(|_| corrupt("implausible sketch threads"))?;
    if threads == 0 {
        return Err(corrupt("sketch thread count must be positive"));
    }
    let params = FprasParams {
        k,
        attempts,
        rejection_constant,
        exact_handling: param_flags & 1 != 0,
        recompute_membership: param_flags & 2 != 0,
        threads,
        weight_cache: param_flags & 4 != 0,
        quadratic_estimator: param_flags & 8 != 0,
    };
    let final_r = r.bigfloat()?;
    let num_vertices = r.len()?;
    let alphabet_size = nfa.alphabet().len() as u32;
    let mut data = Vec::with_capacity(num_vertices);
    for _ in 0..num_vertices {
        match r.u8()? {
            0 => data.push(None),
            1 => {
                let exact = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(corrupt("invalid sketch exact flag")),
                };
                let estimate = r.bigfloat()?;
                let num_samples = r.len()?;
                let mut samples = Vec::with_capacity(num_samples);
                for _ in 0..num_samples {
                    let word_len = r.len()?;
                    if word_len > length {
                        return Err(corrupt("sketch sample longer than the witness length"));
                    }
                    let mut word = Word::with_capacity(word_len);
                    for chunk in r.take(word_len * 4)?.chunks_exact(4) {
                        let sym = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                        if sym >= alphabet_size {
                            return Err(corrupt("sketch sample symbol outside the alphabet"));
                        }
                        word.push(sym);
                    }
                    let reach = reach_of(nfa, &word);
                    samples.push(SampleEntry { word, reach });
                }
                data.push(Some(VertexData {
                    exact,
                    r: estimate,
                    samples,
                }));
            }
            _ => return Err(corrupt("invalid sketch vertex tag")),
        }
    }
    Ok((seed, params, final_r, data))
}

/// Decodes and fully validates one snapshot file's bytes, returning the
/// instance and the verified payload checksum.
fn decode(bytes: &[u8]) -> Result<(Arc<PreparedInstance>, u64), SnapshotError> {
    let corrupt = |reason: &str| SnapshotError::Corrupt(reason.to_string());
    if bytes.len() < HEADER_LEN {
        return Err(corrupt("file shorter than header"));
    }
    if &bytes[0..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(corrupt("unknown snapshot version"));
    }
    let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(corrupt("payload length mismatch"));
    }
    if fnv64(payload) != checksum {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader {
        bytes: payload,
        at: 0,
    };
    let length = usize::try_from(r.u64()?).map_err(|_| corrupt("implausible length"))?;
    let nfa_text =
        std::str::from_utf8(r.bytes_field()?).map_err(|_| corrupt("automaton not UTF-8"))?;
    let nfa = nfa_io::from_text(nfa_text)
        .map_err(|e| SnapshotError::Corrupt(format!("automaton does not parse: {e}")))?;
    let flags = r.u8()?;
    let unambiguous =
        (flags & FLAG_UNAMBIGUOUS_KNOWN != 0).then_some(flags & FLAG_UNAMBIGUOUS_VALUE != 0);
    let degree = if flags & FLAG_DEGREE != 0 {
        let tag = r.u8()?;
        let poly = r.u64()?;
        Some(match tag {
            0 => AmbiguityDegree::Unambiguous,
            1 => AmbiguityDegree::Finite,
            2 => AmbiguityDegree::Polynomial {
                degree: usize::try_from(poly).map_err(|_| corrupt("implausible degree"))?,
            },
            3 => AmbiguityDegree::Exponential,
            _ => return Err(corrupt("unknown ambiguity tag")),
        })
    } else {
        None
    };
    let completions = if flags & FLAG_COMPLETIONS != 0 {
        let n = r.len()?;
        let mut table = Vec::with_capacity(n);
        for _ in 0..n {
            table.push(BigNat::from_le_bytes(r.bytes_field()?));
        }
        Some(table)
    } else {
        None
    };
    let det_count = if flags & FLAG_DET_COUNT != 0 {
        Some(BigNat::from_le_bytes(r.bytes_field()?))
    } else {
        None
    };
    let sketch = if flags & FLAG_SKETCH != 0 {
        if version < 2 {
            return Err(corrupt("version-1 snapshot carries a sketch section"));
        }
        Some(decode_sketch(&mut r, &nfa, length)?)
    } else {
        None
    };
    if r.at != payload.len() {
        return Err(corrupt("trailing bytes after payload"));
    }
    // Cross-checks: the decoded instance must reproduce the header
    // fingerprint, and a persisted completion table must match the rebuilt
    // DAG's shape (the table indexes DAG vertices).
    let nfa = Arc::new(nfa);
    if PreparedInstance::instance_fingerprint(&nfa, length) != fingerprint {
        return Err(corrupt("fingerprint does not match decoded instance"));
    }
    if let Some(u) = unambiguous {
        if let Some(d) = degree {
            if (d == AmbiguityDegree::Unambiguous) != u {
                return Err(corrupt("classification flags disagree"));
            }
        }
    }
    let inst = PreparedInstance::from_snapshot_parts(
        nfa,
        length,
        unambiguous,
        degree,
        completions,
        det_count,
    );
    if let (_, _, Some(table), _) = inst.snapshot_parts() {
        if table.len() != inst.dag().num_nodes() {
            return Err(corrupt("completion table does not fit the DAG"));
        }
    }
    if let Some((seed, params, final_r, data)) = sketch {
        // The sketch table indexes DAG vertices, exactly like the
        // completion table; graft the shared automaton/DAG backbone onto
        // the decoded parts and pre-seed the instance's sketch cache under
        // its persisted `(params, seed)` key.
        if data.len() != inst.dag().num_nodes() {
            return Err(corrupt("sketch table does not fit the DAG"));
        }
        let state = FprasState::from_parts(
            inst.nfa_arc().clone(),
            inst.dag().clone(),
            params,
            data,
            final_r,
        );
        inst.seed_sketch(seed, Arc::new(state));
    }
    Ok((Arc::new(inst), checksum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::blowup_nfa;
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;

    fn temp_store(name: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!("lsc-snap-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        SnapshotStore::open(dir).unwrap()
    }

    fn warmed_instance() -> Arc<PreparedInstance> {
        let inst = Arc::new(PreparedInstance::new(blowup_nfa(3), 8));
        inst.count_exact().unwrap(); // materialize classification + table
        inst
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let store = temp_store("roundtrip");
        let cold = warmed_instance();
        assert!(store.save(&cold).unwrap());
        let warm = store.load_fingerprint(cold.fingerprint()).unwrap();
        assert_eq!(warm.fingerprint(), cold.fingerprint());
        // Pre-seeded parts survive the trip...
        let (unambiguous, _, completions, _) = warm.snapshot_parts();
        assert_eq!(unambiguous, Some(true));
        assert!(completions.is_some());
        // ...and answers are bit-identical.
        assert_eq!(warm.count_exact().unwrap(), cold.count_exact().unwrap());
        let a: Vec<_> = cold.enumerate_constant_delay().unwrap().collect();
        let b: Vec<_> = warm.enumerate_constant_delay().unwrap().collect();
        assert_eq!(a, b);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn sketch_round_trips_and_serves_bit_identical_answers() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let store = temp_store("sketch-roundtrip");
        let cold = warmed_instance();
        // k = 4 forces sampled (not just exactly-handled) vertices, so the
        // round trip covers persisted sample words and recomputed reach sets.
        let mut params = FprasParams::quick();
        params.k = 4;
        let seed = 0xABCD;
        let cold_state = cold.fpras_sketch(params, seed).unwrap();
        assert!(
            cold_state.vertex_stats().1 > 0,
            "test instance must have sampled vertices"
        );
        assert!(store.save(&cold).unwrap());

        let warm = store.load_fingerprint(cold.fingerprint()).unwrap();
        // The sketch came back pre-seeded under its persisted key: a query
        // with the same (params, seed) is served the restored state...
        let (warm_seed, _) = warm.sketch_snapshot().expect("sketch persisted");
        assert_eq!(warm_seed, seed);
        let warm_state = warm.fpras_sketch(params, seed).unwrap();
        assert!(Arc::ptr_eq(&warm_state, warm.sketch_snapshot().unwrap().1));
        // ...with a bit-identical estimate and vertex table,
        assert_eq!(
            warm_state.estimate().to_raw_parts(),
            cold_state.estimate().to_raw_parts()
        );
        assert_eq!(warm_state.vertex_stats(), cold_state.vertex_stats());
        // and bit-identical Las-Vegas draws (same sketch data, same rng).
        let draws = |state: &FprasState| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut sampler = state.witness_sampler();
            (0..8).map(|_| sampler.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draws(&warm_state), draws(&cold_state));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn version_1_snapshots_without_sketch_still_load() {
        let store = temp_store("v1-compat");
        let inst = warmed_instance(); // no sketch cached → v1-shaped payload
        store.save(&inst).unwrap();
        let path = store.path_for(inst.fingerprint());
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[8..12], VERSION.to_le_bytes());
        // Exactly what a version-1 writer produced: same payload bytes, old
        // header version (the checksum covers only the payload).
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let warm = store.load(&path).unwrap();
        assert_eq!(warm.count_exact().unwrap(), inst.count_exact().unwrap());
        assert!(warm.sketch_snapshot().is_none());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn version_1_files_cannot_carry_a_sketch_section() {
        let store = temp_store("v1-sketch");
        let inst = warmed_instance();
        inst.fpras_sketch(FprasParams::quick(), 1).unwrap();
        store.save(&inst).unwrap();
        let path = store.path_for(inst.fingerprint());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load(&path), Err(SnapshotError::Corrupt(_))));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_sketch_sections_are_rejected_and_quarantined() {
        let store = temp_store("sketch-corrupt");
        let inst = warmed_instance();
        let state = inst.fpras_sketch(FprasParams::quick(), 5).unwrap();
        store.save(&inst).unwrap();
        let path = store.path_for(inst.fingerprint());
        let good = std::fs::read(&path).unwrap();
        // Replace the persisted estimate with NaN bits and *re-seal the
        // checksum* — modeling a buggy writer rather than bit rot, so the
        // semantic float validation (not the checksum) must catch it.
        let needle = state.estimate().to_raw_parts().0.to_le_bytes();
        let pos = good
            .windows(8)
            .position(|w| w == needle)
            .expect("estimate bits present in the sketch section");
        let mut bad = good.clone();
        bad[pos..pos + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let checksum = fnv64(&bad[HEADER_LEN..]);
        bad[28..36].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(store.load(&path), Err(SnapshotError::Corrupt(_))));
        // The open-time sweep quarantines it instead of serving it.
        let reopened = SnapshotStore::open(store.dir()).unwrap();
        assert_eq!(reopened.sweep_report().quarantined, 1);
        assert!(!path.exists());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn repeated_corruptions_quarantine_under_distinct_numbered_names() {
        let store = temp_store("double-corrupt");
        let inst = warmed_instance();
        store.save(&inst).unwrap();
        let path = store.path_for(inst.fingerprint());
        let good = std::fs::read(&path).unwrap();

        // First corruption: flip a payload byte, reopen, sweep quarantines.
        let mut bad = good.clone();
        bad[HEADER_LEN] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let reopened = SnapshotStore::open(store.dir()).unwrap();
        assert_eq!(reopened.sweep_report().quarantined, 1);
        assert!(!path.exists());
        let first = PathBuf::from(format!("{}.quarantined.1", path.display()));
        assert!(first.exists(), "first artifact at .quarantined.1");

        // Second corruption of the *same fingerprint*, differently broken.
        let mut worse = good.clone();
        worse[HEADER_LEN + 1] ^= 0xFF;
        std::fs::write(&path, &worse).unwrap();
        let reopened = SnapshotStore::open(store.dir()).unwrap();
        assert_eq!(reopened.sweep_report().quarantined, 1, "this sweep's count");
        let second = PathBuf::from(format!("{}.quarantined.2", path.display()));
        assert!(
            first.exists() && second.exists(),
            "both corrupt artifacts kept on disk under distinct names"
        );
        assert_eq!(std::fs::read(&first).unwrap(), bad, "first artifact intact");
        assert_eq!(std::fs::read(&second).unwrap(), worse);
        // Quarantined files are out of the serving path: a warm pass over
        // the directory sees neither.
        let engine = Engine::with_defaults();
        assert_eq!(reopened.warm(&engine), WarmReport::default());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn export_import_ships_a_snapshot_between_stores() {
        let src = temp_store("ship-src");
        let dst = temp_store("ship-dst");
        let inst = warmed_instance();
        src.save(&inst).unwrap();
        let bytes = src.export_fingerprint(inst.fingerprint()).unwrap();
        assert_eq!(dst.import_bytes(&bytes).unwrap(), inst.fingerprint());
        // The shipped snapshot serves bit-identical answers from the
        // destination store...
        let warm = dst.load_fingerprint(inst.fingerprint()).unwrap();
        assert_eq!(warm.count_exact().unwrap(), inst.count_exact().unwrap());
        // ...and seeded the save index: an identical save is a no-op.
        assert!(!dst.save(&inst).unwrap());
        // Corrupt bytes are rejected without writing anything.
        let other = temp_store("ship-reject");
        let mut bad = bytes.clone();
        bad[HEADER_LEN] ^= 0xFF;
        assert!(matches!(
            other.import_bytes(&bad),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(!other.path_for(inst.fingerprint()).exists());
        // Exporting a missing fingerprint is an I/O error, not a panic.
        assert!(matches!(
            other.export_fingerprint(0xDEAD),
            Err(SnapshotError::Io(_))
        ));
        for store in [src, dst, other] {
            std::fs::remove_dir_all(store.dir()).ok();
        }
    }

    #[test]
    fn unchanged_artifacts_are_not_rewritten() {
        let store = temp_store("idempotent");
        let inst = warmed_instance();
        assert!(store.save(&inst).unwrap(), "first save writes");
        assert!(!store.save(&inst).unwrap(), "second save skips");
        // A fresh store over the same directory also detects the file.
        let other = SnapshotStore::open(store.dir()).unwrap();
        assert!(!other.save(&inst).unwrap());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let store = temp_store("corrupt");
        let inst = warmed_instance();
        store.save(&inst).unwrap();
        let path = store.path_for(inst.fingerprint());
        let good = std::fs::read(&path).unwrap();
        assert!(store.load(&path).is_ok());
        // Flip one byte at a time across the whole file (stride keeps the
        // test fast on big payloads; the header is covered exhaustively).
        let stride = (good.len() / 64).max(1);
        let positions =
            (0..HEADER_LEN.min(good.len())).chain((HEADER_LEN..good.len()).step_by(stride));
        for i in positions {
            let mut bad = good.clone();
            bad[i] ^= 0xFF;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                store.load(&path).is_err(),
                "byte {i} flipped but snapshot still loaded"
            );
        }
        std::fs::write(&path, &good).unwrap();
        assert!(store.load(&path).is_ok(), "restored file loads again");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn truncation_and_foreign_files_are_rejected() {
        let store = temp_store("truncate");
        let inst = warmed_instance();
        store.save(&inst).unwrap();
        let path = store.path_for(inst.fingerprint());
        let good = std::fs::read(&path).unwrap();
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(store.load(&path).is_err(), "truncated to {cut} bytes");
        }
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        assert!(store.load(&path).is_err());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn warm_restores_valid_snapshots_and_skips_corrupt_ones() {
        let store = temp_store("warm");
        let a = warmed_instance();
        let ab = Alphabet::binary();
        let b = Arc::new(PreparedInstance::new(
            Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile(),
            7,
        ));
        b.is_unambiguous();
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        // Plant one corrupt file alongside.
        std::fs::write(store.dir().join("deadbeefdeadbeef.snap"), b"garbage").unwrap();
        let engine = Engine::with_defaults();
        let report = store.warm(&engine);
        assert_eq!(
            report,
            WarmReport {
                loaded: 2,
                rejected: 1
            }
        );
        // Both instances now hit without any compile work or miss counted.
        let stats = engine.stats();
        assert_eq!((stats.misses, stats.entries), (0, 2));
        assert!(engine.prepare_nfa(a.nfa_arc(), 8).was_cached());
        assert!(engine.prepare_nfa(b.nfa_arc(), 7).was_cached());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn ambiguous_instances_round_trip_their_classification() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile();
        let cold = Arc::new(PreparedInstance::new(nfa, 7));
        cold.ambiguity(); // materialize the Weber–Seidl degree
        let store = temp_store("ambiguous");
        store.save(&cold).unwrap();
        let warm = store.load_fingerprint(cold.fingerprint()).unwrap();
        assert_eq!(warm.snapshot_parts().1, Some(cold.ambiguity()));
        assert!(!warm.is_unambiguous());
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
