//! The query engine: a fingerprint-keyed, byte-capped LRU cache of
//! [`PreparedInstance`]s plus a batched request API.
//!
//! A production deployment sees the same automata over and over (the same
//! RPQ against a slowly-changing graph, the same spanner over many
//! documents, the same DNF reduction re-counted under different lengths).
//! The engine makes the repeat traffic cheap: the first request on an
//! instance pays the preprocessing, every later request — from any thread —
//! serves from the cached artifact.
//!
//! **Determinism.** Batch responses are bit-identical at any `threads`
//! setting and across warm/cold caches:
//!
//! * instance resolution (and with it the `cache_hit` flag) happens in a
//!   single-threaded pass before the fan-out, so flags never depend on
//!   thread interleaving;
//! * each request owns its randomness (`QueryRequest::seed`), so execution
//!   order cannot leak between requests;
//! * engine-owned randomness (the cached FPRAS sketch) is seeded from
//!   `config.seed` mixed with the instance fingerprint — a pure function of
//!   the configuration and the instance, never of arrival order.
//!
//! The fan-out itself reuses the thread-chunk scheme of the FPRAS sampling
//! pass: requests are split into contiguous chunks, one scoped thread per
//! chunk, each writing into its own slice of the result vector.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lsc_arith::BigNat;
use lsc_automata::{Nfa, Word};

use crate::count::exact::NotUnambiguousError;
use crate::engine::prepared::PreparedInstance;
use crate::engine::router::{RoutedCount, RouterConfig};
use crate::fpras::FprasError;

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Routing policy for `COUNT` requests (and the FPRAS parameters used by
    /// the ambiguous `GEN` route).
    pub router: RouterConfig,
    /// Byte cap on the instance cache (approximate accounting; the
    /// most-recently-used entry is never evicted, so one oversized instance
    /// still serves).
    pub cache_bytes: usize,
    /// Worker threads for batched dispatch (responses are identical at any
    /// setting).
    pub threads: usize,
    /// Master seed for engine-owned randomness (the cached FPRAS sketches).
    pub seed: u64,
    /// Las Vegas attempts per requested witness on the ambiguous `GEN` route.
    pub retries: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            router: RouterConfig::default(),
            cache_bytes: 256 << 20,
            threads: 1,
            seed: 0x10_65C0,
            retries: 256,
        }
    }
}

/// One query against one instance. `seed` feeds the randomized kinds
/// (`Count` on the FPRAS route is seeded by the engine instead — see the
/// module docs — so equal requests give equal answers regardless of order).
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The automaton `N`.
    pub nfa: Nfa,
    /// The witness length `n`.
    pub length: usize,
    /// Which of the paper's three problems to answer.
    pub kind: QueryKind,
    /// Request-owned randomness for `Sample`.
    pub seed: u64,
}

/// The problem to answer, in the paper's `COUNT` / `ENUM` / `GEN` taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Routed `COUNT`: exact where exactness is affordable, FPRAS otherwise.
    Count,
    /// Exact `COUNT` (Theorem 5) — errors on ambiguous instances.
    CountExact,
    /// `ENUM`: constant delay on UFA instances, polynomial delay otherwise,
    /// truncated to `limit` witnesses.
    Enumerate {
        /// Maximum number of witnesses to return.
        limit: usize,
    },
    /// `GEN`: `count` uniform witnesses (exact on UFA instances, Las Vegas
    /// otherwise).
    Sample {
        /// Number of witnesses requested.
        count: usize,
    },
}

/// A successful query answer.
#[derive(Clone, Debug)]
pub enum QueryOutput {
    /// `Count`: the routed count with provenance.
    Count(RoutedCount),
    /// `CountExact`: the exact witness count.
    Exact(BigNat),
    /// `Enumerate` / `Sample`: the witnesses.
    Words(Vec<Word>),
}

/// Why a query failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// `CountExact` on an ambiguous instance.
    NotUnambiguous,
    /// An FPRAS failure event (vanishing probability) on a randomized route.
    Fpras(FprasError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotUnambiguous => NotUnambiguousError.fmt(f),
            QueryError::Fpras(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<FprasError> for QueryError {
    fn from(e: FprasError) -> Self {
        QueryError::Fpras(e)
    }
}

/// One answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The answer, or why there is none.
    pub output: Result<QueryOutput, QueryError>,
    /// Whether the instance was already cached when this request was
    /// resolved. Resolution runs in request order, so within one batch a
    /// duplicate of an earlier request reports a hit even if the batch as a
    /// whole arrived cold.
    pub cache_hit: bool,
}

/// Cache counters, for observability and the cache-behavior tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests that found their instance in the cache.
    pub hits: u64,
    /// Requests that had to insert a fresh instance.
    pub misses: u64,
    /// Instances evicted by the byte cap.
    pub evictions: u64,
    /// Instances currently cached.
    pub entries: usize,
    /// Approximate bytes currently cached.
    pub bytes: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct InstanceKey {
    fingerprint: u64,
    states: usize,
    transitions: usize,
    length: usize,
}

impl InstanceKey {
    fn of(nfa: &Nfa, length: usize) -> Self {
        InstanceKey {
            fingerprint: nfa.fingerprint(),
            states: nfa.num_states(),
            transitions: nfa.num_transitions(),
            length,
        }
    }
}

struct Entry {
    inst: Arc<PreparedInstance>,
    bytes: usize,
    last_used: u64,
}

/// One request's resolved instance: the shared artifact, whether it was
/// already cached, and the cache key (computed once, reused by the
/// post-execution byte refresh).
struct Resolved {
    inst: Arc<PreparedInstance>,
    cache_hit: bool,
    key: InstanceKey,
}

struct CacheInner {
    entries: HashMap<InstanceKey, Entry>,
    total_bytes: usize,
    tick: u64,
    evictions: u64,
}

/// The prepared-instance query engine. See the module docs.
pub struct Engine {
    config: EngineConfig,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                total_bytes: 0,
                tick: 0,
                evictions: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// An engine with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache counters.
    pub fn stats(&self) -> EngineStats {
        let inner = self.inner.lock().expect("engine cache poisoned");
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: inner.evictions,
            entries: inner.entries.len(),
            bytes: inner.total_bytes,
        }
    }

    /// The prepared instance for `(nfa, length)`: served from the cache when
    /// present, inserted (lazily, nothing materialized yet) otherwise.
    /// Application crates can hold the returned `Arc` directly for their own
    /// repeated-query paths.
    pub fn prepared(&self, nfa: &Nfa, length: usize) -> Arc<PreparedInstance> {
        self.lookup_or_insert(nfa, length).inst
    }

    fn lookup_or_insert(&self, nfa: &Nfa, length: usize) -> Resolved {
        let key = InstanceKey::of(nfa, length);
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let touched = inner.entries.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            // Re-measure on every touch (cheap — per-table sizes are
            // memoized) so tables materialized through a directly-held
            // `Arc` from [`Engine::prepared`] are accounted for too.
            let fresh = entry.inst.approx_bytes();
            let old = std::mem::replace(&mut entry.bytes, fresh);
            (entry.inst.clone(), fresh, old)
        });
        if let Some((inst, fresh, old)) = touched {
            inner.total_bytes = (inner.total_bytes + fresh).saturating_sub(old);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.evict_locked(&mut inner);
            return Resolved { inst, cache_hit: true, key };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let inst = Arc::new(PreparedInstance::new(nfa.clone(), length));
        let bytes = inst.approx_bytes();
        inner.total_bytes += bytes;
        inner.entries.insert(
            key,
            Entry {
                inst: inst.clone(),
                bytes,
                last_used: tick,
            },
        );
        self.evict_locked(&mut inner);
        Resolved { inst, cache_hit: false, key }
    }

    /// Re-measures the given instances (their lazy tables may have grown
    /// during execution) and evicts least-recently-used entries until the
    /// byte cap holds again. Keys come from the resolution pass — no
    /// re-fingerprinting here.
    fn refresh_bytes(&self, touched: &[Resolved]) {
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        let mut delta: isize = 0;
        for r in touched {
            let fresh = r.inst.approx_bytes();
            if let Some(entry) = inner.entries.get_mut(&r.key) {
                if Arc::ptr_eq(&entry.inst, &r.inst) {
                    delta += fresh as isize - entry.bytes as isize;
                    entry.bytes = fresh;
                }
            }
        }
        inner.total_bytes = inner.total_bytes.saturating_add_signed(delta);
        self.evict_locked(&mut inner);
    }

    fn evict_locked(&self, inner: &mut CacheInner) {
        while inner.total_bytes > self.config.cache_bytes && inner.entries.len() > 1 {
            let newest = inner
                .entries
                .values()
                .map(|e| e.last_used)
                .max()
                .expect("nonempty");
            let Some((&victim, _)) = inner
                .entries
                .iter()
                .filter(|(_, e)| e.last_used != newest)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let entry = inner.entries.remove(&victim).expect("victim present");
            inner.total_bytes -= entry.bytes;
            inner.evictions += 1;
        }
    }

    /// Engine-owned seed for an instance's cached FPRAS sketch: a pure
    /// function of the configuration and the fingerprint.
    fn sketch_seed(&self, inst: &PreparedInstance) -> u64 {
        self.config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ inst.fingerprint()
    }

    fn execute(
        &self,
        inst: &PreparedInstance,
        kind: QueryKind,
        seed: u64,
    ) -> Result<QueryOutput, QueryError> {
        match kind {
            QueryKind::Count => Ok(QueryOutput::Count(
                inst.count_routed_cached(&self.config.router, self.sketch_seed(inst))?,
            )),
            QueryKind::CountExact => inst
                .count_exact()
                .map(QueryOutput::Exact)
                .map_err(|NotUnambiguousError| QueryError::NotUnambiguous),
            QueryKind::Enumerate { limit } => {
                let words: Vec<Word> = if inst.is_unambiguous() {
                    inst.enumerate_constant_delay()
                        .expect("checked unambiguous")
                        .take(limit)
                        .collect()
                } else {
                    inst.enumerate().take(limit).collect()
                };
                Ok(QueryOutput::Words(words))
            }
            QueryKind::Sample { count } => Ok(QueryOutput::Words(inst.sample_witnesses(
                count,
                self.config.retries,
                self.config.router.fpras,
                self.sketch_seed(inst),
                seed,
            )?)),
        }
    }

    /// Answers one request.
    pub fn query(&self, request: &QueryRequest) -> QueryResponse {
        self.query_batch(std::slice::from_ref(request))
            .pop()
            .expect("one response per request")
    }

    /// Answers a batch, fanning execution across `config.threads` workers
    /// (chunked like the FPRAS sampling pass; see the module docs for why the
    /// responses are identical at any thread count).
    pub fn query_batch(&self, requests: &[QueryRequest]) -> Vec<QueryResponse> {
        if requests.is_empty() {
            return Vec::new();
        }
        // Phase 1, single-threaded: resolve every instance (and the hit
        // flags) deterministically.
        let resolved: Vec<Resolved> = requests
            .iter()
            .map(|r| self.lookup_or_insert(&r.nfa, r.length))
            .collect();
        // Phase 2: execute, chunked across scoped threads.
        let threads = self.config.threads.clamp(1, requests.len());
        let outputs: Vec<Result<QueryOutput, QueryError>> = if threads == 1 {
            requests
                .iter()
                .zip(&resolved)
                .map(|(r, res)| self.execute(&res.inst, r.kind, r.seed))
                .collect()
        } else {
            let mut slots: Vec<Option<Result<QueryOutput, QueryError>>> =
                (0..requests.len()).map(|_| None).collect();
            let chunk = requests.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for ((reqs, insts), out) in requests
                    .chunks(chunk)
                    .zip(resolved.chunks(chunk))
                    .zip(slots.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for ((r, res), slot) in reqs.iter().zip(insts).zip(out) {
                            *slot = Some(self.execute(&res.inst, r.kind, r.seed));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("thread filled slot"))
                .collect()
        };
        // Phase 3, single-threaded: account for whatever the queries
        // materialized, and enforce the byte cap.
        self.refresh_bytes(&resolved);
        outputs
            .into_iter()
            .zip(resolved)
            .map(|(output, res)| QueryResponse { output, cache_hit: res.cache_hit })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::{ambiguity_gap_nfa, blowup_nfa};
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;

    fn exact_count_request(k: usize, n: usize) -> QueryRequest {
        QueryRequest {
            nfa: blowup_nfa(k),
            length: n,
            kind: QueryKind::CountExact,
            seed: 0,
        }
    }

    #[test]
    fn warm_requests_hit_the_cache() {
        let engine = Engine::with_defaults();
        let r = exact_count_request(4, 10);
        let cold = engine.query(&r);
        assert!(!cold.cache_hit);
        let warm = engine.query(&r);
        assert!(warm.cache_hit);
        let (Ok(QueryOutput::Exact(a)), Ok(QueryOutput::Exact(b))) = (cold.output, warm.output)
        else {
            panic!("exact counts expected");
        };
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn byte_cap_evicts_least_recently_used() {
        // A cap small enough that two warmed instances cannot coexist.
        let config = EngineConfig {
            cache_bytes: 1, // everything over budget: keep only the newest
            ..EngineConfig::default()
        };
        let engine = Engine::new(config);
        let a = exact_count_request(4, 10);
        let b = exact_count_request(5, 12);
        engine.query(&a);
        engine.query(&b); // evicts a
        assert_eq!(engine.stats().entries, 1);
        assert!(engine.stats().evictions >= 1);
        let again = engine.query(&a); // must be a fresh miss
        assert!(!again.cache_hit, "evicted instance cannot hit");
        // A generous cap keeps both.
        let engine = Engine::with_defaults();
        engine.query(&a);
        engine.query(&b);
        assert_eq!(engine.stats().entries, 2);
        assert!(engine.query(&a).cache_hit);
        assert_eq!(engine.stats().evictions, 0);
    }

    #[test]
    fn byte_accounting_tracks_materialized_tables() {
        let engine = Engine::with_defaults();
        let r = exact_count_request(6, 20);
        engine.prepared(&r.nfa, r.length); // lazy insert: base-size estimate
        let before = engine.stats().bytes;
        engine.query(&r); // materializes the DAG + completion table
        assert!(
            engine.stats().bytes > before,
            "post-query refresh must record the grown tables"
        );
    }

    #[test]
    fn directly_held_arcs_are_accounted_on_next_touch() {
        // Tables materialized through an Arc from Engine::prepared (the
        // app-crate usage path) bypass query_batch's refresh; the next cache
        // touch must pick the growth up.
        let engine = Engine::with_defaults();
        let r = exact_count_request(6, 20);
        let inst = engine.prepared(&r.nfa, r.length);
        let before = engine.stats().bytes;
        let _ = inst.count_exact().unwrap();
        let _ = engine.prepared(&r.nfa, r.length);
        assert!(
            engine.stats().bytes > before,
            "hit-path re-measure must record tables built through the Arc"
        );
    }

    #[test]
    fn batch_marks_duplicate_instances_as_hits() {
        let engine = Engine::with_defaults();
        let reqs = vec![
            exact_count_request(4, 10),
            exact_count_request(5, 10),
            exact_count_request(4, 10), // same instance as #0
        ];
        let responses = engine.query_batch(&reqs);
        assert_eq!(
            responses.iter().map(|r| r.cache_hit).collect::<Vec<_>>(),
            vec![false, false, true]
        );
    }

    #[test]
    fn all_three_problems_serve_from_one_instance() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile();
        let engine = Engine::with_defaults();
        let base = QueryRequest {
            nfa: nfa.clone(),
            length: 7,
            kind: QueryKind::Count,
            seed: 1,
        };
        let reqs = vec![
            base.clone(),
            QueryRequest { kind: QueryKind::Enumerate { limit: usize::MAX }, ..base.clone() },
            QueryRequest { kind: QueryKind::Sample { count: 5 }, seed: 2, ..base.clone() },
        ];
        let responses = engine.query_batch(&reqs);
        let Ok(QueryOutput::Count(count)) = &responses[0].output else {
            panic!("count expected")
        };
        let Ok(QueryOutput::Words(words)) = &responses[1].output else {
            panic!("words expected")
        };
        let Ok(QueryOutput::Words(samples)) = &responses[2].output else {
            panic!("samples expected")
        };
        // One instance resolved three times.
        assert_eq!(engine.stats().misses, 1);
        assert_eq!(engine.stats().hits, 2);
        if let Some(exact) = &count.exact {
            assert_eq!(words.len() as u64, exact.to_u64().unwrap());
        }
        for w in samples {
            assert!(nfa.accepts(w));
        }
    }

    #[test]
    fn exact_count_on_ambiguous_reports_error() {
        let engine = Engine::with_defaults();
        let r = QueryRequest {
            nfa: ambiguity_gap_nfa(3),
            length: 8,
            kind: QueryKind::CountExact,
            seed: 0,
        };
        assert_eq!(
            engine.query(&r).output.unwrap_err(),
            QueryError::NotUnambiguous
        );
    }
}
