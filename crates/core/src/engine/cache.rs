//! The query engine: a fingerprint-keyed, byte-capped LRU cache of
//! [`PreparedInstance`]s plus the session, cursor, and batch serving APIs.
//!
//! A production deployment sees the same automata over and over (the same
//! RPQ against a slowly-changing graph, the same spanner over many
//! documents, the same DNF reduction re-counted under different lengths).
//! The engine makes the repeat traffic cheap, in three layers:
//!
//! * **Sessions** — [`Engine::prepare`] turns any [`Queryable`] domain object
//!   into a cheap [`InstanceHandle`]: the reduction runs once per distinct
//!   domain fingerprint, the prepared artifact lives in the shared cache, and
//!   the handle is a couple of words to clone. [`QueryRequest`]s take handles
//!   (or `Arc`'d automata) — nothing on the request path deep-copies an
//!   automaton.
//! * **Typed queries** — [`Engine::count`], [`Engine::enumerate`],
//!   [`Engine::sample`] are generic over [`Queryable`] and return domain
//!   values: counts with provenance, streaming [`EnumCursor`]s (resumable via
//!   [`ResumeToken`]s), and amortized [`GenStream`]s.
//! * **Batch** — the original [`QueryRequest`] / [`QueryResponse`] API,
//!   rebuilt on top of the cursor surface and kept as the thin compatibility
//!   layer for callers that want many answers at once, with deterministic
//!   multi-threaded dispatch.
//!
//! **Determinism.** Batch responses are bit-identical at any `threads`
//! setting and across warm/cold caches:
//!
//! * instance resolution (and with it the `cache_hit` flag) happens in a
//!   single-threaded pass before the fan-out, so flags never depend on
//!   thread interleaving;
//! * each request owns its randomness (`QueryRequest::seed`), so execution
//!   order cannot leak between requests;
//! * engine-owned randomness (the cached FPRAS sketch) is seeded from
//!   `config.seed` mixed with the instance fingerprint — a pure function of
//!   the configuration and the instance, never of arrival order.
//!
//! The fan-out itself reuses the thread-chunk scheme of the FPRAS sampling
//! pass: requests are split into contiguous chunks, one scoped thread per
//! chunk, each writing into its own slice of the result vector.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lsc_arith::BigNat;
use lsc_automata::{Nfa, Word};

use crate::count::exact::NotUnambiguousError;
use crate::engine::cursor::{
    EnumCursor, GenStream, InvalidTokenError, ResumeToken, WordCursor, WordGenStream,
};
use crate::engine::prepared::PreparedInstance;
use crate::engine::queryable::Queryable;
use crate::engine::router::{RoutedCount, RouterConfig};
use crate::fpras::FprasError;

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Routing policy for `COUNT` requests (and the FPRAS parameters used by
    /// the ambiguous `GEN` route).
    pub router: RouterConfig,
    /// Byte cap on the instance cache (approximate accounting; the
    /// most-recently-used entry is never evicted, so one oversized instance
    /// still serves).
    pub cache_bytes: usize,
    /// Worker threads for batched dispatch (responses are identical at any
    /// setting).
    pub threads: usize,
    /// Master seed for engine-owned randomness (the cached FPRAS sketches).
    pub seed: u64,
    /// Las Vegas attempts per requested witness on the ambiguous `GEN` route.
    pub retries: usize,
    /// Entry cap on the domain-session memo (each entry pins one reduced
    /// automaton, which for document products scales with the document —
    /// least-recently-used sessions are evicted past the cap and simply
    /// re-run their reduction on the next `prepare`).
    pub domain_entries: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            router: RouterConfig::default(),
            cache_bytes: 256 << 20,
            threads: 1,
            seed: 0x10_65C0,
            retries: 256,
            domain_entries: 1024,
        }
    }
}

/// A cheap, clonable reference to one prepared instance in the engine: the
/// session half of the query API. Obtained from [`Engine::prepare`] (typed)
/// or [`Engine::prepare_nfa`] (raw); holding one pins the artifact in memory
/// (the cache may still evict its entry, but the handle keeps serving), and
/// requests built on a handle skip instance resolution entirely.
#[derive(Clone)]
pub struct InstanceHandle {
    inst: Arc<PreparedInstance>,
    key: InstanceKey,
    cache_hit: bool,
}

impl InstanceHandle {
    /// The prepared artifact.
    pub fn instance(&self) -> &Arc<PreparedInstance> {
        &self.inst
    }

    /// The instance fingerprint (what resume tokens bind to).
    pub fn fingerprint(&self) -> u64 {
        self.inst.fingerprint()
    }

    /// The witness length `n`.
    pub fn length(&self) -> usize {
        self.inst.length()
    }

    /// Whether the instance was already cached when the handle was prepared
    /// (the session-level analogue of [`QueryResponse::cache_hit`]).
    pub fn was_cached(&self) -> bool {
        self.cache_hit
    }
}

/// What a [`QueryRequest`] runs against. Both forms are cheap to clone —
/// the per-request deep copy of the automaton is gone by construction.
#[derive(Clone)]
pub enum QueryTarget {
    /// An automaton and witness length, resolved through the instance cache
    /// at batch time (first occurrence pays the preparation, later ones hit).
    Automaton {
        /// The automaton `N`, shared.
        nfa: Arc<Nfa>,
        /// The witness length `n`.
        length: usize,
    },
    /// A pre-resolved session handle: no cache lookup cost beyond an LRU
    /// touch, and a guaranteed hit unless the entry was evicted meanwhile.
    Handle(InstanceHandle),
}

/// One query against one instance. `seed` feeds the randomized kinds
/// (`Count` on the FPRAS route is seeded by the engine instead — see the
/// module docs — so equal requests give equal answers regardless of order).
#[derive(Clone)]
pub struct QueryRequest {
    /// The instance to query.
    pub target: QueryTarget,
    /// Which of the paper's three problems to answer.
    pub kind: QueryKind,
    /// Request-owned randomness for `Sample`.
    pub seed: u64,
}

impl QueryRequest {
    /// A request against `(nfa, length)`. Accepts `Nfa` or `Arc<Nfa>`; pass
    /// the same `Arc` across requests to share one allocation batch-wide.
    pub fn automaton(nfa: impl Into<Arc<Nfa>>, length: usize, kind: QueryKind, seed: u64) -> Self {
        QueryRequest {
            target: QueryTarget::Automaton {
                nfa: nfa.into(),
                length,
            },
            kind,
            seed,
        }
    }

    /// A request against a prepared session handle.
    pub fn on(handle: &InstanceHandle, kind: QueryKind, seed: u64) -> Self {
        QueryRequest {
            target: QueryTarget::Handle(handle.clone()),
            kind,
            seed,
        }
    }
}

/// The problem to answer, in the paper's `COUNT` / `ENUM` / `GEN` taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Routed `COUNT`: exact where exactness is affordable, FPRAS otherwise.
    Count,
    /// Exact `COUNT` (Theorem 5) — errors on ambiguous instances.
    CountExact,
    /// `ENUM`: constant delay on UFA instances, polynomial delay otherwise,
    /// truncated to `limit` witnesses. Batch answers are buffered; use
    /// [`Engine::enumerate`] / [`Engine::cursor`] for streaming and paging.
    Enumerate {
        /// Maximum number of witnesses to return.
        limit: usize,
    },
    /// `GEN`: `count` uniform witnesses (exact on UFA instances, Las Vegas
    /// otherwise). Batch answers are buffered; use [`Engine::sample`] /
    /// [`Engine::gen_stream`] for an amortized draw stream.
    Sample {
        /// Number of witnesses requested.
        count: usize,
    },
}

/// A successful query answer.
#[derive(Clone, Debug)]
pub enum QueryOutput {
    /// `Count`: the routed count with provenance.
    Count(RoutedCount),
    /// `CountExact`: the exact witness count.
    Exact(BigNat),
    /// `Enumerate` / `Sample`: the witnesses.
    Words(Vec<Word>),
}

/// Why a query failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// `CountExact` on an ambiguous instance.
    NotUnambiguous,
    /// An FPRAS failure event (vanishing probability) on a randomized route.
    Fpras(FprasError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotUnambiguous => NotUnambiguousError.fmt(f),
            QueryError::Fpras(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<FprasError> for QueryError {
    fn from(e: FprasError) -> Self {
        QueryError::Fpras(e)
    }
}

impl From<NotUnambiguousError> for QueryError {
    fn from(NotUnambiguousError: NotUnambiguousError) -> Self {
        QueryError::NotUnambiguous
    }
}

/// One answered query.
///
/// **`cache_hit` semantics.** Resolution runs single-threaded in request
/// order before the execution fan-out, and the flag records what the cache
/// held *at that request's turn*. Consequences, all deterministic:
///
/// * within one batch, a duplicate of an earlier request reports a hit even
///   if the batch as a whole arrived cold (the first occurrence inserted the
///   instance);
/// * a [`QueryTarget::Handle`] request reports a hit as long as its entry is
///   still cached — normally always, since [`Engine::prepare`] inserted it;
///   if the entry was evicted in between, the handle re-inserts its pinned
///   instance and reports a miss (no recompilation happens either way);
/// * hit/miss totals in [`EngineStats`] count resolutions, so `k` duplicate
///   requests contribute `1` miss and `k − 1` hits regardless of thread
///   count or arrival order.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The answer, or why there is none.
    pub output: Result<QueryOutput, QueryError>,
    /// Whether the instance was already cached when this request was
    /// resolved (see the type docs for the exact semantics).
    pub cache_hit: bool,
}

/// Cache counters, for observability and the cache-behavior tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests that found their instance in the cache.
    pub hits: u64,
    /// Requests that had to insert a fresh instance.
    pub misses: u64,
    /// Instances evicted by the byte cap.
    pub evictions: u64,
    /// Instances currently cached.
    pub entries: usize,
    /// Approximate bytes currently cached.
    pub bytes: usize,
    /// Domain sessions memoized (distinct `Queryable` fingerprints whose
    /// reduction has run).
    pub domains: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct InstanceKey {
    fingerprint: u64,
    states: usize,
    transitions: usize,
    length: usize,
}

impl InstanceKey {
    fn of(nfa: &Nfa, length: usize) -> Self {
        InstanceKey {
            fingerprint: nfa.fingerprint(),
            states: nfa.num_states(),
            transitions: nfa.num_transitions(),
            length,
        }
    }
}

struct Entry {
    inst: Arc<PreparedInstance>,
    bytes: usize,
    last_used: u64,
}

/// One request's resolved instance: the shared artifact, whether it was
/// already cached, and the cache key (computed once, reused by the
/// post-execution byte refresh).
struct Resolved {
    inst: Arc<PreparedInstance>,
    cache_hit: bool,
    key: InstanceKey,
}

struct CacheInner {
    entries: HashMap<InstanceKey, Entry>,
    total_bytes: usize,
    tick: u64,
    evictions: u64,
}

/// The domain-session memo behind [`Engine::prepare`]: an entry-capped LRU
/// of reduction outputs.
#[derive(Default)]
struct DomainMemo {
    entries: HashMap<u64, (Arc<Nfa>, usize, u64)>,
    tick: u64,
}

impl DomainMemo {
    /// Touches and returns a memoized reduction.
    fn get(&mut self, domain: u64) -> Option<(Arc<Nfa>, usize)> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&domain).map(|(nfa, length, used)| {
            *used = tick;
            (nfa.clone(), *length)
        })
    }

    /// Inserts a reduction, evicting least-recently-used sessions past the
    /// cap (an evicted session just re-runs its reduction next time).
    fn insert(&mut self, domain: u64, nfa: Arc<Nfa>, length: usize, cap: usize) {
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(domain, (nfa, length, tick));
        while self.entries.len() > cap.max(1) {
            let Some((&victim, _)) = self
                .entries
                // lsc-analyze: allow(nondeterministic-iteration) reason="victim choice keyed on (unique monotonic tick, domain id); min is order-independent"
                .iter()
                .min_by_key(|(&domain, (_, _, used))| (*used, domain))
            else {
                break;
            };
            self.entries.remove(&victim);
        }
    }
}

/// The prepared-instance query engine. See the module docs.
///
/// The typical flow: build one engine for the process, [`Engine::prepare`]
/// a domain object into a session handle (compiling at most once per
/// distinct instance), then serve `COUNT` / `ENUM` / `GEN` from the shared
/// artifact:
///
/// ```
/// use std::sync::Arc;
/// use lsc_automata::regex::Regex;
/// use lsc_automata::{Alphabet, Word};
/// use lsc_core::engine::Engine;
///
/// let engine = Engine::with_defaults();
/// let ab = Alphabet::binary();
/// let nfa = Arc::new(Regex::parse("(0|1)*101(0|1)*", &ab).unwrap().compile());
/// let instance = (nfa, 10usize); // the identity Queryable
///
/// // COUNT with provenance (exact here: the router determinizes).
/// let count = engine.count(&instance).unwrap();
/// assert!(count.is_exact());
///
/// // ENUM as a streaming cursor, paged across calls via a resume token.
/// let mut cursor = engine.enumerate(&instance);
/// let page: Vec<Word> = cursor.by_ref().take(5).collect();
/// let token = cursor.token();
/// let rest: Vec<Word> = engine.resume(&instance, &token).unwrap().collect();
/// assert_eq!(
///     (page.len() + rest.len()) as u64,
///     count.exact.clone().unwrap().to_u64().unwrap(),
/// );
///
/// // GEN as an amortized uniform draw stream (deterministic in its seeds).
/// let draws: Vec<Word> = engine.sample(&instance, 7).unwrap().take(3).collect();
/// assert_eq!(draws.len(), 3);
///
/// // Everything above compiled the instance exactly once.
/// assert_eq!(engine.stats().misses, 1);
/// ```
pub struct Engine {
    config: EngineConfig,
    inner: Mutex<CacheInner>,
    /// Domain-session memo: `Queryable::domain_fingerprint` → the reduction's
    /// output, so `prepare` re-runs no reduction for a known domain object.
    /// Holds the automaton (which for document/graph products scales with
    /// the data, hence the `config.domain_entries` LRU cap), never the
    /// prepared tables — eviction of the instance cache stays effective.
    domains: Mutex<DomainMemo>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                total_bytes: 0,
                tick: 0,
                evictions: 0,
            }),
            domains: Mutex::new(DomainMemo::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// An engine with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache counters.
    pub fn stats(&self) -> EngineStats {
        let inner = self.inner.lock().expect("engine cache poisoned");
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: inner.evictions,
            entries: inner.entries.len(),
            bytes: inner.total_bytes,
            domains: self
                .domains
                .lock()
                .expect("domain index poisoned")
                .entries
                .len(),
        }
    }

    // ---- sessions ----

    /// Opens (or re-opens) a session on a domain object: runs the reduction
    /// at most once per [`Queryable::domain_fingerprint`], resolves the
    /// prepared instance through the shared cache, and returns the cheap
    /// handle everything else is served from.
    pub fn prepare<Q: Queryable + ?Sized>(&self, queryable: &Q) -> InstanceHandle {
        let (nfa, length) = self.domain_instance(queryable);
        self.prepare_nfa(&nfa, length)
    }

    /// The memoized reduction of a domain object — [`Engine::prepare`]
    /// without the instance-cache resolution. The sharded resolver
    /// ([`crate::engine::ShardedEngine`]) uses this to run the reduction on
    /// the domain's home shard before routing the *instance* by its own
    /// fingerprint.
    pub fn domain_instance<Q: Queryable + ?Sized>(&self, queryable: &Q) -> (Arc<Nfa>, usize) {
        let domain = queryable.domain_fingerprint();
        let memoized = self
            .domains
            .lock()
            .expect("domain index poisoned")
            .get(domain);
        match memoized {
            Some(pair) => pair,
            None => {
                let (nfa, length) = queryable.to_instance();
                self.domains.lock().expect("domain index poisoned").insert(
                    domain,
                    nfa.clone(),
                    length,
                    self.config.domain_entries,
                );
                (nfa, length)
            }
        }
    }

    /// A session handle for a raw `(automaton, length)` instance — the
    /// identity-domain variant of [`Engine::prepare`]: served from the cache
    /// when present, inserted (lazily, nothing materialized yet) otherwise.
    pub fn prepare_nfa(&self, nfa: &Arc<Nfa>, length: usize) -> InstanceHandle {
        let resolved = self.lookup_or_insert(nfa, length);
        InstanceHandle {
            inst: resolved.inst,
            key: resolved.key,
            cache_hit: resolved.cache_hit,
        }
    }

    /// The prepared instance for `(nfa, length)` — [`Engine::prepare_nfa`]
    /// without the handle wrapper, for callers that only want the artifact.
    pub fn prepared(&self, nfa: &Arc<Nfa>, length: usize) -> Arc<PreparedInstance> {
        self.lookup_or_insert(nfa, length).inst
    }

    /// Inserts an externally constructed instance into the cache — the
    /// warm-restart hook behind [`crate::engine::SnapshotStore::warm`]. If
    /// the key is already cached, the existing artifact wins (and is
    /// returned); otherwise the given instance enters the LRU. Warm-loading
    /// is not request traffic, so neither path touches the hit/miss
    /// counters — the first *query* against a warmed instance reports a
    /// clean cache hit.
    pub fn insert_prepared(&self, inst: Arc<PreparedInstance>) -> InstanceHandle {
        let key = InstanceKey::of(inst.nfa_arc(), inst.length());
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&key) {
            entry.last_used = tick;
            return InstanceHandle {
                inst: entry.inst.clone(),
                key,
                cache_hit: true,
            };
        }
        let bytes = inst.approx_bytes();
        inner.total_bytes += bytes;
        inner.entries.insert(
            key,
            Entry {
                inst: inst.clone(),
                bytes,
                last_used: tick,
            },
        );
        self.evict_locked(&mut inner);
        InstanceHandle {
            inst,
            key,
            cache_hit: false,
        }
    }

    /// The instance fingerprints currently resident in the cache, sorted.
    /// This is the sharding layer's (and the shard tests') introspection
    /// hook: which instances live *here*.
    pub fn resident_fingerprints(&self) -> Vec<u64> {
        let inner = self.inner.lock().expect("engine cache poisoned");
        let mut fps: Vec<u64> = inner
            .entries
            // lsc-analyze: allow(nondeterministic-iteration) reason="collected set is sorted before return; iteration order cannot leak"
            .values()
            .map(|e| e.inst.fingerprint())
            .collect();
        fps.sort_unstable();
        fps
    }

    /// Removes and returns every cached instance whose fingerprint matches
    /// the predicate, in fingerprint order. The byte accounting shrinks
    /// accordingly; nothing counts as an eviction (the instances are being
    /// *moved*, not dropped — this is the shard add/drain migration hook).
    pub fn take_instances_where(
        &self,
        mut pred: impl FnMut(u64) -> bool,
    ) -> Vec<Arc<PreparedInstance>> {
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        let mut keys: Vec<InstanceKey> = inner
            .entries
            // lsc-analyze: allow(nondeterministic-iteration) reason="matched keys are sorted below and the output is sorted by fingerprint"
            .iter()
            .filter(|(_, e)| pred(e.inst.fingerprint()))
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let entry = inner.entries.remove(&key).expect("key just listed");
            inner.total_bytes = inner.total_bytes.saturating_sub(entry.bytes);
            out.push(entry.inst);
        }
        out.sort_by_key(|inst| inst.fingerprint());
        out
    }

    // ---- typed queries ----

    /// Routed `COUNT` on a domain object: exact where exactness is
    /// affordable, the cached FPRAS sketch otherwise, with provenance.
    ///
    /// # Errors
    /// Propagates FPRAS failure events when the FPRAS route fires.
    pub fn count<Q: Queryable + ?Sized>(&self, queryable: &Q) -> Result<RoutedCount, QueryError> {
        let handle = self.prepare(queryable);
        let seed = self.sketch_seed(&handle.inst);
        Ok(handle.inst.count_routed_cached(&self.config.router, seed)?)
    }

    /// Exact `COUNT` on a domain object (Theorem 5, unambiguous reductions
    /// only).
    ///
    /// # Errors
    /// [`QueryError::NotUnambiguous`] on ambiguous instances.
    pub fn count_exact<Q: Queryable + ?Sized>(&self, queryable: &Q) -> Result<BigNat, QueryError> {
        Ok(self.prepare(queryable).inst.count_exact()?)
    }

    /// Streaming `ENUM` on a domain object: a typed cursor yielding decoded
    /// witnesses lazily (constant delay on unambiguous instances, polynomial
    /// otherwise), resumable across calls via [`EnumCursor::token`] and
    /// [`Engine::resume`].
    pub fn enumerate<'q, Q: Queryable + ?Sized>(&self, queryable: &'q Q) -> EnumCursor<'q, Q> {
        let handle = self.prepare(queryable);
        EnumCursor::new(queryable, WordCursor::fresh(handle.inst))
    }

    /// Reconstructs a typed cursor at a token's position; the continued
    /// stream is bit-identical to the uninterrupted one.
    ///
    /// # Errors
    /// [`InvalidTokenError`] if the token does not belong to this domain
    /// object's instance or encodes an impossible position.
    pub fn resume<'q, Q: Queryable + ?Sized>(
        &self,
        queryable: &'q Q,
        token: &ResumeToken,
    ) -> Result<EnumCursor<'q, Q>, InvalidTokenError> {
        let handle = self.prepare(queryable);
        Ok(EnumCursor::new(
            queryable,
            WordCursor::resume(handle.inst, token)?,
        ))
    }

    /// `GEN` on a domain object: an amortized uniform draw stream yielding
    /// decoded witnesses. Deterministic in `(instance, engine seed,
    /// draw_seed)`.
    ///
    /// # Errors
    /// Propagates FPRAS failure events from the (cached) sketch build on the
    /// ambiguous route.
    pub fn sample<'q, Q: Queryable + ?Sized>(
        &self,
        queryable: &'q Q,
        draw_seed: u64,
    ) -> Result<GenStream<'q, Q>, QueryError> {
        let handle = self.prepare(queryable);
        let stream = self.gen_stream(&handle, draw_seed)?;
        Ok(GenStream::new(queryable, stream))
    }

    // ---- word-level sessions (handles in, raw words out) ----

    /// A raw-word cursor over a session handle (the untyped sibling of
    /// [`Engine::enumerate`], for tools that print words directly).
    pub fn cursor(&self, handle: &InstanceHandle) -> WordCursor {
        WordCursor::fresh(handle.inst.clone())
    }

    /// Reconstructs a raw-word cursor at a token's position.
    ///
    /// # Errors
    /// [`InvalidTokenError`] if the token does not belong to the handle's
    /// instance or encodes an impossible position.
    pub fn resume_cursor(
        &self,
        handle: &InstanceHandle,
        token: &ResumeToken,
    ) -> Result<WordCursor, InvalidTokenError> {
        WordCursor::resume(handle.inst.clone(), token)
    }

    /// A raw-word uniform draw stream over a session handle (the untyped
    /// sibling of [`Engine::sample`]).
    ///
    /// # Errors
    /// Propagates FPRAS failure events from the (cached) sketch build on the
    /// ambiguous route.
    pub fn gen_stream(
        &self,
        handle: &InstanceHandle,
        draw_seed: u64,
    ) -> Result<WordGenStream, QueryError> {
        Ok(WordGenStream::new(
            &handle.inst,
            &self.config.router,
            self.config.retries,
            self.sketch_seed(&handle.inst),
            draw_seed,
        )?)
    }

    // ---- cache internals ----

    /// Resolves `key` through the cache: on a hit, touches LRU state and
    /// re-measures the entry; on a miss, inserts whatever `make` builds.
    fn resolve_with(
        &self,
        key: InstanceKey,
        make: impl FnOnce() -> Arc<PreparedInstance>,
    ) -> Resolved {
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let touched = inner.entries.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            // Re-measure on every touch (cheap — per-table sizes are
            // memoized) so tables materialized through a directly-held
            // `Arc` or `InstanceHandle` are accounted for too.
            let fresh = entry.inst.approx_bytes();
            let old = std::mem::replace(&mut entry.bytes, fresh);
            (entry.inst.clone(), fresh, old)
        });
        if let Some((inst, fresh, old)) = touched {
            inner.total_bytes = (inner.total_bytes + fresh).saturating_sub(old);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.evict_locked(&mut inner);
            return Resolved {
                inst,
                cache_hit: true,
                key,
            };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let inst = make();
        let bytes = inst.approx_bytes();
        inner.total_bytes += bytes;
        inner.entries.insert(
            key,
            Entry {
                inst: inst.clone(),
                bytes,
                last_used: tick,
            },
        );
        self.evict_locked(&mut inner);
        Resolved {
            inst,
            cache_hit: false,
            key,
        }
    }

    fn lookup_or_insert(&self, nfa: &Arc<Nfa>, length: usize) -> Resolved {
        let key = InstanceKey::of(nfa, length);
        // A miss clones only the `Arc` — the automaton itself is never
        // deep-copied on the request path.
        self.resolve_with(key, || {
            Arc::new(PreparedInstance::from_arc(nfa.clone(), length))
        })
    }

    /// Resolution for handle-carrying requests: an LRU touch when the entry
    /// survives, a re-insert of the pinned instance (reported as a miss, but
    /// with zero recompilation) when it was evicted.
    fn resolve_handle(&self, handle: &InstanceHandle) -> Resolved {
        self.resolve_with(handle.key, || handle.inst.clone())
    }

    fn resolve_target(&self, target: &QueryTarget) -> Resolved {
        match target {
            QueryTarget::Automaton { nfa, length } => self.lookup_or_insert(nfa, *length),
            QueryTarget::Handle(handle) => self.resolve_handle(handle),
        }
    }

    /// Re-measures the given instances (their lazy tables may have grown
    /// during execution) and evicts least-recently-used entries until the
    /// byte cap holds again. Keys come from the resolution pass — no
    /// re-fingerprinting here.
    fn refresh_bytes(&self, touched: &[Resolved]) {
        let mut inner = self.inner.lock().expect("engine cache poisoned");
        let mut delta: isize = 0;
        for r in touched {
            let fresh = r.inst.approx_bytes();
            if let Some(entry) = inner.entries.get_mut(&r.key) {
                if Arc::ptr_eq(&entry.inst, &r.inst) {
                    delta += fresh as isize - entry.bytes as isize;
                    entry.bytes = fresh;
                }
            }
        }
        inner.total_bytes = inner.total_bytes.saturating_add_signed(delta);
        self.evict_locked(&mut inner);
    }

    fn evict_locked(&self, inner: &mut CacheInner) {
        while inner.total_bytes > self.config.cache_bytes && inner.entries.len() > 1 {
            let newest = inner
                .entries
                // lsc-analyze: allow(nondeterministic-iteration) reason="max over unique monotonic last_used ticks; order-independent"
                .values()
                .map(|e| e.last_used)
                .max()
                .expect("nonempty");
            let Some((&victim, _)) = inner
                .entries
                // lsc-analyze: allow(nondeterministic-iteration) reason="victim choice keyed on (unique monotonic tick, instance key); min is order-independent"
                .iter()
                .filter(|(_, e)| e.last_used != newest)
                .min_by_key(|(&k, e)| (e.last_used, k))
            else {
                break;
            };
            let entry = inner.entries.remove(&victim).expect("victim present");
            inner.total_bytes -= entry.bytes;
            inner.evictions += 1;
        }
    }

    /// Engine-owned seed for an instance's cached FPRAS sketch: a pure
    /// function of the configuration and the fingerprint.
    fn sketch_seed(&self, inst: &PreparedInstance) -> u64 {
        self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ inst.fingerprint()
    }

    /// One batch execution, rebuilt on the streaming surface: `Enumerate`
    /// buffers a cursor page, `Sample` buffers a draw-stream prefix, so the
    /// compatibility layer and the cursors can never disagree on content or
    /// order.
    fn execute(
        &self,
        inst: &Arc<PreparedInstance>,
        kind: QueryKind,
        seed: u64,
    ) -> Result<QueryOutput, QueryError> {
        match kind {
            QueryKind::Count => Ok(QueryOutput::Count(
                inst.count_routed_cached(&self.config.router, self.sketch_seed(inst))?,
            )),
            QueryKind::CountExact => Ok(QueryOutput::Exact(inst.count_exact()?)),
            QueryKind::Enumerate { limit } => Ok(QueryOutput::Words(
                WordCursor::fresh(inst.clone()).take(limit).collect(),
            )),
            QueryKind::Sample { count } => {
                let stream = WordGenStream::new(
                    inst,
                    &self.config.router,
                    self.config.retries,
                    self.sketch_seed(inst),
                    seed,
                )?;
                Ok(QueryOutput::Words(stream.take(count).collect()))
            }
        }
    }

    /// Answers one request.
    pub fn query(&self, request: &QueryRequest) -> QueryResponse {
        self.query_batch(std::slice::from_ref(request))
            .pop()
            .expect("one response per request")
    }

    /// Answers a batch, fanning execution across `config.threads` workers
    /// (chunked like the FPRAS sampling pass; see the module docs for why the
    /// responses are identical at any thread count).
    pub fn query_batch(&self, requests: &[QueryRequest]) -> Vec<QueryResponse> {
        if requests.is_empty() {
            return Vec::new();
        }
        // Phase 1, single-threaded: resolve every instance (and the hit
        // flags) deterministically.
        let resolved: Vec<Resolved> = requests
            .iter()
            .map(|r| self.resolve_target(&r.target))
            .collect();
        // Phase 2: execute, chunked across scoped threads.
        let threads = self.config.threads.clamp(1, requests.len());
        let outputs: Vec<Result<QueryOutput, QueryError>> = if threads == 1 {
            requests
                .iter()
                .zip(&resolved)
                .map(|(r, res)| self.execute(&res.inst, r.kind, r.seed))
                .collect()
        } else {
            let mut slots: Vec<Option<Result<QueryOutput, QueryError>>> =
                (0..requests.len()).map(|_| None).collect();
            let chunk = requests.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for ((reqs, insts), out) in requests
                    .chunks(chunk)
                    .zip(resolved.chunks(chunk))
                    .zip(slots.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for ((r, res), slot) in reqs.iter().zip(insts).zip(out) {
                            *slot = Some(self.execute(&res.inst, r.kind, r.seed));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("thread filled slot"))
                .collect()
        };
        // Phase 3, single-threaded: account for whatever the queries
        // materialized, and enforce the byte cap.
        self.refresh_bytes(&resolved);
        outputs
            .into_iter()
            .zip(resolved)
            .map(|(output, res)| QueryResponse {
                output,
                cache_hit: res.cache_hit,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::{ambiguity_gap_nfa, blowup_nfa};
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;

    fn exact_count_request(k: usize, n: usize) -> QueryRequest {
        QueryRequest::automaton(blowup_nfa(k), n, QueryKind::CountExact, 0)
    }

    fn target_nfa(r: &QueryRequest) -> Arc<Nfa> {
        match &r.target {
            QueryTarget::Automaton { nfa, .. } => nfa.clone(),
            QueryTarget::Handle(h) => h.instance().nfa_arc().clone(),
        }
    }

    fn target_length(r: &QueryRequest) -> usize {
        match &r.target {
            QueryTarget::Automaton { length, .. } => *length,
            QueryTarget::Handle(h) => h.length(),
        }
    }

    #[test]
    fn warm_requests_hit_the_cache() {
        let engine = Engine::with_defaults();
        let r = exact_count_request(4, 10);
        let cold = engine.query(&r);
        assert!(!cold.cache_hit);
        let warm = engine.query(&r);
        assert!(warm.cache_hit);
        let (Ok(QueryOutput::Exact(a)), Ok(QueryOutput::Exact(b))) = (cold.output, warm.output)
        else {
            panic!("exact counts expected");
        };
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn byte_cap_evicts_least_recently_used() {
        // A cap small enough that two warmed instances cannot coexist.
        let config = EngineConfig {
            cache_bytes: 1, // everything over budget: keep only the newest
            ..EngineConfig::default()
        };
        let engine = Engine::new(config);
        let a = exact_count_request(4, 10);
        let b = exact_count_request(5, 12);
        engine.query(&a);
        engine.query(&b); // evicts a
        assert_eq!(engine.stats().entries, 1);
        assert!(engine.stats().evictions >= 1);
        let again = engine.query(&a); // must be a fresh miss
        assert!(!again.cache_hit, "evicted instance cannot hit");
        // A generous cap keeps both.
        let engine = Engine::with_defaults();
        engine.query(&a);
        engine.query(&b);
        assert_eq!(engine.stats().entries, 2);
        assert!(engine.query(&a).cache_hit);
        assert_eq!(engine.stats().evictions, 0);
    }

    #[test]
    fn byte_accounting_tracks_materialized_tables() {
        let engine = Engine::with_defaults();
        let r = exact_count_request(6, 20);
        engine.prepared(&target_nfa(&r), target_length(&r)); // lazy insert
        let before = engine.stats().bytes;
        engine.query(&r); // materializes the DAG + completion table
        assert!(
            engine.stats().bytes > before,
            "post-query refresh must record the grown tables"
        );
    }

    #[test]
    fn directly_held_arcs_are_accounted_on_next_touch() {
        // Tables materialized through an Arc from Engine::prepared (the
        // app-crate usage path) bypass query_batch's refresh; the next cache
        // touch must pick the growth up.
        let engine = Engine::with_defaults();
        let r = exact_count_request(6, 20);
        let inst = engine.prepared(&target_nfa(&r), target_length(&r));
        let before = engine.stats().bytes;
        let _ = inst.count_exact().unwrap();
        let _ = engine.prepared(&target_nfa(&r), target_length(&r));
        assert!(
            engine.stats().bytes > before,
            "hit-path re-measure must record tables built through the Arc"
        );
    }

    #[test]
    fn batch_marks_duplicate_instances_as_hits() {
        // The regression pin for intra-batch duplicate semantics (see the
        // `QueryResponse` docs): flags and stats follow resolution order.
        let engine = Engine::with_defaults();
        let reqs = vec![
            exact_count_request(4, 10),
            exact_count_request(5, 10),
            exact_count_request(4, 10), // same instance as #0
            exact_count_request(4, 10), // and again
            exact_count_request(5, 10), // same instance as #1
        ];
        let responses = engine.query_batch(&reqs);
        assert_eq!(
            responses.iter().map(|r| r.cache_hit).collect::<Vec<_>>(),
            vec![false, false, true, true, true]
        );
        let stats = engine.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (3, 2, 2),
            "k duplicates = 1 miss + (k-1) hits, per instance"
        );
    }

    #[test]
    fn handle_requests_skip_resolution_and_report_hits() {
        let engine = Engine::with_defaults();
        let nfa = Arc::new(blowup_nfa(4));
        let handle = engine.prepare_nfa(&nfa, 10);
        assert!(!handle.was_cached(), "first prepare is the miss");
        assert!(engine.prepare_nfa(&nfa, 10).was_cached());
        let reqs = vec![
            QueryRequest::on(&handle, QueryKind::CountExact, 0),
            QueryRequest::on(&handle, QueryKind::Enumerate { limit: 4 }, 0),
        ];
        let responses = engine.query_batch(&reqs);
        assert!(
            responses.iter().all(|r| r.cache_hit),
            "handle requests are hits while the entry is cached"
        );
        // All resolutions point at the very Arc the handle pins.
        assert!(Arc::ptr_eq(handle.instance(), &engine.prepared(&nfa, 10)));
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (4, 1));
    }

    #[test]
    fn evicted_handles_reinsert_without_recompiling() {
        let config = EngineConfig {
            cache_bytes: 1,
            ..EngineConfig::default()
        };
        let engine = Engine::new(config);
        let a = Arc::new(blowup_nfa(4));
        let handle = engine.prepare_nfa(&a, 10);
        engine.query(&exact_count_request(5, 12)); // evicts a's entry
        let response = engine.query(&QueryRequest::on(&handle, QueryKind::CountExact, 0));
        assert!(
            !response.cache_hit,
            "an evicted handle reports a miss on re-insert"
        );
        // ...but the served instance is still the pinned artifact, not a
        // recompilation.
        assert!(Arc::ptr_eq(handle.instance(), &engine.prepared(&a, 10)));
    }

    #[test]
    fn all_three_problems_serve_from_one_instance() {
        let ab = Alphabet::binary();
        let nfa = Arc::new(Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile());
        let engine = Engine::with_defaults();
        let reqs = vec![
            QueryRequest::automaton(nfa.clone(), 7, QueryKind::Count, 1),
            QueryRequest::automaton(
                nfa.clone(),
                7,
                QueryKind::Enumerate { limit: usize::MAX },
                1,
            ),
            QueryRequest::automaton(nfa.clone(), 7, QueryKind::Sample { count: 5 }, 2),
        ];
        let responses = engine.query_batch(&reqs);
        let Ok(QueryOutput::Count(count)) = &responses[0].output else {
            panic!("count expected")
        };
        let Ok(QueryOutput::Words(words)) = &responses[1].output else {
            panic!("words expected")
        };
        let Ok(QueryOutput::Words(samples)) = &responses[2].output else {
            panic!("samples expected")
        };
        // One instance resolved three times.
        assert_eq!(engine.stats().misses, 1);
        assert_eq!(engine.stats().hits, 2);
        if let Some(exact) = &count.exact {
            assert_eq!(words.len() as u64, exact.to_u64().unwrap());
        }
        for w in samples {
            assert!(nfa.accepts(w));
        }
    }

    #[test]
    fn exact_count_on_ambiguous_reports_error() {
        let engine = Engine::with_defaults();
        let r = QueryRequest::automaton(ambiguity_gap_nfa(3), 8, QueryKind::CountExact, 0);
        assert_eq!(
            engine.query(&r).output.unwrap_err(),
            QueryError::NotUnambiguous
        );
    }

    #[test]
    fn typed_entry_points_reuse_one_domain_session() {
        // The raw identity Queryable through the generic surface: count,
        // cursor, and stream agree, and the domain index memoizes the
        // (trivial) reduction.
        let instance = (Arc::new(blowup_nfa(3)), 8usize);
        let engine = Engine::with_defaults();
        let count = engine.count_exact(&instance).unwrap().to_u64().unwrap();
        let words: Vec<Word> = engine.enumerate(&instance).collect();
        assert_eq!(words.len() as u64, count);
        let samples: Vec<Word> = engine.sample(&instance, 3).unwrap().take(4).collect();
        for w in &samples {
            assert!(instance.0.accepts(w));
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 1, "one prepared instance for all entries");
        assert_eq!(stats.domains, 1, "one memoized domain session");
    }

    #[test]
    fn domain_memo_is_entry_capped() {
        // The session memo pins reduced automata; past the cap it must evict
        // (least-recently-used first) instead of growing without bound.
        let config = EngineConfig {
            domain_entries: 2,
            ..EngineConfig::default()
        };
        let engine = Engine::new(config);
        let a = (Arc::new(blowup_nfa(3)), 6usize);
        let b = (Arc::new(blowup_nfa(4)), 6usize);
        let c = (Arc::new(blowup_nfa(5)), 6usize);
        engine.prepare(&a);
        engine.prepare(&b);
        assert_eq!(engine.stats().domains, 2);
        engine.prepare(&a); // touch: b is now the LRU session
        engine.prepare(&c); // evicts b
        assert_eq!(engine.stats().domains, 2, "cap holds");
        // An evicted session is not an error — it just re-runs the
        // reduction and re-enters the memo.
        engine.prepare(&b);
        assert_eq!(engine.stats().domains, 2);
    }

    #[test]
    fn typed_cursor_resume_round_trips() {
        let instance = (Arc::new(blowup_nfa(3)), 8usize);
        let engine = Engine::with_defaults();
        let all: Vec<Word> = engine.enumerate(&instance).collect();
        let mut cursor = engine.enumerate(&instance);
        let first: Vec<Word> = cursor.by_ref().take(3).collect();
        let token = ResumeToken::parse(&cursor.token().encode()).unwrap();
        let rest: Vec<Word> = engine.resume(&instance, &token).unwrap().collect();
        let stitched: Vec<Word> = first.into_iter().chain(rest).collect();
        assert_eq!(stitched, all);
    }
}
