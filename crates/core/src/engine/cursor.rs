//! Streaming cursors for `ENUM` and draw streams for `GEN`.
//!
//! The enumeration-complexity literature treats *delay* — the gap between
//! consecutive answers — as the defining resource, and the paper's headline
//! guarantees are delay bounds (constant on MEM-UFA, polynomial on MEM-NFA).
//! A batch API that materializes `Vec<Word>` up front throws exactly that
//! away. This module is the streaming half of the query-API redesign:
//!
//! * [`WordCursor`] — a lazy witness stream over one prepared instance. It
//!   yields the first witness after `O(delay)` work, tracks its position, and
//!   serializes that position to a compact [`ResumeToken`] so a client can
//!   page an enumeration across calls (or processes). Resumed pages are
//!   **bit-identical** to an uninterrupted run: the token pins the
//!   enumerator's whole state (see the determinism note below).
//! * [`EnumCursor`] — the typed view: a `WordCursor` composed with a
//!   [`Queryable`]'s decoder, yielding domain values (assignments, paths,
//!   mappings) instead of raw words.
//! * [`WordGenStream`] / [`GenStream`] — amortized `GEN`: one stream holds
//!   the exact table sampler or the FPRAS sketch's witness sampler (scratch
//!   and weight cache included) across draws, so the per-draw cost after the
//!   first is a table walk, not a preprocessing pass.
//!
//! **Why resumption is deterministic.** Both enumerators are memoryless
//! beyond their position: the constant-delay enumerator's state after
//! emitting a word is its decision list (the branching vertices of that
//! word's DAG path), and the flashlight enumerator's state is the word itself
//! (per-level viable sets and next-symbol pointers are functions of it). A
//! token therefore records `(instance fingerprint, rank, position payload)`,
//! and [`WordCursor::resume`] rebuilds the exact mid-stream state the
//! uninterrupted enumerator would hold — the continuation cannot diverge
//! because there is no other state to diverge in. The fingerprint check makes
//! a token useless against any other instance.

use std::sync::Arc;

use lsc_automata::unroll::NodeId;
use lsc_automata::{Symbol, Word};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::queryable::Queryable;
use crate::engine::router::RouterConfig;
use crate::engine::PreparedInstance;
use crate::enumerate::{ConstantDelayEnumerator, PolyDelayEnumerator};
use crate::fpras::{FprasError, SharedWitnessSampler};
use crate::sample::TableSampler;

/// Version prefix of the token wire format; parsing rejects anything else.
const TOKEN_PREFIX: &str = "enum1";

/// A serialized enumeration position: where one [`WordCursor`] stopped, in a
/// form a later (or remote) cursor can continue from.
///
/// The wire format is a short ASCII string —
/// `enum1.<fingerprint:016x>.<rank>.<mode><payload>` with mode `s`tart,
/// `c`onstant-delay (payload: `vertex:edge` pairs, `-`-joined), `p`oly-delay
/// (payload: witness symbols, `-`-joined), or `d`one — safe to log, pass on a
/// command line, or hand to a client. (The full grammar is specified in
/// `docs/ARCHITECTURE.md` §4.4.)
///
/// ```
/// use lsc_core::engine::ResumeToken;
///
/// let token = ResumeToken::parse("enum1.00000000deadbeef.7.p1-0-1").unwrap();
/// assert_eq!(token.fingerprint(), 0xdead_beef);
/// assert_eq!(token.rank(), 7);
/// assert_eq!(token.encode(), "enum1.00000000deadbeef.7.p1-0-1");
/// assert!(ResumeToken::parse("enum2.not.a.token").is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeToken {
    fingerprint: u64,
    rank: u64,
    pos: CursorPos,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum CursorPos {
    /// Nothing yielded yet: resuming replays from the first witness.
    Start,
    /// Constant-delay route: the decision list after the last yielded word.
    Constant(Vec<(NodeId, usize)>),
    /// Poly-delay route: the last yielded word.
    Poly(Word),
    /// The stream ended; resuming yields nothing.
    Done,
}

impl ResumeToken {
    /// The instance fingerprint the token is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// How many witnesses the stream had yielded when the token was taken.
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// True iff the token marks an exhausted stream.
    pub fn is_done(&self) -> bool {
        self.pos == CursorPos::Done
    }

    /// Serializes to the compact wire format (see the type docs).
    pub fn encode(&self) -> String {
        let mut s = format!("{TOKEN_PREFIX}.{:016x}.{}.", self.fingerprint, self.rank);
        match &self.pos {
            CursorPos::Start => s.push('s'),
            CursorPos::Done => s.push('d'),
            CursorPos::Constant(decisions) => {
                s.push('c');
                for (i, (v, e)) in decisions.iter().enumerate() {
                    if i > 0 {
                        s.push('-');
                    }
                    s.push_str(&format!("{v}:{e}"));
                }
            }
            CursorPos::Poly(word) => {
                s.push('p');
                for (i, sym) in word.iter().enumerate() {
                    if i > 0 {
                        s.push('-');
                    }
                    s.push_str(&sym.to_string());
                }
            }
        }
        s
    }

    /// Parses the wire format.
    ///
    /// # Errors
    /// [`InvalidTokenError`] on anything that is not a well-formed token
    /// (structural validation against a concrete instance happens later, in
    /// [`WordCursor::resume`]).
    pub fn parse(text: &str) -> Result<Self, InvalidTokenError> {
        let bad = |reason: &str| InvalidTokenError {
            reason: reason.to_string(),
        };
        let mut parts = text.splitn(4, '.');
        if parts.next() != Some(TOKEN_PREFIX) {
            return Err(bad("unknown token version"));
        }
        let fingerprint =
            u64::from_str_radix(parts.next().ok_or_else(|| bad("missing fingerprint"))?, 16)
                .map_err(|_| bad("malformed fingerprint"))?;
        let rank: u64 = parts
            .next()
            .ok_or_else(|| bad("missing rank"))?
            .parse()
            .map_err(|_| bad("malformed rank"))?;
        let body = parts.next().ok_or_else(|| bad("missing position"))?;
        // The mode byte must exist and be ASCII before slicing: this is
        // user-controlled input, and `body[1..]` on a multi-byte first char
        // (or an empty body) would panic instead of erroring.
        let mode = *body
            .as_bytes()
            .first()
            .ok_or_else(|| bad("missing position mode"))?;
        if !mode.is_ascii() {
            return Err(bad("unknown position mode"));
        }
        let payload = &body[1..];
        let pos = match mode {
            b's' if payload.is_empty() => CursorPos::Start,
            b'd' if payload.is_empty() => CursorPos::Done,
            b'c' => {
                let mut decisions = Vec::new();
                if !payload.is_empty() {
                    for pair in payload.split('-') {
                        let (v, e) = pair
                            .split_once(':')
                            .ok_or_else(|| bad("malformed decision pair"))?;
                        decisions.push((
                            v.parse().map_err(|_| bad("malformed decision vertex"))?,
                            e.parse().map_err(|_| bad("malformed decision edge"))?,
                        ));
                    }
                }
                CursorPos::Constant(decisions)
            }
            b'p' => {
                let mut word: Word = Vec::new();
                if !payload.is_empty() {
                    for sym in payload.split('-') {
                        word.push(sym.parse().map_err(|_| bad("malformed symbol"))?);
                    }
                }
                CursorPos::Poly(word)
            }
            _ => return Err(bad("unknown position mode")),
        };
        Ok(ResumeToken {
            fingerprint,
            rank,
            pos,
        })
    }
}

impl std::fmt::Display for ResumeToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Why a resume token was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidTokenError {
    /// Human-readable rejection reason.
    pub reason: String,
}

impl std::fmt::Display for InvalidTokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid resume token: {}", self.reason)
    }
}

impl std::error::Error for InvalidTokenError {}

/// The route a cursor streams through: constant delay on unambiguous
/// instances (Theorem 5), polynomial delay otherwise (Theorem 2). Decided
/// once per cursor from the instance's cached classification.
enum CursorIter {
    Constant(ConstantDelayEnumerator),
    Poly(PolyDelayEnumerator),
    /// Exhausted (or resumed from a `done` token): nothing left to yield.
    Done,
}

/// Where the cursor stands, without the position payload: both enumerators
/// keep their full position live (the decision list, the prefix word), so the
/// cursor only needs to remember *which kind* of position it is at and can
/// borrow the payload lazily when a token is actually minted. This is what
/// keeps the per-word hot path free of position snapshots.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PageMark {
    /// Nothing yielded yet.
    Start,
    /// At least one word yielded; the enumerator holds the position.
    Word,
    /// The stream ended.
    Done,
}

/// A lazy, resumable witness stream over one prepared instance.
///
/// `WordCursor` is an [`Iterator`] over raw witness [`Word`]s that (a) does
/// its work per `next()` call — the first witness costs one delay, not one
/// materialization — and (b) can checkpoint its position at any point with
/// [`WordCursor::token`] and be reconstructed later with
/// [`WordCursor::resume`], continuing bit-identically. The typed counterpart
/// is [`EnumCursor`].
pub struct WordCursor {
    inst: Arc<PreparedInstance>,
    iter: CursorIter,
    rank: u64,
    mark: PageMark,
}

impl WordCursor {
    /// A cursor positioned before the first witness. Chooses the
    /// constant-delay route iff the instance is unambiguous — the same
    /// routing the batch `Enumerate` kind uses, so cursor streams and batch
    /// pages agree word for word.
    pub fn fresh(inst: Arc<PreparedInstance>) -> Self {
        let iter = match inst.enumerate_constant_delay() {
            Ok(e) => CursorIter::Constant(e),
            Err(_) => CursorIter::Poly(inst.enumerate()),
        };
        WordCursor {
            inst,
            iter,
            rank: 0,
            mark: PageMark::Start,
        }
    }

    /// Rebuilds a cursor at a token's position. The continued stream is
    /// bit-identical to the uninterrupted one (module docs); in particular,
    /// chaining `token()`/`resume()` at any page boundaries reproduces
    /// exactly the words of one fresh cursor, in order.
    ///
    /// # Errors
    /// [`InvalidTokenError`] if the token was minted for a different
    /// instance, encodes a position this instance does not have, or its mode
    /// does not match the instance's enumeration route.
    pub fn resume(
        inst: Arc<PreparedInstance>,
        token: &ResumeToken,
    ) -> Result<Self, InvalidTokenError> {
        let bad = |reason: &str| InvalidTokenError {
            reason: reason.to_string(),
        };
        if token.fingerprint != inst.fingerprint() {
            return Err(bad("token was minted for a different instance"));
        }
        let iter = match &token.pos {
            CursorPos::Start => return Ok(Self::fresh(inst)),
            CursorPos::Done => CursorIter::Done,
            CursorPos::Constant(decisions) => {
                if !inst.is_unambiguous() {
                    return Err(bad("constant-delay token on an ambiguous instance"));
                }
                let e = ConstantDelayEnumerator::resume(inst.dag().clone(), decisions.clone())
                    .ok_or_else(|| bad("decision list does not describe a path"))?;
                CursorIter::Constant(e)
            }
            CursorPos::Poly(word) => {
                if inst.is_unambiguous() {
                    return Err(bad("poly-delay token on an unambiguous instance"));
                }
                let e = PolyDelayEnumerator::resume_after(
                    inst.nfa_arc().clone(),
                    inst.dag().clone(),
                    word,
                )
                .ok_or_else(|| bad("word is not a witness of this instance"))?;
                CursorIter::Poly(e)
            }
        };
        // The resumed enumerators hold the token's position as their own live
        // state (decision list, prefix word), so the cursor records only the
        // position kind; a re-minted token reads the payload back from them.
        let mark = match &iter {
            CursorIter::Done => PageMark::Done,
            CursorIter::Constant(_) | CursorIter::Poly(_) => PageMark::Word,
        };
        Ok(WordCursor {
            inst,
            iter,
            rank: token.rank,
            mark,
        })
    }

    /// The instance the cursor streams over.
    pub fn instance(&self) -> &Arc<PreparedInstance> {
        &self.inst
    }

    /// Witnesses yielded so far (counting any pages before a resume).
    pub fn rank(&self) -> u64 {
        self.rank
    }

    /// True once the stream is exhausted.
    pub fn is_done(&self) -> bool {
        matches!(self.iter, CursorIter::Done)
    }

    /// The current position as a serializable token: hand it out after a
    /// page, feed it to [`WordCursor::resume`] (or
    /// `Engine::resume`) to continue exactly where this cursor stands.
    ///
    /// The position payload is materialized here, from the enumerator's live
    /// state — one snapshot per token minted, not one per word yielded.
    pub fn token(&self) -> ResumeToken {
        let pos = match (self.mark, &self.iter) {
            (PageMark::Start, _) => CursorPos::Start,
            (PageMark::Done, _) => CursorPos::Done,
            (PageMark::Word, CursorIter::Constant(e)) => {
                CursorPos::Constant(e.decisions().to_vec())
            }
            (PageMark::Word, CursorIter::Poly(e)) => CursorPos::Poly(e.current_word().to_vec()),
            (PageMark::Word, CursorIter::Done) => unreachable!("done cursors are marked done"),
        };
        ResumeToken {
            fingerprint: self.inst.fingerprint(),
            rank: self.rank,
            pos,
        }
    }

    /// Lending form of `next()`: advances the stream and returns the next
    /// witness as a borrow of the enumerator's reused buffer, valid until the
    /// next `advance`/`next` call. A page served through this path performs
    /// no per-word allocation beyond the enumerators' own amortized-constant
    /// bookkeeping — the serving layer formats each word straight off the
    /// borrow (and `tests/alloc_guard.rs` pins a per-page budget on it).
    pub fn advance(&mut self) -> Option<&[Symbol]> {
        let yielded = match &mut self.iter {
            CursorIter::Constant(e) => e.advance().is_some(),
            CursorIter::Poly(e) => e.advance().is_some(),
            CursorIter::Done => false,
        };
        if !yielded {
            self.iter = CursorIter::Done;
            self.mark = PageMark::Done;
            return None;
        }
        self.rank += 1;
        self.mark = PageMark::Word;
        match &self.iter {
            CursorIter::Constant(e) => Some(e.current_word()),
            CursorIter::Poly(e) => Some(e.current_word()),
            CursorIter::Done => unreachable!("a done cursor cannot have yielded"),
        }
    }
}

impl Iterator for WordCursor {
    type Item = Word;

    fn next(&mut self) -> Option<Word> {
        self.advance().map(<[Symbol]>::to_vec)
    }
}

/// The typed enumeration cursor: a [`WordCursor`] composed with a
/// [`Queryable`]'s witness decoder, yielding domain values lazily. Created by
/// `Engine::enumerate` (fresh) and `Engine::resume` (from a token); pages
/// and tokens behave exactly as on the underlying [`WordCursor`] (tokens
/// address raw-word positions, so word-level and typed cursors can even
/// share them — `Engine::cursor` / `Engine::resume_cursor` are the
/// word-level siblings).
pub struct EnumCursor<'q, Q: Queryable + ?Sized> {
    source: &'q Q,
    words: WordCursor,
}

impl<'q, Q: Queryable + ?Sized> EnumCursor<'q, Q> {
    /// Wraps a word cursor with its domain decoder.
    pub fn new(source: &'q Q, words: WordCursor) -> Self {
        EnumCursor { source, words }
    }

    /// The underlying raw-word cursor.
    pub fn words(&self) -> &WordCursor {
        &self.words
    }

    /// Witnesses yielded so far (counting any pages before a resume).
    pub fn rank(&self) -> u64 {
        self.words.rank()
    }

    /// True once the stream is exhausted.
    pub fn is_done(&self) -> bool {
        self.words.is_done()
    }

    /// The current position as a serializable token (see
    /// [`WordCursor::token`]).
    pub fn token(&self) -> ResumeToken {
        self.words.token()
    }
}

impl<Q: Queryable + ?Sized> Iterator for EnumCursor<'_, Q> {
    type Item = Q::Output;

    fn next(&mut self) -> Option<Q::Output> {
        // Decode straight off the lent slice: no intermediate Word per item.
        let source = self.source;
        self.words.advance().map(|w| source.decode(w))
    }
}

/// Which sampler a draw stream runs on.
enum GenMode {
    /// The witness set is empty: the stream yields nothing.
    Empty,
    /// Exact uniform draws over the shared completion table (Theorem 5).
    Exact(TableSampler),
    /// Las Vegas draws over the shared FPRAS sketch (Corollary 23), with a
    /// retry budget per emitted witness. Boxed: the sampler's scratch state
    /// dwarfs the other variants.
    LasVegas {
        sampler: Box<SharedWitnessSampler>,
        retries: usize,
    },
}

/// An amortized uniform-witness stream over one prepared instance: the `GEN`
/// counterpart of [`WordCursor`].
///
/// Construction resolves the route once (exact table sampler on unambiguous
/// instances, the cached FPRAS sketch otherwise) and every draw after that
/// reuses the same tables, scratch space, and weight cache — the
/// preprocessing/serving split applied to generation. The stream is
/// deterministic in `(instance, sketch seed, draw seed)`: warm or cold, the
/// same seeds give the same witnesses.
///
/// The stream ends (`None`) when the witness set is empty, or — on the Las
/// Vegas route — when one draw exhausts its whole retry budget (probability
/// vanishing under sensible parameters; see `FprasParams`).
pub struct WordGenStream {
    mode: GenMode,
    rng: StdRng,
    drawn: u64,
}

impl WordGenStream {
    /// A draw stream over `inst`. `router` supplies the FPRAS parameters for
    /// the ambiguous route, `sketch_seed` the sketch's build randomness
    /// (engine-owned, fingerprint-mixed), and `draw_seed` the stream's own
    /// randomness.
    ///
    /// # Errors
    /// Propagates [`FprasError`] from the (cached) sketch build.
    pub fn new(
        inst: &Arc<PreparedInstance>,
        router: &RouterConfig,
        retries: usize,
        sketch_seed: u64,
        draw_seed: u64,
    ) -> Result<Self, FprasError> {
        let mode = if !inst.exists_witness() {
            GenMode::Empty
        } else if inst.is_unambiguous() {
            GenMode::Exact(inst.uniform_sampler().expect("checked unambiguous"))
        } else {
            let sketch = inst.fpras_sketch(router.fpras, sketch_seed)?;
            GenMode::LasVegas {
                sampler: Box::new(SharedWitnessSampler::new(sketch)),
                retries: retries.max(1),
            }
        };
        Ok(WordGenStream {
            mode,
            rng: StdRng::seed_from_u64(draw_seed),
            drawn: 0,
        })
    }

    /// Witnesses emitted so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }
}

impl Iterator for WordGenStream {
    type Item = Word;

    fn next(&mut self) -> Option<Word> {
        let word = match &mut self.mode {
            GenMode::Empty => None,
            GenMode::Exact(sampler) => sampler.sample(&mut self.rng),
            GenMode::LasVegas { sampler, retries } => {
                let mut drawn = None;
                for _ in 0..*retries {
                    if let Some(w) = sampler.sample(&mut self.rng) {
                        drawn = Some(w);
                        break;
                    }
                }
                drawn
            }
        };
        if word.is_some() {
            self.drawn += 1;
        }
        word
    }
}

/// The typed draw stream: a [`WordGenStream`] composed with a [`Queryable`]'s
/// witness decoder. Created by `Engine::sample`.
pub struct GenStream<'q, Q: Queryable + ?Sized> {
    source: &'q Q,
    words: WordGenStream,
}

impl<'q, Q: Queryable + ?Sized> GenStream<'q, Q> {
    /// Wraps a word stream with its domain decoder.
    pub fn new(source: &'q Q, words: WordGenStream) -> Self {
        GenStream { source, words }
    }

    /// The underlying raw-word stream.
    pub fn words(&self) -> &WordGenStream {
        &self.words
    }

    /// Witnesses emitted so far.
    pub fn drawn(&self) -> u64 {
        self.words.drawn()
    }
}

impl<Q: Queryable + ?Sized> Iterator for GenStream<'_, Q> {
    type Item = Q::Output;

    fn next(&mut self) -> Option<Q::Output> {
        self.words.next().map(|w| self.source.decode(&w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::blowup_nfa;
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;

    fn ufa_inst() -> Arc<PreparedInstance> {
        Arc::new(PreparedInstance::new(blowup_nfa(3), 8))
    }

    fn nfa_inst() -> Arc<PreparedInstance> {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile();
        Arc::new(PreparedInstance::new(nfa, 7))
    }

    #[test]
    fn token_round_trips_through_the_wire_format() {
        for inst in [ufa_inst(), nfa_inst()] {
            let mut cursor = WordCursor::fresh(inst.clone());
            // Start, mid-stream, and done tokens all survive encode/parse.
            loop {
                let token = cursor.token();
                assert_eq!(ResumeToken::parse(&token.encode()).unwrap(), token);
                if cursor.next().is_none() {
                    let done = cursor.token();
                    assert!(done.is_done());
                    assert_eq!(ResumeToken::parse(&done.encode()).unwrap(), done);
                    break;
                }
            }
        }
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        for text in [
            "",
            "enum2.0.0.s",
            "enum1.zz.0.s",
            "enum1.0000000000000000.x.s",
            "enum1.0000000000000000.0.q",
            "enum1.0000000000000000.0.c1:z",
            "enum1.0000000000000000.0.p1-x",
            "enum1.0000000000000000.0.sx",
            "enum1.0000000000000000.0.",
            "enum1.0000000000000000.0.éx",
        ] {
            assert!(ResumeToken::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn stitched_pages_equal_uninterrupted_run() {
        for inst in [ufa_inst(), nfa_inst()] {
            let uninterrupted: Vec<Word> = WordCursor::fresh(inst.clone()).collect();
            for page in [1usize, 2, 3, 7] {
                let mut stitched: Vec<Word> = Vec::new();
                let mut token = WordCursor::fresh(inst.clone()).token();
                loop {
                    // A fresh process: only the token crosses the boundary.
                    let parsed = ResumeToken::parse(&token.encode()).unwrap();
                    let mut cursor = WordCursor::resume(inst.clone(), &parsed).unwrap();
                    let before = stitched.len();
                    stitched.extend(cursor.by_ref().take(page));
                    token = cursor.token();
                    if stitched.len() == before {
                        break;
                    }
                }
                assert_eq!(stitched, uninterrupted, "page size {page}");
                assert!(token.is_done());
                assert_eq!(token.rank(), uninterrupted.len() as u64);
            }
        }
    }

    #[test]
    fn tokens_bind_to_their_instance() {
        let ufa = ufa_inst();
        let nfa = nfa_inst();
        let mut cursor = WordCursor::fresh(ufa.clone());
        cursor.next().unwrap();
        let token = cursor.token();
        assert!(WordCursor::resume(nfa, &token).is_err());
        assert!(WordCursor::resume(ufa, &token).is_ok());
    }

    #[test]
    fn done_tokens_resume_to_empty_streams() {
        let inst = ufa_inst();
        let mut cursor = WordCursor::fresh(inst.clone());
        while cursor.next().is_some() {}
        let done = cursor.token();
        let mut resumed = WordCursor::resume(inst, &done).unwrap();
        assert!(resumed.next().is_none());
        assert!(resumed.is_done());
    }

    #[test]
    fn gen_stream_matches_batch_sampling() {
        use crate::fpras::FprasParams;
        for inst in [ufa_inst(), nfa_inst()] {
            let router = RouterConfig {
                fpras: FprasParams::quick(),
                ..RouterConfig::default()
            };
            let stream = WordGenStream::new(&inst, &router, 64, 0xABCD, 7).unwrap();
            let streamed: Vec<Word> = stream.take(5).collect();
            let batch = inst
                .sample_witnesses(5, 64, FprasParams::quick(), 0xABCD, 7)
                .unwrap();
            assert_eq!(streamed, batch, "stream equals the one-shot batch draw");
            assert_eq!(streamed.len(), 5);
            for w in &streamed {
                assert!(inst.check_witness(w));
            }
        }
    }

    #[test]
    fn empty_language_streams_are_empty() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("000", &ab).unwrap().compile();
        let inst = Arc::new(PreparedInstance::new(nfa, 2));
        assert_eq!(WordCursor::fresh(inst.clone()).count(), 0);
        let router = RouterConfig::default();
        let mut stream = WordGenStream::new(&inst, &router, 8, 1, 2).unwrap();
        assert!(stream.next().is_none());
        assert_eq!(stream.drawn(), 0);
    }
}
