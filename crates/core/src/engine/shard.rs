//! The sharded resolver: N independent [`Engine`] shards behind one
//! consistent-hash shard map.
//!
//! One [`Engine`] is one mutex-guarded LRU — correct, but every resolution
//! (cache lookup, LRU touch, byte re-measure) serializes on that mutex, so
//! cache resolution stops scaling the moment many cores serve warm traffic.
//! [`ShardedEngine`] removes the funnel without changing a single answer:
//!
//! * **Shards.** N fully independent engines (default: one per hardware
//!   thread), each the existing fingerprint-keyed byte-capped LRU with
//!   `cache_bytes / N` of the configured budget. Requests for different
//!   instances resolve on different mutexes and proceed in parallel.
//! * **Routing.** A [`ShardMap`] — consistent hashing over a 64-bit ring
//!   with virtual nodes — assigns every instance fingerprint to exactly one
//!   shard. All traffic for an instance (prepare, query, cursor resume,
//!   snapshot warm-load) lands on its home shard, so intra-instance cache
//!   semantics (`k` duplicates = 1 miss + `k − 1` hits) are untouched, and
//!   no instance is resident in two shards (at quiescence — a resolution
//!   racing a topology change can leave a transient extra copy; see
//!   [`ShardedEngine::add_shard`]).
//! * **Elasticity.** [`ShardedEngine::add_shard`] and
//!   [`ShardedEngine::remove_shard`] grow or drain the fleet at runtime.
//!   Consistent hashing bounds the fallout: adding a shard moves only the
//!   keys the new shard now owns (≈ `1/(N+1)` of them), removing one moves
//!   only its own keys — every other shard's residents stay put. Moved
//!   instances migrate cache-to-cache (no recompilation); in-flight
//!   [`InstanceHandle`]s keep serving regardless, because handles pin the
//!   artifact, not the shard.
//!
//! **Determinism.** Shards never hold their own randomness: every answer is
//! the same pure function of `(instance, engine seed, request seed)` that
//! the single-engine path computes, and the engine-owned FPRAS sketch seed
//! mixes `config.seed` with the instance fingerprint — identical on every
//! shard layout. `crates/core/tests/shard_stress.rs` pins this: a seeded
//! concurrent op log over a `ShardedEngine` at 1/2/4/8 threads produces
//! bit-identical outputs to a serial replay on one `Engine`.

use std::sync::{Arc, Mutex, RwLock};

use lsc_arith::BigNat;
use lsc_automata::Nfa;

use crate::engine::cache::{
    Engine, EngineConfig, EngineStats, InstanceHandle, QueryError, QueryKind, QueryRequest,
    QueryResponse, QueryTarget,
};
use crate::engine::cursor::{
    EnumCursor, GenStream, InvalidTokenError, ResumeToken, WordCursor, WordGenStream,
};
use crate::engine::prepared::PreparedInstance;
use crate::engine::queryable::Queryable;
use crate::engine::router::RoutedCount;

/// SplitMix64 — the ring/key mixer. Cheap, stateless, and well distributed
/// even for near-sequential inputs (shard ids, replica indices).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Salt separating key-space hashes from ring-point hashes.
const KEY_SALT: u64 = 0x5EED_F0E1_57A8_1E5C;

/// A consistent-hash map from instance fingerprints to shard ids.
///
/// Each shard owns `replicas` pseudo-random points on a 64-bit ring; a
/// fingerprint belongs to the shard owning the first point at or clockwise
/// of the fingerprint's own ring position. The properties the shard tests
/// pin:
///
/// * **Stability** — `shard_for` is a pure function of the live shard set;
///   two maps holding the same shards agree on every key, regardless of the
///   order shards were added.
/// * **Bounded movement** — adding a shard only moves keys *to* it;
///   removing a shard only moves keys that belonged to it. Keys owned by
///   untouched shards never move.
/// * **Unique ownership** — every fingerprint maps to exactly one live
///   shard.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// `(ring position, shard id)`, sorted. Position ties (astronomically
    /// rare) are broken by shard id, deterministically.
    points: Vec<(u64, usize)>,
    /// Live shard ids, sorted.
    shards: Vec<usize>,
    /// Virtual nodes per shard.
    replicas: usize,
}

impl ShardMap {
    /// A map over shard ids `0..shards` with the given number of virtual
    /// nodes per shard (64 is a good default: key movement on topology
    /// changes stays within a few percent of ideal).
    pub fn new(shards: usize, replicas: usize) -> ShardMap {
        let mut map = ShardMap {
            points: Vec::new(),
            shards: Vec::new(),
            replicas: replicas.max(1),
        };
        for id in 0..shards.max(1) {
            map.add_shard(id);
        }
        map
    }

    /// The live shard ids, sorted.
    pub fn shard_ids(&self) -> &[usize] {
        &self.shards
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shard is live (an unroutable map; [`ShardMap::new`]
    /// never produces one).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The ring position of one of a shard's virtual nodes.
    fn point(shard: usize, replica: usize) -> u64 {
        splitmix64(splitmix64(shard as u64) ^ (replica as u64))
    }

    /// Adds a shard's virtual nodes to the ring. Idempotent.
    pub fn add_shard(&mut self, id: usize) {
        if self.shards.contains(&id) {
            return;
        }
        self.shards.push(id);
        self.shards.sort_unstable();
        for replica in 0..self.replicas {
            self.points.push((Self::point(id, replica), id));
        }
        self.points.sort_unstable();
    }

    /// Removes a shard's virtual nodes from the ring. Idempotent; the last
    /// shard cannot be removed (the map must stay routable).
    pub fn remove_shard(&mut self, id: usize) -> bool {
        if !self.shards.contains(&id) || self.shards.len() == 1 {
            return false;
        }
        self.shards.retain(|&s| s != id);
        self.points.retain(|&(_, s)| s != id);
        true
    }

    /// The shard owning a fingerprint.
    pub fn shard_for(&self, fingerprint: u64) -> usize {
        let key = splitmix64(fingerprint ^ KEY_SALT);
        let at = self.points.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.points[at % self.points.len()];
        shard
    }
}

/// [`ShardedEngine`] tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// The per-engine configuration. `cache_bytes` is the fleet *total at
    /// construction*: each initial shard gets `cache_bytes / shards` (so a
    /// sharded engine and a single engine under the same config start with
    /// the same byte budget). Shards added later each bring one more such
    /// share — see [`ShardedEngine::add_shard`].
    pub engine: EngineConfig,
    /// Number of shards; `0` means one per hardware thread
    /// (`std::thread::available_parallelism`).
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub replicas: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            engine: EngineConfig::default(),
            shards: 0,
            replicas: 64,
        }
    }
}

impl ShardedConfig {
    /// The shard count this configuration resolves to.
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Aggregated and per-shard cache counters.
#[derive(Clone, Debug, Default)]
pub struct ShardedStats {
    /// The sum over shards — field-compatible with a single engine's
    /// [`EngineStats`].
    pub aggregate: EngineStats,
    /// `(shard id, that shard's counters)`, in shard-id order.
    pub per_shard: Vec<(usize, EngineStats)>,
}

/// One immutable shard-fleet snapshot: engines indexed by shard id
/// (`None` = drained), plus the ring that routes to them. Topology changes
/// build a fresh snapshot and swap it in — readers never see a
/// half-updated fleet.
#[derive(Clone)]
struct Topology {
    engines: Vec<Option<Arc<Engine>>>,
    map: ShardMap,
}

impl Topology {
    fn engine(&self, shard: usize) -> Arc<Engine> {
        self.engines[shard]
            .as_ref()
            .expect("shard map routes only to live shards")
            .clone()
    }

    fn live(&self) -> impl Iterator<Item = (usize, &Arc<Engine>)> {
        self.engines
            .iter()
            .enumerate()
            .filter_map(|(id, e)| e.as_ref().map(|e| (id, e)))
    }
}

/// How many read stripes front the topology (a power of two). Each stripe
/// lives on its own cache lines, so readers on different cores take
/// different locks and the hot path has no globally shared read-lock word
/// — the contention profile a single `RwLock` (or an `Arc` clone of one
/// shared snapshot) would reintroduce.
const TOPOLOGY_STRIPES: usize = 16;

/// One topology read stripe, padded to keep each stripe's lock word off
/// its neighbors' cache lines.
#[repr(align(128))]
struct Stripe(RwLock<Arc<Topology>>);

/// The stripe a thread reads through: assigned round-robin at first use,
/// so steady-state readers spread evenly regardless of thread churn.
fn stripe_slot() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

/// N independent [`Engine`] shards fronted by a consistent-hash
/// [`ShardMap`] — the drop-in, multi-core replacement for a single engine.
/// See the module docs for the design; the API mirrors [`Engine`]'s
/// session/typed/batch surface, with [`ShardedEngine::stats`] additionally
/// reporting per-shard counters.
///
/// ```
/// use std::sync::Arc;
/// use lsc_automata::families::blowup_nfa;
/// use lsc_core::engine::{ShardedConfig, ShardedEngine};
///
/// let engine = ShardedEngine::new(ShardedConfig {
///     shards: 4,
///     ..ShardedConfig::default()
/// });
/// let instance = (Arc::new(blowup_nfa(3)), 8usize);
/// let count = engine.count_exact(&instance).unwrap().to_u64().unwrap();
/// let words: Vec<_> = engine.enumerate(&instance).collect();
/// assert_eq!(words.len() as u64, count);
/// // Exactly one shard compiled the instance; the fleet agrees on totals.
/// let stats = engine.stats();
/// assert_eq!(stats.aggregate.misses, 1);
/// assert_eq!(stats.per_shard.len(), 4);
/// ```
pub struct ShardedEngine {
    config: ShardedConfig,
    /// Per-shard engine configuration (the byte budget already divided).
    shard_config: EngineConfig,
    /// The current [`Topology`] snapshot, replicated across read stripes.
    /// Readers go through their thread's stripe ([`stripe_slot`]); writers
    /// ([`ShardedEngine::add_shard`] / [`ShardedEngine::remove_shard`])
    /// serialize on `topology_mut`, then write-lock every stripe to swap
    /// the snapshot atomically with respect to readers.
    stripes: Vec<Stripe>,
    topology_mut: Mutex<()>,
    /// Counters inherited from drained shards, so the aggregate keeps a
    /// drained shard's history instead of dropping it with its cache
    /// (monotonic up to requests racing the drain itself — see
    /// [`ShardedEngine::remove_shard`]).
    retired: Mutex<EngineStats>,
}

impl ShardedEngine {
    /// A sharded engine with the given configuration.
    pub fn new(config: ShardedConfig) -> ShardedEngine {
        let shards = config.resolved_shards();
        let shard_config = EngineConfig {
            cache_bytes: (config.engine.cache_bytes / shards).max(1),
            ..config.engine
        };
        let engines = (0..shards)
            .map(|_| Some(Arc::new(Engine::new(shard_config))))
            .collect();
        let topology = Arc::new(Topology {
            engines,
            map: ShardMap::new(shards, config.replicas),
        });
        ShardedEngine {
            config,
            shard_config,
            stripes: (0..TOPOLOGY_STRIPES)
                .map(|_| Stripe(RwLock::new(topology.clone())))
                .collect(),
            topology_mut: Mutex::new(()),
            retired: Mutex::new(EngineStats::default()),
        }
    }

    /// Runs `f` against the current topology snapshot through this
    /// thread's read stripe (see [`Stripe`]).
    fn with_topology<T>(&self, f: impl FnOnce(&Topology) -> T) -> T {
        let guard = self.stripes[stripe_slot() % TOPOLOGY_STRIPES]
            .0
            .read()
            .expect("topology stripe poisoned");
        f(&guard)
    }

    /// Swaps a new topology snapshot into every stripe. All stripe write
    /// locks are held simultaneously, so no reader observes a mix of old
    /// and new topologies. Callers hold `topology_mut`.
    fn install(&self, next: &Arc<Topology>) {
        let mut guards: Vec<_> = self
            .stripes
            .iter()
            .map(|s| s.0.write().expect("topology stripe poisoned"))
            .collect();
        for guard in &mut guards {
            **guard = next.clone();
        }
    }

    /// A sharded engine with default configuration (one shard per hardware
    /// thread).
    pub fn with_defaults() -> ShardedEngine {
        Self::new(ShardedConfig::default())
    }

    /// A default-configured engine with an explicit shard count.
    pub fn with_shards(shards: usize) -> ShardedEngine {
        Self::new(ShardedConfig {
            shards,
            ..ShardedConfig::default()
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Live shard count.
    pub fn num_shards(&self) -> usize {
        self.with_topology(|t| t.map.len())
    }

    /// The shard an instance fingerprint routes to.
    pub fn shard_for_fingerprint(&self, fingerprint: u64) -> usize {
        self.with_topology(|t| t.map.shard_for(fingerprint))
    }

    /// Which shards hold a fingerprint right now (the no-double-residency
    /// invariant says: never more than one at quiescence — see
    /// [`ShardedEngine::add_shard`] for the transient during a racing
    /// topology change).
    pub fn resident_shards(&self, fingerprint: u64) -> Vec<usize> {
        self.with_topology(|t| {
            t.live()
                .filter(|(_, e)| e.resident_fingerprints().contains(&fingerprint))
                .map(|(id, _)| id)
                .collect()
        })
    }

    /// Aggregated plus per-shard cache counters. The aggregate includes
    /// the hit/miss/eviction history of since-drained shards; entry and
    /// byte gauges cover only the live fleet.
    pub fn stats(&self) -> ShardedStats {
        let mut out = ShardedStats::default();
        {
            let retired = self.retired.lock().expect("retired stats poisoned");
            out.aggregate.hits = retired.hits;
            out.aggregate.misses = retired.misses;
            out.aggregate.evictions = retired.evictions;
        }
        self.with_topology(|topology| {
            for (id, engine) in topology.live() {
                let s = engine.stats();
                out.aggregate.hits += s.hits;
                out.aggregate.misses += s.misses;
                out.aggregate.evictions += s.evictions;
                out.aggregate.entries += s.entries;
                out.aggregate.bytes += s.bytes;
                out.aggregate.domains += s.domains;
                out.per_shard.push((id, s));
            }
        });
        out
    }

    // ---- routing ----

    fn engine_for(&self, fingerprint: u64) -> Arc<Engine> {
        self.with_topology(|t| t.engine(t.map.shard_for(fingerprint)))
    }

    fn shard_of_target(map: &ShardMap, target: &QueryTarget) -> usize {
        match target {
            QueryTarget::Automaton { nfa, length } => {
                map.shard_for(PreparedInstance::instance_fingerprint(nfa, *length))
            }
            QueryTarget::Handle(handle) => map.shard_for(handle.fingerprint()),
        }
    }

    // ---- sessions ----

    /// Opens a session on a domain object: the reduction runs (memoized) on
    /// the domain fingerprint's home shard, then the *instance* routes by
    /// its own fingerprint — so equal instances reached through different
    /// domains still share one shard and one compilation.
    pub fn prepare<Q: Queryable + ?Sized>(&self, queryable: &Q) -> InstanceHandle {
        let (nfa, length) = self
            .engine_for(queryable.domain_fingerprint())
            .domain_instance(queryable);
        self.prepare_nfa(&nfa, length)
    }

    /// A session handle for a raw `(automaton, length)` instance, resolved
    /// on its home shard.
    pub fn prepare_nfa(&self, nfa: &Arc<Nfa>, length: usize) -> InstanceHandle {
        self.engine_for(PreparedInstance::instance_fingerprint(nfa, length))
            .prepare_nfa(nfa, length)
    }

    /// The prepared instance for `(nfa, length)` — [`ShardedEngine::prepare_nfa`]
    /// without the handle wrapper.
    pub fn prepared(&self, nfa: &Arc<Nfa>, length: usize) -> Arc<PreparedInstance> {
        self.engine_for(PreparedInstance::instance_fingerprint(nfa, length))
            .prepared(nfa, length)
    }

    /// Inserts an externally constructed instance into its home shard — the
    /// shard-aware warm-restart hook behind
    /// [`crate::engine::SnapshotStore::warm_sharded`].
    pub fn insert_prepared(&self, inst: Arc<PreparedInstance>) -> InstanceHandle {
        self.engine_for(inst.fingerprint()).insert_prepared(inst)
    }

    // ---- typed queries ----

    /// Routed `COUNT` on a domain object (see [`Engine::count`]).
    ///
    /// # Errors
    /// Propagates FPRAS failure events when the FPRAS route fires.
    pub fn count<Q: Queryable + ?Sized>(&self, queryable: &Q) -> Result<RoutedCount, QueryError> {
        let handle = self.prepare(queryable);
        match self
            .query(&QueryRequest::on(&handle, QueryKind::Count, 0))
            .output?
        {
            crate::engine::QueryOutput::Count(routed) => Ok(routed),
            _ => unreachable!("Count returns Count"),
        }
    }

    /// Exact `COUNT` on a domain object (see [`Engine::count_exact`]).
    ///
    /// # Errors
    /// [`QueryError::NotUnambiguous`] on ambiguous instances.
    pub fn count_exact<Q: Queryable + ?Sized>(&self, queryable: &Q) -> Result<BigNat, QueryError> {
        Ok(self.prepare(queryable).instance().count_exact()?)
    }

    /// Streaming `ENUM` on a domain object (see [`Engine::enumerate`]).
    pub fn enumerate<'q, Q: Queryable + ?Sized>(&self, queryable: &'q Q) -> EnumCursor<'q, Q> {
        let handle = self.prepare(queryable);
        EnumCursor::new(queryable, WordCursor::fresh(handle.instance().clone()))
    }

    /// Reconstructs a typed cursor at a token's position (see
    /// [`Engine::resume`]).
    ///
    /// # Errors
    /// [`InvalidTokenError`] if the token does not belong to this domain
    /// object's instance or encodes an impossible position.
    pub fn resume<'q, Q: Queryable + ?Sized>(
        &self,
        queryable: &'q Q,
        token: &ResumeToken,
    ) -> Result<EnumCursor<'q, Q>, InvalidTokenError> {
        let handle = self.prepare(queryable);
        Ok(EnumCursor::new(
            queryable,
            WordCursor::resume(handle.instance().clone(), token)?,
        ))
    }

    /// `GEN` on a domain object (see [`Engine::sample`]). Deterministic in
    /// `(instance, engine seed, draw_seed)` — the shard layout never enters
    /// the stream.
    ///
    /// # Errors
    /// Propagates FPRAS failure events from the (cached) sketch build on
    /// the ambiguous route.
    pub fn sample<'q, Q: Queryable + ?Sized>(
        &self,
        queryable: &'q Q,
        draw_seed: u64,
    ) -> Result<GenStream<'q, Q>, QueryError> {
        let handle = self.prepare(queryable);
        let stream = self.gen_stream(&handle, draw_seed)?;
        Ok(GenStream::new(queryable, stream))
    }

    // ---- word-level sessions ----

    /// A raw-word cursor over a session handle (see [`Engine::cursor`]).
    pub fn cursor(&self, handle: &InstanceHandle) -> WordCursor {
        WordCursor::fresh(handle.instance().clone())
    }

    /// Reconstructs a raw-word cursor at a token's position (see
    /// [`Engine::resume_cursor`]).
    ///
    /// # Errors
    /// [`InvalidTokenError`] if the token does not belong to the handle's
    /// instance or encodes an impossible position.
    pub fn resume_cursor(
        &self,
        handle: &InstanceHandle,
        token: &ResumeToken,
    ) -> Result<WordCursor, InvalidTokenError> {
        WordCursor::resume(handle.instance().clone(), token)
    }

    /// A raw-word uniform draw stream over a session handle (see
    /// [`Engine::gen_stream`]).
    ///
    /// # Errors
    /// Propagates FPRAS failure events from the (cached) sketch build on
    /// the ambiguous route.
    pub fn gen_stream(
        &self,
        handle: &InstanceHandle,
        draw_seed: u64,
    ) -> Result<WordGenStream, QueryError> {
        self.engine_for(handle.fingerprint())
            .gen_stream(handle, draw_seed)
    }

    // ---- batch ----

    /// Answers one request on its home shard.
    pub fn query(&self, request: &QueryRequest) -> QueryResponse {
        self.query_batch(std::slice::from_ref(request))
            .pop()
            .expect("one response per request")
    }

    /// Answers a batch: requests are partitioned by home shard (preserving
    /// each shard's subsequence order, so per-instance duplicate semantics
    /// match the single engine exactly), shard batches execute concurrently,
    /// and responses return in request order.
    pub fn query_batch(&self, requests: &[QueryRequest]) -> Vec<QueryResponse> {
        if requests.is_empty() {
            return Vec::new();
        }
        let (engines, routes): (Vec<Arc<Engine>>, Vec<Vec<usize>>) =
            self.with_topology(|topology| {
                let mut by_shard: std::collections::BTreeMap<usize, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for (i, request) in requests.iter().enumerate() {
                    by_shard
                        .entry(Self::shard_of_target(&topology.map, &request.target))
                        .or_default()
                        .push(i);
                }
                by_shard
                    .into_iter()
                    .map(|(shard, indices)| (topology.engine(shard), indices))
                    .unzip()
            });
        let mut slots: Vec<Option<QueryResponse>> = (0..requests.len()).map(|_| None).collect();
        if engines.len() == 1 {
            // Single home shard: no fan-out thread needed.
            for (slot, response) in engines[0].query_batch(requests).into_iter().enumerate() {
                slots[routes[0][slot]] = Some(response);
            }
        } else {
            let answered: Vec<Vec<QueryResponse>> = std::thread::scope(|scope| {
                let handles: Vec<_> = engines
                    .iter()
                    .zip(&routes)
                    .map(|(engine, indices)| {
                        let sub: Vec<QueryRequest> =
                            indices.iter().map(|&i| requests[i].clone()).collect();
                        scope.spawn(move || engine.query_batch(&sub))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard batch thread"))
                    .collect()
            });
            for (indices, responses) in routes.iter().zip(answered) {
                for (&i, response) in indices.iter().zip(responses) {
                    slots[i] = Some(response);
                }
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every request routed"))
            .collect()
    }

    // ---- elasticity ----

    /// Adds a fresh shard to the fleet and migrates the instances it now
    /// owns out of their old shards (cache-to-cache — no recompilation).
    /// Returns the new shard's id.
    ///
    /// Topology changes are linearized with respect to each other; readers
    /// always see a complete snapshot (old or new, never a mix). Requests
    /// in flight during the swap may resolve through the previous snapshot
    /// — answers are unaffected (every answer is a pure function of the
    /// instance and seeds), but cache placement is eventually consistent:
    /// a resolution that raced the swap can leave a transient resident on
    /// the old owner, which converges on the next topology change or
    /// eviction. The strict no-double-residency invariant therefore holds
    /// at quiescence (no topology change mid-request), which is what the
    /// shard tests pin.
    ///
    /// Capacity note: each shard's byte budget is fixed at construction
    /// (`cache_bytes / initial shards`), so an added shard brings one more
    /// share of capacity — growing the fleet grows the fleet-total cache
    /// by design, mirroring how added hardware brings its own memory.
    pub fn add_shard(&self) -> usize {
        let _writer = self.topology_mut.lock().expect("topology writer poisoned");
        let current = self.with_topology(|t| t.clone());
        let id = current.engines.len();
        let mut next = current;
        next.map.add_shard(id);
        next.engines
            .push(Some(Arc::new(Engine::new(self.shard_config))));
        let next = Arc::new(next);
        // New routing first, then drain: an instance the new shard owns is
        // re-resolved there from the moment of the swap, and its old copy
        // is swept out right after.
        self.install(&next);
        let mut moved = Vec::new();
        for (shard, engine) in next.live() {
            if shard == id {
                continue;
            }
            moved.extend(engine.take_instances_where(|fp| next.map.shard_for(fp) == id));
        }
        let new_engine = next.engine(id);
        for inst in moved {
            new_engine.insert_prepared(inst);
        }
        id
    }

    /// Drains a shard: removes it from the ring and migrates its resident
    /// instances to their new home shards. Every other shard's residents
    /// are untouched (the consistent-hashing guarantee). Returns `false`
    /// if the shard is unknown, already drained, or the last one standing.
    /// Outstanding [`InstanceHandle`]s minted by the drained shard keep
    /// serving — they pin the artifact, not the shard. (See
    /// [`ShardedEngine::add_shard`] for the snapshot-swap semantics.)
    pub fn remove_shard(&self, id: usize) -> bool {
        let _writer = self.topology_mut.lock().expect("topology writer poisoned");
        let mut next = self.with_topology(|t| t.clone());
        if !next.map.remove_shard(id) {
            return false;
        }
        let drained = next.engines[id]
            .take()
            .expect("map had the shard, fleet must too");
        let next = Arc::new(next);
        self.install(&next);
        for inst in drained.take_instances_where(|_| true) {
            next.engine(next.map.shard_for(inst.fingerprint()))
                .insert_prepared(inst);
        }
        // Capture the drained shard's counter history only after the swap
        // and the migration sweep, so everything it recorded up to the
        // point new traffic stopped reaching it is carried over. (A
        // request that raced the swap with an already-resolved engine
        // reference may still record on the drained shard afterwards;
        // those last counts die with it — see the add_shard note on
        // eventual consistency.)
        {
            let s = drained.stats();
            let mut retired = self.retired.lock().expect("retired stats poisoned");
            retired.hits += s.hits;
            retired.misses += s.misses;
            retired.evictions += s.evictions;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::blowup_nfa;

    fn instance(k: usize) -> (Arc<Nfa>, usize) {
        (Arc::new(blowup_nfa(k)), 10usize)
    }

    #[test]
    fn routing_is_stable_and_unique() {
        let map = ShardMap::new(8, 64);
        for fp in 0..2000u64 {
            let owner = map.shard_for(fp);
            assert!(map.shard_ids().contains(&owner));
            assert_eq!(owner, map.shard_for(fp), "routing must be a function");
        }
        // A map holding the same shard set agrees on every key.
        let rebuilt = ShardMap::new(8, 64);
        for fp in 0..2000u64 {
            assert_eq!(map.shard_for(fp), rebuilt.shard_for(fp));
        }
    }

    #[test]
    fn virtual_nodes_spread_keys_over_every_shard() {
        let map = ShardMap::new(8, 64);
        let mut seen = [0usize; 8];
        for fp in 0..4000u64 {
            seen[map.shard_for(fp)] += 1;
        }
        for (shard, &count) in seen.iter().enumerate() {
            assert!(count > 0, "shard {shard} owns no keys");
        }
    }

    #[test]
    fn sharded_answers_match_single_engine() {
        let single = Engine::with_defaults();
        let sharded = ShardedEngine::with_shards(4);
        for k in 3..6 {
            let (nfa, n) = instance(k);
            let a = single
                .query(&QueryRequest::automaton(
                    nfa.clone(),
                    n,
                    QueryKind::CountExact,
                    0,
                ))
                .output
                .unwrap();
            let b = sharded
                .query(&QueryRequest::automaton(nfa, n, QueryKind::CountExact, 0))
                .output
                .unwrap();
            let (crate::engine::QueryOutput::Exact(a), crate::engine::QueryOutput::Exact(b)) =
                (a, b)
            else {
                panic!("exact counts expected");
            };
            assert_eq!(a, b);
        }
    }

    #[test]
    fn instances_resolve_on_exactly_one_shard() {
        let sharded = ShardedEngine::with_shards(4);
        let mut fps = Vec::new();
        for k in 3..8 {
            let (nfa, n) = instance(k);
            let handle = sharded.prepare_nfa(&nfa, n);
            assert!(!handle.was_cached());
            assert!(sharded.prepare_nfa(&nfa, n).was_cached(), "same shard hits");
            fps.push(handle.fingerprint());
        }
        for fp in fps {
            assert_eq!(
                sharded.resident_shards(fp),
                vec![sharded.shard_for_fingerprint(fp)],
                "an instance lives on its home shard and nowhere else"
            );
        }
        let stats = sharded.stats();
        assert_eq!(stats.aggregate.misses, 5);
        assert_eq!(stats.aggregate.hits, 5);
        assert_eq!(stats.aggregate.entries, 5);
    }

    #[test]
    fn batches_preserve_order_and_duplicate_semantics() {
        let sharded = ShardedEngine::with_shards(4);
        let (a, n) = instance(4);
        let (b, _) = instance(5);
        let reqs = vec![
            QueryRequest::automaton(a.clone(), n, QueryKind::CountExact, 0),
            QueryRequest::automaton(b.clone(), n, QueryKind::CountExact, 0),
            QueryRequest::automaton(a.clone(), n, QueryKind::CountExact, 0),
            QueryRequest::automaton(b, n, QueryKind::CountExact, 0),
            QueryRequest::automaton(a, n, QueryKind::CountExact, 0),
        ];
        let responses = sharded.query_batch(&reqs);
        assert_eq!(
            responses.iter().map(|r| r.cache_hit).collect::<Vec<_>>(),
            vec![false, false, true, true, true],
            "k duplicates = 1 miss + (k-1) hits, per instance, across shards"
        );
        let stats = sharded.stats();
        assert_eq!((stats.aggregate.hits, stats.aggregate.misses), (3, 2));
    }

    #[test]
    fn add_shard_migrates_only_what_it_now_owns() {
        let sharded = ShardedEngine::with_shards(3);
        let mut homes = std::collections::HashMap::new();
        for k in 3..11 {
            let (nfa, n) = instance(k);
            let handle = sharded.prepare_nfa(&nfa, n);
            homes.insert(
                handle.fingerprint(),
                sharded.shard_for_fingerprint(handle.fingerprint()),
            );
        }
        let new = sharded.add_shard();
        assert_eq!(sharded.num_shards(), 4);
        for (&fp, &old_home) in &homes {
            let now = sharded.shard_for_fingerprint(fp);
            assert!(
                now == old_home || now == new,
                "keys only move to the new shard"
            );
            assert_eq!(
                sharded.resident_shards(fp),
                vec![now],
                "migrated in cache too"
            );
        }
        // Migration moved artifacts, not recompilations: no new misses.
        assert_eq!(sharded.stats().aggregate.misses, 8);
    }

    #[test]
    fn remove_shard_drains_into_the_survivors() {
        let sharded = ShardedEngine::with_shards(4);
        let mut handles = Vec::new();
        for k in 3..11 {
            let (nfa, n) = instance(k);
            handles.push((sharded.prepare_nfa(&nfa, n), nfa, n));
        }
        let victim = sharded.shard_for_fingerprint(handles[0].0.fingerprint());
        assert!(sharded.remove_shard(victim));
        assert!(!sharded.remove_shard(victim), "already drained");
        assert_eq!(sharded.num_shards(), 3);
        for (handle, nfa, n) in &handles {
            let fp = handle.fingerprint();
            let home = sharded.shard_for_fingerprint(fp);
            assert_ne!(home, victim);
            assert_eq!(sharded.resident_shards(fp), vec![home]);
            // Still served warm — the drained shard's artifacts migrated.
            assert!(sharded.prepare_nfa(nfa, *n).was_cached());
        }
        assert_eq!(sharded.stats().aggregate.misses, 8, "no recompilation");
    }

    #[test]
    fn last_shard_cannot_be_removed() {
        let sharded = ShardedEngine::with_shards(1);
        assert!(!sharded.remove_shard(0));
        assert_eq!(sharded.num_shards(), 1);
    }

    #[test]
    fn byte_budget_is_divided_across_shards() {
        let config = ShardedConfig {
            engine: EngineConfig {
                cache_bytes: 64 << 20,
                ..EngineConfig::default()
            },
            shards: 4,
            ..ShardedConfig::default()
        };
        let sharded = ShardedEngine::new(config);
        assert_eq!(sharded.shard_config.cache_bytes, 16 << 20);
    }
}
