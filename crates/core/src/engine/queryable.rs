//! The [`Queryable`] trait: one typed serving surface for every domain.
//!
//! The paper's applications (§3–§4) all work the same way — a
//! witness-preserving reduction onto the complete problem MEM-NFA
//! (Proposition 12), after which `ENUM` / `COUNT` / `GEN` answers transport
//! back untouched (Proposition 11). The pre-redesign API told that story only
//! halfway: each application crate exposed its own `to_mem_nfa`-style entry,
//! and callers hand-decoded raw [`Word`] witnesses back into assignments,
//! paths, or mappings. `Queryable` completes the round trip:
//!
//! * [`Queryable::to_instance`] is the reduction (an automaton and a witness
//!   length, behind an `Arc` so the engine never deep-copies it);
//! * [`Queryable::decode`] is the inverse witness map, turning each raw word
//!   into the domain's own value type ([`Queryable::Output`]);
//! * [`Queryable::domain_fingerprint`] names the instance stably, so the
//!   engine can skip re-running the reduction for a domain object it has
//!   already prepared (the session half of the redesign — see
//!   [`Engine::prepare`](crate::engine::Engine::prepare)).
//!
//! Every application type implements it — `DnfFormula` decodes to assignment
//! bitmasks, `RpqInstance` to graph paths, `SpannerInstance` to span
//! mappings, `RegularGrammar` and the raw identity instances to the words
//! themselves — and the generic engine entry points
//! ([`count`](crate::engine::Engine::count),
//! [`enumerate`](crate::engine::Engine::enumerate),
//! [`sample`](crate::engine::Engine::sample)) serve all of them from one
//! shared prepared-instance cache.

use std::sync::Arc;

use lsc_automata::{Nfa, Symbol, Word};

use crate::engine::PreparedInstance;
use crate::MemNfa;

/// A domain problem reducible to MEM-NFA with a typed witness decoding.
///
/// Implementations must keep the three methods consistent: `decode` must be
/// meaningful for every witness of the instance `to_instance` returns, and
/// `domain_fingerprint` must change whenever `to_instance` would (it may be —
/// and usually is — coarser than object identity: two equal formulas share a
/// fingerprint, which is exactly what lets the engine dedupe them).
///
/// Implementing the trait is all it takes to serve a new domain through the
/// engine:
///
/// ```
/// use std::sync::Arc;
/// use lsc_automata::regex::Regex;
/// use lsc_automata::{Alphabet, Nfa, Word};
/// use lsc_core::engine::{domain_fingerprint, Engine, Queryable};
///
/// /// Length-`n` bit strings ending in `11`, decoded to their popcount.
/// struct EndsIn11 {
///     length: usize,
/// }
///
/// impl Queryable for EndsIn11 {
///     type Output = u32;
///
///     fn to_instance(&self) -> (Arc<Nfa>, usize) {
///         let ab = Alphabet::binary();
///         let nfa = Regex::parse("(0|1)*11", &ab).unwrap().compile();
///         (Arc::new(nfa), self.length)
///     }
///
///     fn decode(&self, word: &[lsc_automata::Symbol]) -> u32 {
///         word.iter().filter(|&&s| s == 1).count() as u32
///     }
///
///     fn domain_fingerprint(&self) -> u64 {
///         domain_fingerprint("ends-in-11", [self.length as u64])
///     }
/// }
///
/// let engine = Engine::with_defaults();
/// let domain = EndsIn11 { length: 6 };
/// let popcounts: Vec<u32> = engine.enumerate(&domain).collect();
/// assert!(popcounts.iter().all(|&ones| ones >= 2));
/// // The reduction ran once; repeat queries reuse the session.
/// let again: Vec<u32> = engine.enumerate(&domain).collect();
/// assert_eq!(popcounts, again);
/// assert_eq!(engine.stats().domains, 1);
/// ```
pub trait Queryable {
    /// The domain's witness type: what a raw word decodes to.
    type Output;

    /// The witness-preserving reduction: an automaton `N` and length `n`
    /// such that the domain's witnesses are in bijection with `L_n(N)`.
    /// May be expensive (it *is* the reduction); the engine memoizes it per
    /// [`Queryable::domain_fingerprint`], so it runs once per distinct
    /// domain object, not once per query.
    fn to_instance(&self) -> (Arc<Nfa>, usize);

    /// Decodes one witness word into the domain value it encodes. Takes a
    /// slice so streaming callers (cursor pages) can decode straight off a
    /// borrowed buffer without materializing a `Word` per witness.
    fn decode(&self, word: &[Symbol]) -> Self::Output;

    /// A stable 64-bit name for this instance: equal domain objects must
    /// agree, distinct ones should (with overwhelming probability) differ —
    /// use [`domain_fingerprint`] with a per-type tag to salt the hash so
    /// different domains never collide by construction. Must be cheap: the
    /// engine calls it on every generic entry point.
    fn domain_fingerprint(&self) -> u64;
}

/// FNV-1a over a type tag and a stream of 64-bit words — the helper every
/// [`Queryable::domain_fingerprint`] implementation is built from. The tag
/// keeps domains apart (a DNF formula and an nOBDD hashing the same payload
/// still get distinct fingerprints); the parts are whatever ordered data
/// determines the reduction. Stable across runs and platforms.
pub fn domain_fingerprint(tag: &str, parts: impl IntoIterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: &mut u64, v: u64) {
        for byte in v.to_le_bytes() {
            *h ^= u64::from(byte);
            *h = h.wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for byte in tag.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(PRIME);
    }
    mix(&mut h, u64::MAX); // domain separator between tag and payload
    for part in parts {
        mix(&mut h, part);
    }
    h
}

/// The identity instance: a raw `(automaton, length)` pair whose witnesses
/// *are* the words. This is the `Queryable` the paper's complete problem
/// corresponds to; everything else reduces to it.
impl Queryable for (Arc<Nfa>, usize) {
    type Output = Word;

    fn to_instance(&self) -> (Arc<Nfa>, usize) {
        (self.0.clone(), self.1)
    }

    fn decode(&self, word: &[Symbol]) -> Word {
        word.to_vec()
    }

    fn domain_fingerprint(&self) -> u64 {
        domain_fingerprint(
            "mem-nfa",
            [PreparedInstance::instance_fingerprint(&self.0, self.1)],
        )
    }
}

/// A [`MemNfa`] façade is the same identity instance, already wrapped: the
/// engine serves it without re-fingerprinting the automaton (the prepared
/// instance inside already knows its key).
impl Queryable for MemNfa {
    type Output = Word;

    fn to_instance(&self) -> (Arc<Nfa>, usize) {
        (self.prepared().nfa_arc().clone(), self.length())
    }

    fn decode(&self, word: &[Symbol]) -> Word {
        word.to_vec()
    }

    fn domain_fingerprint(&self) -> u64 {
        domain_fingerprint("mem-nfa", [self.prepared().fingerprint()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::blowup_nfa;

    #[test]
    fn raw_pair_and_memnfa_agree_on_fingerprints() {
        let nfa = blowup_nfa(3);
        let raw = (Arc::new(nfa.clone()), 8usize);
        let façade = MemNfa::new(nfa, 8);
        assert_eq!(raw.domain_fingerprint(), façade.domain_fingerprint());
        let (a, n) = raw.to_instance();
        assert_eq!(n, 8);
        assert_eq!(a.fingerprint(), façade.nfa().fingerprint());
    }

    #[test]
    fn tags_separate_domains() {
        assert_ne!(
            domain_fingerprint("dnf", [1, 2, 3]),
            domain_fingerprint("nobdd", [1, 2, 3])
        );
        assert_ne!(
            domain_fingerprint("dnf", [1, 2]),
            domain_fingerprint("dnf", [1, 2, 3])
        );
        assert_eq!(
            domain_fingerprint("dnf", [1, 2, 3]),
            domain_fingerprint("dnf", [1, 2, 3])
        );
    }
}
