//! The unified query engine: typed domain sessions, streaming cursors, and
//! the prepared-instance cache behind them.
//!
//! The paper routes every application through the complete problems
//! `MEM-NFA` / `MEM-UFA` (Proposition 12), so one instance type funnels all
//! the traffic — and under repeated traffic, per-call recompilation (of the
//! unrolled DAG, the ambiguity classification, the counting tables, the
//! FPRAS sketches) dominates the cost of actually answering. This module
//! implements the preprocessing/serving split the enumeration-complexity
//! literature takes as primitive, end to end:
//!
//! * [`Queryable`] — the typed serving surface: every domain type (DNF
//!   formulas, RPQ instances, spanners, regular grammars, nOBDDs, raw
//!   automata) names its reduction, its witness decoding, and a stable
//!   domain fingerprint, and the generic [`Engine`] entry points
//!   ([`Engine::count`], [`Engine::enumerate`], [`Engine::sample`]) serve
//!   all of them from one shared cache, returning domain values instead of
//!   raw words.
//! * [`InstanceHandle`] / [`QueryTarget`] — the session layer:
//!   [`Engine::prepare`] resolves a domain object to a cheap handle once,
//!   and requests carry handles or `Arc`'d automata — no per-request
//!   automaton copies anywhere.
//! * [`EnumCursor`] / [`WordCursor`] / [`ResumeToken`] — streaming,
//!   resumable `ENUM`: witnesses are produced per `next()` call (preserving
//!   the paper's delay guarantees), and a cursor's position serializes to a
//!   compact token whose resumption is bit-identical to an uninterrupted
//!   run.
//! * [`GenStream`] / [`WordGenStream`] — amortized `GEN`: one stream keeps
//!   the exact table sampler or FPRAS sketch (and its scratch state) alive
//!   across draws.
//! * [`PreparedInstance`] — the compile-once artifact: fingerprint, CSR
//!   unrolled DAG, ambiguity classification, determinization probe, and the
//!   lazily-materialized per-problem tables (exact DP counts, FPRAS sketch).
//! * [`Engine`] — a fingerprint-keyed, byte-capped LRU cache of prepared
//!   instances, the domain-session memo, and the batched [`QueryRequest`] /
//!   [`QueryResponse`] compatibility API with deterministic multi-threaded
//!   dispatch (rebuilt on top of the cursor surface).
//! * [`ShardedEngine`] / [`ShardMap`] — N independent engines behind a
//!   consistent-hash shard map, so cache resolution scales with cores: every
//!   instance fingerprint routes to exactly one shard, shards can be added
//!   or drained with bounded key movement, and answers stay bit-identical
//!   to the single-engine path.
//! * [`count_routed`] and the route vocabulary ([`CountRoute`],
//!   [`RouterConfig`], [`RoutedCount`]) — the ambiguity-aware counting
//!   router, with routing decisions cached per instance.
//!
//! [`crate::MemNfa`] is a thin convenience wrapper over one private
//! [`PreparedInstance`]; the engine is the same machinery with sharing
//! across instances, domains, and requests.

mod cache;
mod cursor;
mod prepared;
mod queryable;
mod router;
mod shard;
mod snapshot;

pub use cache::{
    Engine, EngineConfig, EngineStats, InstanceHandle, QueryError, QueryKind, QueryOutput,
    QueryRequest, QueryResponse, QueryTarget,
};
pub use cursor::{
    EnumCursor, GenStream, InvalidTokenError, ResumeToken, WordCursor, WordGenStream,
};
pub use prepared::PreparedInstance;
pub use queryable::{domain_fingerprint, Queryable};
pub use router::{count_routed, CountRoute, RoutedCount, RouterConfig};
pub use shard::{ShardMap, ShardedConfig, ShardedEngine, ShardedStats};
pub use snapshot::{SnapshotError, SnapshotStore, SweepReport, WarmReport};
