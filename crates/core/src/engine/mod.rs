//! The prepared-instance query engine: compile once, serve `ENUM` / `COUNT` /
//! `GEN` from a shared cached artifact.
//!
//! The paper routes every application through the complete problems
//! `MEM-NFA` / `MEM-UFA` (Proposition 12), so one instance type funnels all
//! the traffic — and under repeated traffic, per-call recompilation (of the
//! unrolled DAG, the ambiguity classification, the counting tables, the
//! FPRAS sketches) dominates the cost of actually answering. This module
//! implements the preprocessing/serving split the enumeration-complexity
//! literature takes as primitive:
//!
//! * [`PreparedInstance`] — the compile-once artifact: fingerprint, CSR
//!   unrolled DAG, ambiguity classification, determinization probe, and the
//!   lazily-materialized per-problem tables (exact DP counts, FPRAS sketch).
//! * [`Engine`] — a fingerprint-keyed, byte-capped LRU cache of prepared
//!   instances plus the batched [`QueryRequest`] / [`QueryResponse`] API,
//!   with deterministic multi-threaded dispatch.
//! * [`count_routed`] and the route vocabulary ([`CountRoute`],
//!   [`RouterConfig`], [`RoutedCount`]) — the ambiguity-aware counting
//!   router, folded in from the former standalone `count::router` so routing
//!   decisions are cached per instance rather than re-probed per request.
//!
//! [`crate::MemNfa`] is a thin convenience wrapper over one private
//! [`PreparedInstance`]; the engine is the same machinery with sharing
//! across instances and requests.

mod cache;
mod prepared;
mod router;

pub use cache::{
    Engine, EngineConfig, EngineStats, QueryError, QueryKind, QueryOutput, QueryRequest,
    QueryResponse,
};
pub use prepared::PreparedInstance;
pub use router::{count_routed, CountRoute, RoutedCount, RouterConfig};
