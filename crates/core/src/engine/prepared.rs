//! The compile-once instance artifact behind the engine.
//!
//! The enumeration-complexity literature (Capelli & Strozecki; Strozecki's
//! incremental-delay survey) separates every enumeration algorithm into an
//! explicit **preprocessing phase** and a **serving phase** whose cost is
//! measured per answer. The paper's algorithms have exactly that shape — the
//! unrolled DAG of Lemma 15 *is* the preprocessing artifact for all three
//! problem families — but the original `MemNfa` façade rebuilt it (and
//! re-derived the ambiguity classification) on every call.
//! [`PreparedInstance`] makes the split operational: everything derivable
//! from `(N, 0^n)` alone is computed at most once, cached behind
//! [`OnceLock`]s, and shared by `COUNT`, `ENUM`, and `GEN` requests.
//!
//! Artifact contents, in dependency order:
//!
//! 1. the **fingerprint** (structural hash + length) the engine cache keys on;
//! 2. the **CSR unrolled DAG** (`Arc`-shared with every enumerator, sampler,
//!    and sketch derived from it);
//! 3. the **ambiguity classification** — the `is_unambiguous` product check,
//!    and optionally the full Weber–Seidl degree;
//! 4. the **capped determinization probe** of the counting router;
//! 5. the per-problem tables, lazily materialized on first use: the exact
//!    completion-count table (UFA route: exact `COUNT` + exact `GEN`), and
//!    the FPRAS sketch state (ambiguous route: approximate `COUNT` +
//!    Las Vegas `GEN`).
//!
//! Everything cached here is a pure function of the instance (the FPRAS
//! sketch additionally of an explicit seed), so caching is invisible to
//! callers: warm answers are bit-identical to cold ones.

use std::sync::{Arc, Mutex, OnceLock};

use lsc_arith::{BigFloat, BigNat};
use lsc_automata::ops::{ambiguity_degree, determinize_capped, is_unambiguous, AmbiguityDegree};
use lsc_automata::unroll::UnrolledDag;
use lsc_automata::{Dfa, Nfa, Word};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::count::exact::NotUnambiguousError;
use crate::engine::router::{CountRoute, RoutedCount, RouterConfig};
use crate::enumerate::{ConstantDelayEnumerator, PolyDelayEnumerator};
use crate::fpras::{run_fpras_on, FprasError, FprasParams, FprasState};
use crate::sample::TableSampler;

/// A compiled MEM-NFA instance `(N, 0^n)`: pay the preprocessing once, serve
/// `COUNT` / `ENUM` / `GEN` from the shared artifact.
///
/// All interior caches are [`OnceLock`]s, so a `PreparedInstance` is `Sync`
/// and can serve concurrent requests (the engine's batched dispatch relies on
/// this); whichever request needs a table first materializes it, and every
/// later request reads the same memory.
pub struct PreparedInstance {
    nfa: Arc<Nfa>,
    length: usize,
    fingerprint: u64,
    dag: OnceLock<Arc<UnrolledDag>>,
    unambiguous: OnceLock<bool>,
    degree: OnceLock<AmbiguityDegree>,
    /// `(cap probed with, result)` of the router's capped subset
    /// construction. A `Mutex` rather than a `OnceLock` because a larger cap
    /// legitimately re-probes (see [`PreparedInstance::determinized_within`]);
    /// the stored DFA is the same full subset construction whichever cap
    /// first succeeded, so dependent caches stay valid.
    probe: Mutex<Option<(usize, Option<Arc<Dfa>>)>>,
    /// Exact word count on the determinized route (`dfa.count_words(n)`).
    det_count: OnceLock<BigNat>,
    completions: OnceLock<Arc<Vec<BigNat>>>,
    /// Memoized byte size of `completions` (immutable once built).
    completions_bytes: OnceLock<usize>,
    /// The cached FPRAS sketch, tagged with the `(params, seed)` it was
    /// built from so a caller with a different configuration is never served
    /// a foreign sketch (see [`PreparedInstance::fpras_sketch`]).
    sketch: OnceLock<(SketchKey, Result<Arc<FprasState>, FprasError>)>,
}

/// The value-relevant FPRAS configuration plus the build seed: every field
/// of [`FprasParams`] that can change a computed estimate or sample
/// (`threads` is excluded — the estimates are bit-identical at any thread
/// count by construction, pinned by the equivalence suite).
type SketchKey = (u64, usize, usize, u64, bool, bool, bool, bool);

fn sketch_key(params: &FprasParams, seed: u64) -> SketchKey {
    (
        seed,
        params.k,
        params.attempts,
        params.rejection_constant.to_bits(),
        params.exact_handling,
        params.recompute_membership,
        params.weight_cache,
        params.quadratic_estimator,
    )
}

impl PreparedInstance {
    /// Wraps an instance without materializing anything: every table is built
    /// on first use. This is what [`crate::MemNfa`] holds, so constructing a
    /// façade instance stays free.
    pub fn new(nfa: Nfa, length: usize) -> Self {
        Self::from_arc(Arc::new(nfa), length)
    }

    /// [`PreparedInstance::new`] over an already-shared automaton — the
    /// engine's resolution path: a cache miss clones only the `Arc`, never
    /// the transition table.
    pub fn from_arc(nfa: Arc<Nfa>, length: usize) -> Self {
        let fingerprint = Self::instance_fingerprint(&nfa, length);
        PreparedInstance {
            nfa,
            length,
            fingerprint,
            dag: OnceLock::new(),
            unambiguous: OnceLock::new(),
            degree: OnceLock::new(),
            probe: Mutex::new(None),
            det_count: OnceLock::new(),
            completions: OnceLock::new(),
            completions_bytes: OnceLock::new(),
            sketch: OnceLock::new(),
        }
    }

    /// The explicit preprocessing phase: builds the unrolled DAG and decides
    /// ambiguity up front, so the first query is as cheap as every later one.
    pub fn prepare(nfa: Nfa, length: usize) -> Self {
        let inst = Self::new(nfa, length);
        inst.dag();
        inst.is_unambiguous();
        inst
    }

    /// Reconstructs an instance from persisted snapshot parts (see
    /// [`crate::engine::SnapshotStore`]): the classification and the
    /// big-integer tables are pre-seeded instead of recomputed, and the CSR
    /// DAG — a deterministic linear-time rebuild — is materialized eagerly so
    /// no compile work is left for the serving path. Every pre-seeded value
    /// is a pure function of `(nfa, length)`, so a restored instance answers
    /// bit-identically to a freshly compiled one.
    pub fn from_snapshot_parts(
        nfa: Arc<Nfa>,
        length: usize,
        unambiguous: Option<bool>,
        degree: Option<AmbiguityDegree>,
        completions: Option<Vec<BigNat>>,
        det_count: Option<BigNat>,
    ) -> Self {
        let inst = Self::from_arc(nfa, length);
        if let Some(u) = unambiguous {
            let _ = inst.unambiguous.set(u);
        }
        if let Some(d) = degree {
            let _ = inst.degree.set(d);
        }
        if let Some(c) = completions {
            let _ = inst.completions.set(Arc::new(c));
        }
        if let Some(c) = det_count {
            let _ = inst.det_count.set(c);
        }
        inst.dag();
        inst
    }

    /// The snapshot parts currently materialized on this instance —
    /// `(unambiguous, degree, completion table, determinized count)`, each
    /// `None` if never computed. This is the save half of the snapshot
    /// round trip; [`PreparedInstance::from_snapshot_parts`] is the load
    /// half.
    // the tuple mirrors the four optional snapshot payload sections one-to-one;
    // a named struct would just restate the §5.2 layout in a second place
    #[allow(clippy::type_complexity)]
    pub fn snapshot_parts(
        &self,
    ) -> (
        Option<bool>,
        Option<AmbiguityDegree>,
        Option<&Arc<Vec<BigNat>>>,
        Option<&BigNat>,
    ) {
        let unambiguous = match self.degree.get() {
            Some(&d) => Some(d == AmbiguityDegree::Unambiguous),
            None => self.unambiguous.get().copied(),
        };
        (
            unambiguous,
            self.degree.get().copied(),
            self.completions.get(),
            self.det_count.get(),
        )
    }

    /// The cached FPRAS sketch's persistable parts — the build seed and the
    /// successfully built state — or `None` when nothing (or only a failed
    /// build) is cached. The save half of sketch persistence;
    /// [`PreparedInstance::seed_sketch`] is the load half. The rest of the
    /// caching key travels with the state itself ([`FprasState::params`]).
    pub fn sketch_snapshot(&self) -> Option<(u64, &Arc<FprasState>)> {
        match self.sketch.get() {
            Some(((seed, ..), Ok(state))) => Some((*seed, state)),
            _ => None,
        }
    }

    /// Pre-seeds the sketch cache from persisted parts (the snapshot load
    /// path): a later [`PreparedInstance::fpras_sketch`] call with the same
    /// `(params, seed)` is served the restored state — bit-identical to the
    /// cold build it was saved from — while any other `(params, seed)`
    /// still gets a fresh uncached build, exactly as with a live-built
    /// cache entry. A no-op if a sketch is already cached.
    pub fn seed_sketch(&self, seed: u64, state: Arc<FprasState>) {
        let key = sketch_key(state.params(), seed);
        let _ = self.sketch.set((key, Ok(state)));
    }

    /// The automaton `N`.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The automaton behind its shared handle (for constructing further
    /// artifact-sharing views).
    pub fn nfa_arc(&self) -> &Arc<Nfa> {
        &self.nfa
    }

    /// The witness length `n`.
    pub fn length(&self) -> usize {
        self.length
    }

    /// The cache key: the automaton's structural hash mixed with the length.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The fingerprint a [`PreparedInstance`] over `(nfa, length)` would
    /// carry — computable without building one, so raw-instance `Queryable`
    /// implementations and resume-token validation agree on the key.
    pub fn instance_fingerprint(nfa: &Nfa, length: usize) -> u64 {
        nfa.fingerprint()
            .wrapping_add((length as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The shared unrolled DAG (built on first access).
    pub fn dag(&self) -> &Arc<UnrolledDag> {
        self.dag
            .get_or_init(|| Arc::new(UnrolledDag::build(&self.nfa, self.length)))
    }

    /// Is this a MEM-UFA instance? Decided once; reuses the Weber–Seidl
    /// degree when that has already been computed.
    pub fn is_unambiguous(&self) -> bool {
        if let Some(&d) = self.degree.get() {
            return d == AmbiguityDegree::Unambiguous;
        }
        *self.unambiguous.get_or_init(|| is_unambiguous(&self.nfa))
    }

    /// The Weber–Seidl ambiguity classification (computed once).
    pub fn ambiguity(&self) -> AmbiguityDegree {
        *self.degree.get_or_init(|| ambiguity_degree(&self.nfa))
    }

    /// The membership test `(x, y) ∈ R` of the p-relation (§2.1).
    pub fn check_witness(&self, word: &[u32]) -> bool {
        word.len() == self.length && self.nfa.accepts(word)
    }

    /// Does any witness exist? Free once the DAG is built.
    pub fn exists_witness(&self) -> bool {
        !self.dag().is_empty()
    }

    /// The shared completion-count table (`|{y : y completes v}|` per DAG
    /// vertex) — the §5.3.2 dynamic program, materialized once and reused by
    /// exact counting and the exact uniform sampler.
    pub fn completion_table(&self) -> &Arc<Vec<BigNat>> {
        self.completions
            .get_or_init(|| Arc::new(self.dag().completion_counts()))
    }

    /// The number of accepting *runs* — equals the witness count iff the
    /// instance is unambiguous.
    pub fn count_paths(&self) -> BigNat {
        match self.dag().start() {
            None => BigNat::zero(),
            Some(s) => self.completion_table()[s].clone(),
        }
    }

    /// Exact `|W|` in polynomial time — Theorem 5, MEM-UFA only.
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn count_exact(&self) -> Result<BigNat, NotUnambiguousError> {
        if !self.is_unambiguous() {
            return Err(NotUnambiguousError);
        }
        Ok(self.count_paths())
    }

    /// Constant-delay enumeration over the shared DAG — Theorem 5, MEM-UFA
    /// only.
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn enumerate_constant_delay(&self) -> Result<ConstantDelayEnumerator, NotUnambiguousError> {
        if !self.is_unambiguous() {
            return Err(NotUnambiguousError);
        }
        Ok(ConstantDelayEnumerator::from_dag(self.dag().clone()))
    }

    /// Polynomial-delay enumeration over the shared DAG — any instance.
    pub fn enumerate(&self) -> PolyDelayEnumerator {
        PolyDelayEnumerator::from_parts(self.nfa.clone(), self.dag().clone())
    }

    /// Exact uniform sampler over the shared completion table — Theorem 5,
    /// MEM-UFA only.
    ///
    /// # Errors
    /// [`NotUnambiguousError`] on ambiguous instances.
    pub fn uniform_sampler(&self) -> Result<TableSampler, NotUnambiguousError> {
        if !self.is_unambiguous() {
            return Err(NotUnambiguousError);
        }
        Ok(TableSampler::from_parts(
            self.dag().clone(),
            self.completion_table().clone(),
        ))
    }

    /// One-shot FPRAS run over the shared DAG, with caller-owned randomness —
    /// the compatibility path behind [`crate::MemNfa::fpras_state`]. Not
    /// cached (the result depends on `rng`); use [`PreparedInstance::fpras_sketch`]
    /// for the engine's cached, seed-keyed variant.
    ///
    /// # Errors
    /// Propagates the FPRAS failure events.
    pub fn run_fpras<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<FprasState, FprasError> {
        run_fpras_on(self.nfa.clone(), self.dag().clone(), params, rng)
    }

    /// The cached FPRAS sketch: built once from `StdRng::seed_from_u64(seed)`
    /// and served to every later caller with the same `(params, seed)` (the
    /// engine derives `seed` deterministically from its config and the
    /// fingerprint, so warm answers are bit-identical to a cold engine's).
    /// A caller whose `(params, seed)` differs from what the cache holds is
    /// *not* served the foreign sketch — it gets a fresh uncached build,
    /// still deterministic in its own arguments — so one caller can never
    /// poison another's answers.
    ///
    /// # Errors
    /// Propagates the FPRAS failure events (cached for the caching key: a
    /// failed build is not retried).
    pub fn fpras_sketch(
        &self,
        params: FprasParams,
        seed: u64,
    ) -> Result<Arc<FprasState>, FprasError> {
        let key = sketch_key(&params, seed);
        let (cached_key, result) = self.sketch.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            (key, self.run_fpras(params, &mut rng).map(Arc::new))
        });
        if *cached_key == key {
            return result.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        self.run_fpras(params, &mut rng).map(Arc::new)
    }

    /// The router's capped subset-construction probe, cached per-cap-regime:
    /// a successful probe serves every later call whose cap admits the DFA,
    /// a failed probe is conclusive for all smaller-or-equal caps, and a
    /// *larger* cap re-probes — so the answer for any given cap is exactly
    /// what the standalone router computed, just never twice.
    pub(crate) fn determinized_within(&self, cap: usize) -> Option<Arc<Dfa>> {
        if cap == 0 {
            return None;
        }
        let mut probe = self.probe.lock().expect("probe lock poisoned");
        match &*probe {
            Some((_, Some(dfa))) => {
                return (dfa.num_states() <= cap).then(|| dfa.clone());
            }
            Some((probed_cap, None)) if cap <= *probed_cap => return None,
            _ => {}
        }
        let result = determinize_capped(&self.nfa, cap).map(Arc::new);
        *probe = Some((cap, result.clone()));
        result
    }

    /// Routed `|W|` over the cached classification, probe, and tables; the
    /// caller supplies the randomness for the FPRAS route (re-run per call —
    /// the behavior of the original standalone router, minus all the
    /// re-probing).
    ///
    /// # Errors
    /// Propagates [`FprasError`] when the FPRAS route fires.
    pub fn count_routed<R: Rng + ?Sized>(
        &self,
        config: &RouterConfig,
        rng: &mut R,
    ) -> Result<RoutedCount, FprasError> {
        self.count_routed_inner(config, |params| {
            let mut state_rng = rng;
            self.run_fpras(params, &mut state_rng).map(|s| s.estimate())
        })
    }

    /// Routed `|W|` served from the cached FPRAS sketch when the FPRAS route
    /// fires — the engine's warm path: repeated `COUNT` requests on the same
    /// instance re-run nothing.
    ///
    /// # Errors
    /// Propagates [`FprasError`] when the FPRAS route fires and the (cached)
    /// sketch build failed.
    pub fn count_routed_cached(
        &self,
        config: &RouterConfig,
        sketch_seed: u64,
    ) -> Result<RoutedCount, FprasError> {
        self.count_routed_inner(config, |params| {
            self.fpras_sketch(params, sketch_seed).map(|s| s.estimate())
        })
    }

    fn count_routed_inner(
        &self,
        config: &RouterConfig,
        fpras_estimate: impl FnOnce(FprasParams) -> Result<BigFloat, FprasError>,
    ) -> Result<RoutedCount, FprasError> {
        let degree = config.classify_ambiguity.then(|| self.ambiguity());
        let unambiguous = match degree {
            Some(d) => d == AmbiguityDegree::Unambiguous,
            None => self.is_unambiguous(),
        };
        if unambiguous {
            let exact = self.count_paths();
            return Ok(RoutedCount {
                route: CountRoute::ExactUnambiguous,
                degree,
                estimate: BigFloat::from_bignat(&exact),
                exact: Some(exact),
            });
        }
        if let Some(dfa) = self.determinized_within(config.determinization_cap) {
            let exact = self
                .det_count
                .get_or_init(|| dfa.count_words(self.length))
                .clone();
            return Ok(RoutedCount {
                route: CountRoute::ExactDeterminized {
                    dfa_states: dfa.num_states(),
                },
                degree,
                estimate: BigFloat::from_bignat(&exact),
                exact: Some(exact),
            });
        }
        let estimate = fpras_estimate(config.fpras)?;
        Ok(RoutedCount {
            route: CountRoute::Fpras,
            degree,
            exact: None,
            estimate,
        })
    }

    /// Draws up to `count` witnesses: the exact table sampler on the UFA
    /// route, the cached-sketch Las Vegas sampler (with `retries` attempts
    /// per witness) otherwise. An empty language yields an empty vector;
    /// on the Las Vegas route a witness whose every attempt rejected is
    /// skipped, so the result may be shorter than `count`.
    ///
    /// # Errors
    /// Propagates [`FprasError`] from the (cached) sketch build.
    pub fn sample_witnesses(
        &self,
        count: usize,
        retries: usize,
        fpras: FprasParams,
        sketch_seed: u64,
        draw_seed: u64,
    ) -> Result<Vec<Word>, FprasError> {
        let mut rng = StdRng::seed_from_u64(draw_seed);
        if self.is_unambiguous() {
            let sampler = self.uniform_sampler().expect("checked unambiguous");
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                match sampler.sample(&mut rng) {
                    Some(w) => out.push(w),
                    None => break, // empty language
                }
            }
            return Ok(out);
        }
        let sketch = self.fpras_sketch(fpras, sketch_seed)?;
        if sketch.is_empty_language() {
            return Ok(Vec::new());
        }
        let mut sampler = sketch.witness_sampler();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            for _ in 0..retries.max(1) {
                if let Some(w) = sampler.sample(&mut rng) {
                    out.push(w);
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Rough heap footprint of the materialized artifact in bytes — the
    /// sizing input for the engine's byte-capped LRU cache. Lazily-built
    /// tables only count once they exist, so an entry's recorded size grows
    /// as queries warm it up. The per-table measurements are memoized
    /// (tables are immutable once built), so re-measuring a warm instance —
    /// which the engine does on every touch — is O(1).
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>()
            + self.nfa.num_transitions() * std::mem::size_of::<(u32, usize)>()
            + self.nfa.num_states() * std::mem::size_of::<usize>();
        match self.sketch.get() {
            // The sketch's estimate already includes the shared DAG once.
            Some((_, Ok(s))) => bytes += s.approx_bytes(),
            _ => bytes += self.dag.get().map_or(0, |d| d.approx_bytes()),
        }
        if let Some(c) = self.completions.get() {
            bytes += *self.completions_bytes.get_or_init(|| {
                c.iter()
                    .map(|x| std::mem::size_of::<BigNat>() + x.bit_len().div_ceil(8))
                    .sum()
            });
        }
        if let Some((_, Some(dfa))) = &*self.probe.lock().expect("probe lock poisoned") {
            bytes += dfa.num_states() * self.nfa.alphabet().len() * std::mem::size_of::<usize>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsc_automata::families::blowup_nfa;
    use lsc_automata::regex::Regex;
    use lsc_automata::Alphabet;

    #[test]
    fn tables_materialize_lazily_and_once() {
        let inst = PreparedInstance::new(blowup_nfa(4), 10);
        let base = inst.approx_bytes();
        let dag = Arc::as_ptr(inst.dag());
        assert_eq!(Arc::as_ptr(inst.dag()), dag, "same artifact on re-access");
        assert!(inst.approx_bytes() > base, "DAG now counted");
        let with_dag = inst.approx_bytes();
        let c1 = Arc::as_ptr(inst.completion_table());
        assert_eq!(Arc::as_ptr(inst.completion_table()), c1);
        assert!(inst.approx_bytes() > with_dag, "tables grow the footprint");
    }

    #[test]
    fn prepared_answers_match_fresh_answers() {
        let inst = PreparedInstance::prepare(blowup_nfa(3), 8);
        assert!(inst.is_unambiguous());
        let count = inst.count_exact().unwrap();
        // Two enumerators off the same artifact agree with each other and
        // with the count.
        let a: Vec<Word> = inst.enumerate_constant_delay().unwrap().collect();
        let b: Vec<Word> = inst.enumerate_constant_delay().unwrap().collect();
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, count.to_u64().unwrap());
    }

    #[test]
    fn cached_sketch_is_shared_and_seed_deterministic() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile();
        let inst = PreparedInstance::new(nfa.clone(), 8);
        let s1 = inst.fpras_sketch(FprasParams::quick(), 42).unwrap();
        let s2 = inst.fpras_sketch(FprasParams::quick(), 42).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "sketch built once");
        // A second instance with the same seed reproduces the estimate.
        let other = PreparedInstance::new(nfa, 8);
        let s3 = other.fpras_sketch(FprasParams::quick(), 42).unwrap();
        assert_eq!(s1.estimate().to_f64(), s3.estimate().to_f64());
    }

    #[test]
    fn foreign_sketch_params_do_not_poison_cached_answers() {
        let ab = Alphabet::binary();
        let nfa = Regex::parse("(0|1)*11(0|1)*", &ab).unwrap().compile();
        let inst = PreparedInstance::new(nfa.clone(), 8);
        // A direct caller fixes the cache with its own params and seed...
        let mut odd = FprasParams::quick();
        odd.k = 8;
        let foreign = inst.fpras_sketch(odd, 999).unwrap();
        // ...but a later caller with a different key is never served the
        // foreign sketch: its answer matches a fresh instance's, bit for bit.
        let a = inst.fpras_sketch(FprasParams::quick(), 42).unwrap();
        let b = PreparedInstance::new(nfa, 8)
            .fpras_sketch(FprasParams::quick(), 42)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &foreign));
        assert_eq!(a.estimate().to_f64(), b.estimate().to_f64());
        // Equal keys still share the cached build.
        let c = inst.fpras_sketch(odd, 999).unwrap();
        assert!(Arc::ptr_eq(&c, &foreign));
    }

    #[test]
    fn fingerprint_distinguishes_lengths() {
        let a = PreparedInstance::new(blowup_nfa(3), 8);
        let b = PreparedInstance::new(blowup_nfa(3), 9);
        let c = PreparedInstance::new(blowup_nfa(4), 8);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.fingerprint(),
            PreparedInstance::new(blowup_nfa(3), 8).fingerprint()
        );
    }
}
