//! Property tests validating `BigNat` against `num-bigint` as an oracle.

use lsc_arith::{BigFloat, BigNat};
use num_bigint::BigUint;
use proptest::prelude::*;

/// Strategy producing a random decimal string of up to ~40 digits (no leading zero
/// unless the value is exactly "0") together with the two parsed representations.
fn pair() -> impl Strategy<Value = (BigNat, BigUint)> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(|limbs| {
        let mut ours = BigNat::zero();
        let mut oracle = BigUint::from(0u64);
        for &l in &limbs {
            ours = ours.shl_bits(64);
            ours.add_assign_u64(l);
            oracle = (oracle << 64u32) + BigUint::from(l);
        }
        (ours, oracle)
    })
}

fn to_oracle(n: &BigNat) -> BigUint {
    n.to_string().parse().expect("BigNat Display emits decimal")
}

proptest! {
    #[test]
    fn display_matches_oracle((a, oa) in pair()) {
        prop_assert_eq!(a.to_string(), oa.to_string());
    }

    #[test]
    fn add_matches_oracle((a, oa) in pair(), (b, ob) in pair()) {
        let sum = &a + &b;
        prop_assert_eq!(to_oracle(&sum), oa + ob);
    }

    #[test]
    fn sub_matches_oracle((a, oa) in pair(), (b, ob) in pair()) {
        let (hi, lo, ohi, olo) = if a >= b { (&a, &b, &oa, &ob) } else { (&b, &a, &ob, &oa) };
        let diff = hi - lo;
        prop_assert_eq!(to_oracle(&diff), ohi - olo);
    }

    #[test]
    fn mul_matches_oracle((a, oa) in pair(), (b, ob) in pair()) {
        let prod = &a * &b;
        prop_assert_eq!(to_oracle(&prod), oa * ob);
    }

    #[test]
    fn mul_small_matches_oracle((a, oa) in pair(), k in any::<u64>()) {
        let mut prod = a.clone();
        prod.mul_assign_u64(k);
        prop_assert_eq!(to_oracle(&prod), oa * BigUint::from(k));
    }

    #[test]
    fn div_rem_small_matches_oracle((a, oa) in pair(), d in 1u64..) {
        let mut q = a.clone();
        let r = q.div_rem_u64(d);
        prop_assert_eq!(to_oracle(&q), &oa / BigUint::from(d));
        prop_assert_eq!(BigUint::from(r), oa % BigUint::from(d));
    }

    #[test]
    fn cmp_matches_oracle((a, oa) in pair(), (b, ob) in pair()) {
        prop_assert_eq!(a.cmp(&b), oa.cmp(&ob));
    }

    #[test]
    fn shl_matches_oracle((a, oa) in pair(), s in 0usize..300) {
        prop_assert_eq!(to_oracle(&a.shl_bits(s)), oa << s);
    }

    #[test]
    fn parse_display_roundtrip((a, _) in pair()) {
        let s = a.to_string();
        let back: BigNat = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn bit_len_matches_oracle((a, oa) in pair()) {
        prop_assert_eq!(a.bit_len() as u64, oa.bits());
    }

    #[test]
    fn to_f64_is_close((a, _) in pair()) {
        // Relative error of the 64-bit window conversion is far below 1e-12.
        let f = a.to_f64();
        if a.is_zero() {
            prop_assert_eq!(f, 0.0);
        } else if f.is_finite() {
            let log_est = f.ln();
            let log_true = BigFloat::from_bignat(&a).ln();
            prop_assert!((log_est - log_true).abs() < 1e-9);
        }
    }

    #[test]
    fn bigfloat_tracks_products(xs in proptest::collection::vec(1u64..1_000_000, 1..40)) {
        // Compare an extended-range product against exact big arithmetic in log space.
        let mut bf = BigFloat::one();
        let mut exact = BigNat::one();
        for &x in &xs {
            bf = bf.mul(BigFloat::from_u64(x));
            exact.mul_assign_u64(x);
        }
        let exact_log = BigFloat::from_bignat(&exact).ln();
        prop_assert!((bf.ln() - exact_log).abs() < 1e-9 * xs.len() as f64 + 1e-9);
    }

    #[test]
    fn uniform_below_yields_values_in_range((a, _) in pair(), seed in any::<u64>()) {
        prop_assume!(!a.is_zero());
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x = BigNat::uniform_below(&a, &mut rng);
        prop_assert!(x < a);
    }

    #[test]
    fn mul_add_assign_matches_schoolbook(
        (acc0, oacc) in pair(), (a, oa) in pair(), (b, ob) in pair()
    ) {
        // The scratch FMA must agree with the schoolbook reference
        // `acc + a·b` on arbitrary operands — covering the u64×u64 fast
        // path, the general path, and zero factors alike.
        let mut acc = acc0.clone();
        let mut scratch = Vec::new();
        acc.mul_add_assign_with_scratch(&a, &b, &mut scratch);
        let reference = &acc0 + &a.mul_ref(&b);
        prop_assert_eq!(&acc, &reference);
        prop_assert_eq!(to_oracle(&acc), oacc + oa * ob);
        // A dirtied scratch must not perturb a second accumulation.
        acc.mul_add_assign_with_scratch(&b, &a, &mut scratch);
        prop_assert_eq!(&acc, &(&reference + &b.mul_ref(&a)));
    }

    #[test]
    fn mul_add_fast_path_matches_general((acc0, _) in pair(), x in any::<u64>(), y in any::<u64>()) {
        // Single-limb factors take the u128 fast path; widening one factor
        // past a limb forces the general path on the same product value
        // scaled — both must match their schoolbook references exactly.
        let mut fast = acc0.clone();
        fast.mul_add_assign_with_scratch(&BigNat::from_u64(x), &BigNat::from_u64(y), &mut Vec::new());
        prop_assert_eq!(&fast, &(&acc0 + &BigNat::from_u64(x).mul_ref(&BigNat::from_u64(y))));
        let wide = BigNat::from_u64(x).shl_bits(64);
        let mut general = acc0.clone();
        general.mul_add_assign_with_scratch(&wide, &BigNat::from_u64(y), &mut Vec::new());
        prop_assert_eq!(&general, &(&acc0 + &wide.mul_ref(&BigNat::from_u64(y))));
    }

    #[test]
    fn add_assign_u128_matches_oracle((a, oa) in pair(), lo in any::<u64>(), hi in any::<u64>()) {
        let v = (hi as u128) << 64 | lo as u128;
        let mut sum = a.clone();
        sum.add_assign_u128(v);
        let ov = (BigUint::from(hi) << 64u32) + BigUint::from(lo);
        prop_assert_eq!(to_oracle(&sum), oa + ov);
    }

    #[test]
    fn set_zero_then_accumulate_matches_fresh((a, _) in pair(), (b, ob) in pair()) {
        // The reused-accumulator pattern the completion DP relies on:
        // set_zero + add_assign_ref must be indistinguishable from a fresh
        // BigNat, regardless of what the buffer previously held.
        let mut acc = a.clone();
        acc.set_zero();
        prop_assert!(acc.is_zero());
        acc.add_assign_ref(&b);
        prop_assert_eq!(&acc, &b);
        prop_assert_eq!(to_oracle(&acc), ob);
    }
}
