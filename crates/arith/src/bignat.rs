//! Unsigned arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};
use std::str::FromStr;

use rand::Rng;

/// An unsigned arbitrary-precision integer.
///
/// Stored as little-endian base-2^64 limbs with no trailing zero limbs, so the
/// empty limb vector canonically represents zero. All arithmetic needed by the
/// counting algorithms is implemented directly; full long division is deliberately
/// omitted (the algorithms never divide two big numbers — ratios are taken through
/// [`crate::BigFloat`], and decimal printing only needs a small divisor).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigNat {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigNat {
    /// The number zero.
    pub fn zero() -> Self {
        BigNat { limbs: Vec::new() }
    }

    /// The number one.
    pub fn one() -> Self {
        BigNat { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigNat { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigNat {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns the value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[0] as u128) | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }

    /// Number of bits in the binary representation (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// The `i`-th bit (little-endian; bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            None => false,
            Some(&w) => (w >> (i % 64)) & 1 == 1,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Minimal little-endian byte encoding (empty for zero). The inverse of
    /// [`BigNat::from_le_bytes`]; used by the engine's on-disk snapshots.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in &self.limbs {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Reconstructs from a little-endian byte encoding (trailing zero bytes
    /// are tolerated; the empty slice is zero).
    pub fn from_le_bytes(bytes: &[u8]) -> BigNat {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut limb = [0u8; 8];
            limb[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(limb));
        }
        let mut n = BigNat { limbs };
        n.normalize();
        n
    }

    /// `self + other`, in place.
    pub fn add_assign_ref(&mut self, other: &BigNat) {
        self.add_assign_limbs(&other.limbs);
    }

    /// Sets the value to zero, keeping the limb buffer's capacity — the reset
    /// companion of the accumulate-in-place APIs, so a reused accumulator
    /// stops reallocating once it has grown to the working width.
    pub fn set_zero(&mut self) {
        self.limbs.clear();
    }

    /// Adds a little-endian limb slice in place (trailing zero limbs are
    /// tolerated). One capacity reservation up front covers both the widening
    /// resize and a possible final carry limb, so the carry push below can
    /// never trigger a second allocation.
    fn add_assign_limbs(&mut self, mut other: &[u64]) {
        while let Some((&0, rest)) = other.split_last() {
            other = rest;
        }
        if other.is_empty() {
            return;
        }
        let needed = self.limbs.len().max(other.len()) + 1;
        if self.limbs.capacity() < needed {
            self.limbs.reserve(needed - self.limbs.len());
        }
        if self.limbs.len() < other.len() {
            self.limbs.resize(other.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let b = other.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
            if carry == 0 && i >= other.len() {
                break;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Adds a `u64` in place.
    pub fn add_assign_u64(&mut self, v: u64) {
        let mut carry = v;
        for limb in self.limbs.iter_mut() {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            if !c {
                return;
            }
            carry = 1;
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Adds a `u128` in place.
    pub fn add_assign_u128(&mut self, v: u128) {
        let (lo, hi) = (v as u64, (v >> 64) as u64);
        if hi == 0 {
            self.add_assign_u64(lo);
        } else {
            self.add_assign_limbs(&[lo, hi]);
        }
    }

    /// Fused multiply-add: `self += a · b`, with the product formed in
    /// `scratch` — zero allocation once `scratch` has grown to the working
    /// width. The dominant counting-table case, both factors fitting one
    /// limb, takes a `u128` fast path that never touches `scratch` at all.
    ///
    /// The product accumulation is the same schoolbook loop as
    /// [`BigNat::mul_ref`], so results are identical to
    /// `self.add_assign_ref(&a.mul_ref(b))` on every input.
    pub fn mul_add_assign_with_scratch(&mut self, a: &BigNat, b: &BigNat, scratch: &mut Vec<u64>) {
        if a.is_zero() || b.is_zero() {
            return;
        }
        if a.limbs.len() == 1 && b.limbs.len() == 1 {
            self.add_assign_u128(a.limbs[0] as u128 * b.limbs[0] as u128);
            return;
        }
        scratch.clear();
        scratch.resize(a.limbs.len() + b.limbs.len(), 0);
        for (i, &x) in a.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &y) in b.limbs.iter().enumerate() {
                let cur = scratch[i + j] as u128 + (x as u128) * (y as u128) + carry as u128;
                scratch[i + j] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            scratch[i + b.limbs.len()] = carry;
        }
        self.add_assign_limbs(scratch);
    }

    /// `self - other`, returning `None` on underflow.
    pub fn checked_sub(&self, other: &BigNat) -> Option<BigNat> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for (i, &a) in self.limbs.iter().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigNat { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Multiplies by a `u64` in place.
    pub fn mul_assign_u64(&mut self, v: u64) {
        if v == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u64;
        for limb in self.limbs.iter_mut() {
            let prod = (*limb as u128) * (v as u128) + (carry as u128);
            *limb = prod as u64;
            carry = (prod >> 64) as u64;
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Schoolbook multiplication. Counting tables multiply big-by-small far more
    /// often than big-by-big, so an asymptotically fancier algorithm would be noise.
    pub fn mul_ref(&self, other: &BigNat) -> BigNat {
        if self.is_zero() || other.is_zero() {
            return BigNat::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry as u128;
                out[i + j] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            out[i + other.limbs.len()] = carry;
        }
        let mut n = BigNat { limbs: out };
        n.normalize();
        n
    }

    /// Shifts left by `bits` bits (multiplication by a power of two).
    pub fn shl_bits(&self, bits: usize) -> BigNat {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &w in &self.limbs {
                out.push((w << bit_shift) | carry);
                carry = w >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigNat { limbs: out };
        n.normalize();
        n
    }

    /// `2^exp`.
    pub fn pow2(exp: usize) -> BigNat {
        BigNat::one().shl_bits(exp)
    }

    /// `base^exp` by repeated squaring (used by tests and workload generators).
    pub fn pow_u64(base: u64, mut exp: u32) -> BigNat {
        let mut result = BigNat::one();
        let mut b = BigNat::from_u64(base);
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul_ref(&b);
            }
            b = b.mul_ref(&b);
            exp >>= 1;
        }
        result
    }

    /// Divides in place by a small divisor, returning the remainder.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u64;
        for limb in self.limbs.iter_mut().rev() {
            let cur = ((rem as u128) << 64) | (*limb as u128);
            *limb = (cur / d as u128) as u64;
            rem = (cur % d as u128) as u64;
        }
        self.normalize();
        rem
    }

    /// Returns `(w, d)` with the value ≈ `w · 2^d`, where `w` holds the top
    /// (at most 64) bits rounded to nearest on the first dropped bit.
    pub fn top64(&self) -> (u64, usize) {
        let bits = self.bit_len();
        if bits == 0 {
            return (0, 0);
        }
        if bits <= 64 {
            return (self.limbs[0], 0);
        }
        // The window of bits [top, bits) spans at most two limbs.
        let top = bits - 64;
        let lo_limb = top / 64;
        let off = top % 64;
        let mut mant = self.limbs[lo_limb] >> off;
        if off != 0 {
            mant |= self.limbs[lo_limb + 1] << (64 - off);
        }
        if self.bit(top - 1) && mant != u64::MAX {
            mant += 1;
        }
        (mant, top)
    }

    /// Best-effort conversion to `f64` (round-to-nearest on the top bits;
    /// `f64::INFINITY` past the exponent range).
    pub fn to_f64(&self) -> f64 {
        let (mant, d) = self.top64();
        (mant as f64) * 2f64.powi(d as i32)
    }

    /// Draws a uniformly random value in `[0, bound)` using rejection from raw bits,
    /// so the distribution is exactly uniform.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn uniform_below<R: Rng + ?Sized>(bound: &BigNat, rng: &mut R) -> BigNat {
        assert!(!bound.is_zero(), "uniform_below: bound must be positive");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_bits = bits - 64 * (limbs - 1); // 1..=64
        let top_mask: u64 = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        loop {
            let mut candidate = Vec::with_capacity(limbs);
            for i in 0..limbs {
                let mut w: u64 = rng.gen();
                if i == limbs - 1 {
                    w &= top_mask;
                }
                candidate.push(w);
            }
            let mut c = BigNat { limbs: candidate };
            c.normalize();
            if &c < bound {
                return c;
            }
        }
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                Ordering::Equal
            }
            o => o,
        }
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<&BigNat> for &BigNat {
    type Output = BigNat;
    fn add(self, rhs: &BigNat) -> BigNat {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for BigNat {
    type Output = BigNat;
    fn add(mut self, rhs: BigNat) -> BigNat {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign<&BigNat> for BigNat {
    fn add_assign(&mut self, rhs: &BigNat) {
        self.add_assign_ref(rhs);
    }
}

impl Sub<&BigNat> for &BigNat {
    type Output = BigNat;
    /// # Panics
    /// Panics on underflow; use [`BigNat::checked_sub`] to handle that case.
    fn sub(self, rhs: &BigNat) -> BigNat {
        self.checked_sub(rhs).expect("BigNat subtraction underflow")
    }
}

impl Mul<&BigNat> for &BigNat {
    type Output = BigNat;
    fn mul(self, rhs: &BigNat) -> BigNat {
        self.mul_ref(rhs)
    }
}

impl Sum for BigNat {
    fn sum<I: Iterator<Item = BigNat>>(iter: I) -> BigNat {
        let mut acc = BigNat::zero();
        for x in iter {
            acc.add_assign_ref(&x);
        }
        acc
    }
}

impl<'a> Sum<&'a BigNat> for BigNat {
    fn sum<I: Iterator<Item = &'a BigNat>>(iter: I) -> BigNat {
        let mut acc = BigNat::zero();
        for x in iter {
            acc.add_assign_ref(x);
        }
        acc
    }
}

impl From<u64> for BigNat {
    fn from(v: u64) -> Self {
        BigNat::from_u64(v)
    }
}

impl From<usize> for BigNat {
    fn from(v: usize) -> Self {
        BigNat::from_u64(v as u64)
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel 19-digit chunks (10^19 is the largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut n = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !n.is_zero() {
            chunks.push(n.div_rem_u64(CHUNK));
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigNat({self})")
    }
}

/// Error parsing a decimal string into a [`BigNat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigNatError;

impl fmt::Display for ParseBigNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal digit in BigNat literal")
    }
}

impl std::error::Error for ParseBigNatError {}

impl FromStr for BigNat {
    type Err = ParseBigNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigNatError);
        }
        let mut n = BigNat::zero();
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(ParseBigNatError)?;
            n.mul_assign_u64(10);
            n.add_assign_u64(d as u64);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_and_one() {
        assert!(BigNat::zero().is_zero());
        assert!(BigNat::one().is_one());
        assert_eq!(BigNat::zero().to_string(), "0");
        assert_eq!(BigNat::one().to_string(), "1");
        assert_eq!(BigNat::zero().bit_len(), 0);
        assert_eq!(BigNat::one().bit_len(), 1);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigNat::from_u128(u128::MAX);
        let one = BigNat::one();
        let sum = &a + &one;
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn sub_roundtrip() {
        let a = BigNat::from_u128(1 << 100);
        let b = BigNat::from_u64(12345);
        let d = &a - &b;
        assert_eq!(&d + &b, a);
    }

    #[test]
    fn checked_sub_underflow() {
        let a = BigNat::from_u64(5);
        let b = BigNat::from_u64(6);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(BigNat::one()));
    }

    #[test]
    fn mul_known_value() {
        // 2^64 * 2^64 = 2^128
        let a = BigNat::pow2(64);
        let sq = a.mul_ref(&a);
        assert_eq!(sq, BigNat::pow2(128));
        assert_eq!(BigNat::pow_u64(3, 40).to_string(), "12157665459056928801");
    }

    #[test]
    fn mul_by_zero() {
        let a = BigNat::from_u64(77);
        assert!(a.mul_ref(&BigNat::zero()).is_zero());
        let mut b = BigNat::from_u128(u128::MAX);
        b.mul_assign_u64(0);
        assert!(b.is_zero());
    }

    #[test]
    fn display_parse_roundtrip() {
        let s = "123456789012345678901234567890123456789";
        let n: BigNat = s.parse().unwrap();
        assert_eq!(n.to_string(), s);
        assert!("".parse::<BigNat>().is_err());
        assert!("12x".parse::<BigNat>().is_err());
    }

    #[test]
    fn ordering() {
        let a = BigNat::pow2(70);
        let b = BigNat::from_u64(u64::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(BigNat::from_u64(42).to_f64(), 42.0);
        let big = BigNat::pow2(100);
        let f = big.to_f64();
        assert!((f / 2f64.powi(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bits() {
        let n = BigNat::from_u64(0b1011);
        assert!(n.bit(0));
        assert!(n.bit(1));
        assert!(!n.bit(2));
        assert!(n.bit(3));
        assert!(!n.bit(64));
        assert_eq!(n.bit_len(), 4);
    }

    #[test]
    fn shl() {
        let n = BigNat::from_u64(1);
        assert_eq!(n.shl_bits(0), n);
        assert_eq!(n.shl_bits(64).bit_len(), 65);
        assert_eq!(BigNat::from_u64(3).shl_bits(130).to_string(), {
            let mut x = BigNat::from_u64(3);
            for _ in 0..130 {
                x.mul_assign_u64(2);
            }
            x.to_string()
        });
        assert!(BigNat::zero().shl_bits(100).is_zero());
    }

    #[test]
    fn div_rem_small() {
        let mut n: BigNat = "1000000000000000000000000000001".parse().unwrap();
        let r = n.div_rem_u64(7);
        // 10^30+1 = 7 * 142857142857142857142857142857 + 2
        assert_eq!(r, 2);
        assert_eq!(n.to_string(), "142857142857142857142857142857");
    }

    #[test]
    fn uniform_below_in_range_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = BigNat::from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = BigNat::uniform_below(&bound, &mut rng);
            let v = x.to_u64().unwrap() as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn uniform_below_big_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = BigNat::pow2(200);
        for _ in 0..50 {
            let x = BigNat::uniform_below(&bound, &mut rng);
            assert!(x < bound);
        }
    }

    #[test]
    fn sum_iterator() {
        let xs = [
            BigNat::from_u64(1),
            BigNat::from_u64(2),
            BigNat::from_u64(3),
        ];
        let s: BigNat = xs.iter().sum();
        assert_eq!(s, BigNat::from_u64(6));
    }

    #[test]
    fn le_bytes_round_trip() {
        let cases = [
            BigNat::zero(),
            BigNat::one(),
            BigNat::from_u64(0x0123_4567_89AB_CDEF),
            BigNat::from_u128(u128::MAX),
            BigNat::pow2(200),
            BigNat::pow_u64(3, 100),
        ];
        for x in &cases {
            let bytes = x.to_le_bytes();
            assert_eq!(&BigNat::from_le_bytes(&bytes), x);
            // Minimality: no trailing zero bytes.
            assert_ne!(bytes.last(), Some(&0));
            assert_eq!(bytes.len(), x.bit_len().div_ceil(8));
        }
        // Trailing zeros are tolerated on input.
        assert_eq!(BigNat::from_le_bytes(&[5, 0, 0, 0]), BigNat::from_u64(5));
        assert_eq!(BigNat::from_le_bytes(&[]), BigNat::zero());
    }
}
