//! Arbitrary-precision arithmetic for the logspace-classes reproduction.
//!
//! Exact witness counts in this project grow like `|Σ|^n` — far past `u128` for the
//! word lengths the paper's algorithms handle — so exact counting ([`BigNat`]) and
//! estimate bookkeeping ([`BigFloat`]) both need more range than the primitives give.
//!
//! The crate is deliberately small and division-free on the hot paths:
//!
//! * [`BigNat`] — unsigned big integers with addition, subtraction, multiplication,
//!   comparison, shifting, small-divisor division (for decimal I/O), and exact
//!   uniform sampling below a bound ([`BigNat::uniform_below`], rejection from raw
//!   bits, so sampling probabilities are exact rather than rounded through `f64`).
//! * [`BigFloat`] — a normalized `(f64 mantissa, i64 exponent)` pair giving ~15
//!   significant digits over an astronomically wide dynamic range; this is what the
//!   FPRAS stores its per-state estimates `R(s)` in.
//!
//! Everything here is validated against `num-bigint` in property tests (dev-only
//! dependency); the library itself has no third-party runtime dependencies besides
//! `rand`.

#![forbid(unsafe_code)]

mod bigfloat;
mod bignat;
mod random;

pub use bigfloat::BigFloat;
pub use bignat::{BigNat, ParseBigNatError};
pub use random::uniform_below_u64;
