//! Extended-range floating point: an `f64` mantissa with an `i64` exponent.

use std::cmp::Ordering;
use std::fmt;

use crate::BigNat;

/// A nonnegative floating-point number `m · 2^e` with `m ∈ [1, 2)` (or `m = 0`).
///
/// The FPRAS stores per-state estimates `R(s)` that can reach `|Σ|^n`; with `n` in
/// the thousands that overflows `f64`, whose exponent stops at ~2^1024. `BigFloat`
/// keeps `f64` precision (~15 significant digits, far below the FPRAS's own
/// statistical error) over an effectively unbounded exponent range.
#[derive(Clone, Copy, Debug)]
pub struct BigFloat {
    mantissa: f64, // in [1, 2) or exactly 0.0
    exponent: i64, // value = mantissa * 2^exponent
}

impl BigFloat {
    /// The number zero.
    pub fn zero() -> Self {
        BigFloat {
            mantissa: 0.0,
            exponent: 0,
        }
    }

    /// The number one.
    pub fn one() -> Self {
        BigFloat {
            mantissa: 1.0,
            exponent: 0,
        }
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0.0
    }

    /// The raw `(mantissa bits, exponent)` pair — the exact in-memory
    /// representation, for serialization. Round-trips bit-identically
    /// through [`BigFloat::from_raw_parts`].
    pub fn to_raw_parts(&self) -> (u64, i64) {
        (self.mantissa.to_bits(), self.exponent)
    }

    /// Rebuilds a value from [`BigFloat::to_raw_parts`] output. Returns
    /// `None` unless the bits encode a valid state — exactly zero, or a
    /// finite mantissa in `[1, 2)` — so a corrupted serialization can never
    /// smuggle an invariant-breaking value (NaN, negative, unnormalized)
    /// into arithmetic.
    pub fn from_raw_parts(mantissa_bits: u64, exponent: i64) -> Option<Self> {
        let mantissa = f64::from_bits(mantissa_bits);
        if mantissa_bits == 0 {
            return (exponent == 0).then(Self::zero);
        }
        (mantissa.is_finite() && (1.0..2.0).contains(&mantissa))
            .then_some(BigFloat { mantissa, exponent })
    }

    fn normalized(mantissa: f64, exponent: i64) -> Self {
        if mantissa == 0.0 {
            return Self::zero();
        }
        debug_assert!(
            mantissa.is_finite() && mantissa > 0.0,
            "BigFloat mantissa must be positive and finite, got {mantissa}"
        );
        let (frac, exp) = frexp(mantissa);
        // frexp gives frac in [0.5, 1); shift to [1, 2).
        BigFloat {
            mantissa: frac * 2.0,
            exponent: exponent + exp as i64 - 1,
        }
    }

    /// Builds from an `f64`.
    ///
    /// # Panics
    /// Panics if `v` is negative, NaN, or infinite.
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "BigFloat::from_f64({v})");
        Self::normalized(v, 0)
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Self::from_f64(v as f64)
    }

    /// Builds from a [`BigNat`] (rounded to the top 64 bits).
    pub fn from_bignat(n: &BigNat) -> Self {
        let (mant, dropped) = n.top64();
        if mant == 0 {
            return Self::zero();
        }
        Self::normalized(mant as f64, dropped as i64)
    }

    /// The ratio `a / b` of two big naturals as a `BigFloat`.
    ///
    /// # Panics
    /// Panics if `b` is zero.
    pub fn ratio(a: &BigNat, b: &BigNat) -> Self {
        assert!(!b.is_zero(), "BigFloat::ratio: division by zero");
        if a.is_zero() {
            return Self::zero();
        }
        Self::from_bignat(a).div(Self::from_bignat(b))
    }

    /// Addition.
    #[allow(clippy::should_implement_trait)] // deliberate method form: BigFloat is Copy and chains fluently
    pub fn add(self, other: BigFloat) -> BigFloat {
        if self.is_zero() {
            return other;
        }
        if other.is_zero() {
            return self;
        }
        let (hi, lo) = if self.exponent >= other.exponent {
            (self, other)
        } else {
            (other, self)
        };
        let diff = hi.exponent - lo.exponent;
        if diff > 64 {
            return hi; // lo is below one ulp of hi
        }
        let m = hi.mantissa + lo.mantissa * 2f64.powi(-(diff as i32));
        Self::normalized(m, hi.exponent)
    }

    /// Subtraction clamped at zero (the FPRAS never needs signed values; a negative
    /// intermediate can only arise from floating-point cancellation noise).
    pub fn saturating_sub(self, other: BigFloat) -> BigFloat {
        match self.partial_cmp_total(&other) {
            Ordering::Greater => {
                let diff = self.exponent - other.exponent;
                if diff > 64 {
                    return self;
                }
                let m = self.mantissa - other.mantissa * 2f64.powi(-(diff as i32));
                if m <= 0.0 {
                    Self::zero()
                } else {
                    Self::normalized(m, self.exponent)
                }
            }
            _ => Self::zero(),
        }
    }

    /// Multiplication.
    #[allow(clippy::should_implement_trait)] // deliberate method form: BigFloat is Copy and chains fluently
    pub fn mul(self, other: BigFloat) -> BigFloat {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        Self::normalized(
            self.mantissa * other.mantissa,
            self.exponent + other.exponent,
        )
    }

    /// Multiplication by a plain `f64` in `[0, ∞)`.
    pub fn mul_f64(self, v: f64) -> BigFloat {
        assert!(v.is_finite() && v >= 0.0, "BigFloat::mul_f64({v})");
        if self.is_zero() || v == 0.0 {
            return Self::zero();
        }
        Self::normalized(self.mantissa * v, self.exponent)
    }

    /// Division.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    #[allow(clippy::should_implement_trait)] // deliberate method form: BigFloat is Copy and chains fluently
    pub fn div(self, other: BigFloat) -> BigFloat {
        assert!(!other.is_zero(), "BigFloat division by zero");
        if self.is_zero() {
            return Self::zero();
        }
        Self::normalized(
            self.mantissa / other.mantissa,
            self.exponent - other.exponent,
        )
    }

    /// Total ordering (zero is the minimum; all values are nonnegative).
    pub fn partial_cmp_total(&self, other: &BigFloat) -> Ordering {
        match (self.is_zero(), other.is_zero()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => match self.exponent.cmp(&other.exponent) {
                Ordering::Equal => self
                    .mantissa
                    .partial_cmp(&other.mantissa)
                    .expect("mantissas are finite"),
                o => o,
            },
        }
    }

    /// Conversion to `f64`; values past the exponent range become `inf` / `0.0`.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        if self.exponent > 1023 {
            return f64::INFINITY;
        }
        if self.exponent < -1070 {
            return 0.0;
        }
        self.mantissa * 2f64.powi(self.exponent as i32)
    }

    /// Natural logarithm (`-inf` for zero).
    pub fn ln(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        self.mantissa.ln() + self.exponent as f64 * std::f64::consts::LN_2
    }

    /// Base-10 logarithm (`-inf` for zero).
    pub fn log10(&self) -> f64 {
        self.ln() / std::f64::consts::LN_10
    }

    /// The ratio `self / other` as a plain `f64` (useful for probabilities).
    pub fn ratio_f64(&self, other: &BigFloat) -> f64 {
        self.div(*other).to_f64()
    }
}

impl fmt::Display for BigFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let log10 = self.log10();
        let mut dec_exp = log10.floor();
        let mut lead = 10f64.powf(log10 - dec_exp);
        // Floating-point floor can land one decade low (e.g. 10^100 → 9.99…e+99).
        if lead >= 10.0 - 1e-9 {
            lead /= 10.0;
            dec_exp += 1.0;
        }
        if (-6.0..15.0).contains(&dec_exp) {
            write!(f, "{}", self.to_f64())
        } else {
            write!(f, "{:.6}e{:+}", lead, dec_exp as i64)
        }
    }
}

/// Decomposes `v = f · 2^exp` with `f ∈ [0.5, 1)`.
fn frexp(v: f64) -> (f64, i32) {
    debug_assert!(v > 0.0 && v.is_finite());
    let bits = v.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i32;
    if raw_exp == 0 {
        // Subnormal: scale up into the normal range first.
        let scaled = v * 2f64.powi(64);
        let (f, e) = frexp(scaled);
        return (f, e - 64);
    }
    let exp = raw_exp - 1022;
    let mant = f64::from_bits((bits & !(0x7ffu64 << 52)) | (1022u64 << 52));
    (mant, exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        if a == 0.0 || b == 0.0 {
            return (a - b).abs() < 1e-12;
        }
        (a / b - 1.0).abs() < 1e-12
    }

    #[test]
    fn frexp_roundtrip() {
        for v in [1.0, 0.5, 3.75, 1e-300, 1e300, f64::MIN_POSITIVE / 4.0] {
            let (m, e) = frexp(v);
            assert!((0.5..1.0).contains(&m), "frexp({v}) mantissa {m}");
            assert!(close(m * 2f64.powi(e), v));
        }
    }

    #[test]
    fn construction_and_roundtrip() {
        for v in [0.0, 1.0, 2.0, 0.125, 123456.789, 1e300] {
            assert!(close(BigFloat::from_f64(v).to_f64(), v), "roundtrip {v}");
        }
    }

    #[test]
    fn add_and_mul() {
        let a = BigFloat::from_f64(3.0);
        let b = BigFloat::from_f64(4.5);
        assert!(close(a.add(b).to_f64(), 7.5));
        assert!(close(a.mul(b).to_f64(), 13.5));
        assert!(close(a.mul_f64(2.0).to_f64(), 6.0));
        assert!(a.add(BigFloat::zero()).to_f64() == 3.0);
        assert!(BigFloat::zero().mul(a).is_zero());
    }

    #[test]
    fn add_far_apart_exponents() {
        let big = BigFloat::from_f64(1e300).mul(BigFloat::from_f64(1e300));
        let tiny = BigFloat::one();
        let sum = big.add(tiny);
        assert_eq!(sum.partial_cmp_total(&big), Ordering::Equal);
    }

    #[test]
    fn beyond_f64_range() {
        // 2^5000 overflows f64 but must survive in BigFloat.
        let mut x = BigFloat::one();
        let two = BigFloat::from_f64(2.0);
        for _ in 0..5000 {
            x = x.mul(two);
        }
        assert_eq!(x.to_f64(), f64::INFINITY);
        assert!(close(x.log10(), 5000.0 * 2f64.log10()));
        // Dividing back down recovers 1.
        for _ in 0..5000 {
            x = x.div(two);
        }
        assert!(close(x.to_f64(), 1.0));
    }

    #[test]
    fn from_bignat_small_and_large() {
        assert!(close(
            BigFloat::from_bignat(&BigNat::from_u64(1000)).to_f64(),
            1000.0
        ));
        let n = BigNat::pow_u64(7, 100); // 7^100 ~ 3.23e84
        let bf = BigFloat::from_bignat(&n);
        assert!(close(bf.log10(), 100.0 * 7f64.log10()));
        assert!(BigFloat::from_bignat(&BigNat::zero()).is_zero());
    }

    #[test]
    fn ratio_of_bignats() {
        let a = BigNat::pow_u64(2, 300);
        let b = BigNat::pow_u64(2, 299);
        assert!(close(BigFloat::ratio(&a, &b).to_f64(), 2.0));
        let r = BigFloat::ratio(&BigNat::from_u64(1), &BigNat::from_u64(3));
        assert!(close(r.to_f64(), 1.0 / 3.0));
    }

    #[test]
    fn saturating_sub() {
        let a = BigFloat::from_f64(10.0);
        let b = BigFloat::from_f64(4.0);
        assert!(close(a.saturating_sub(b).to_f64(), 6.0));
        assert!(b.saturating_sub(a).is_zero());
        assert!(a.saturating_sub(a).is_zero());
    }

    #[test]
    fn ordering() {
        let a = BigFloat::from_f64(2.0);
        let b = BigFloat::from_f64(3.0);
        assert_eq!(a.partial_cmp_total(&b), Ordering::Less);
        assert_eq!(b.partial_cmp_total(&a), Ordering::Greater);
        assert_eq!(
            BigFloat::zero().partial_cmp_total(&BigFloat::zero()),
            Ordering::Equal
        );
        assert_eq!(BigFloat::zero().partial_cmp_total(&a), Ordering::Less);
    }

    #[test]
    fn raw_parts_round_trip_bit_identically() {
        for v in [
            BigFloat::zero(),
            BigFloat::one(),
            BigFloat::from_f64(0.3),
            BigFloat::from_f64(1e300).mul(BigFloat::from_f64(1e300)),
            BigFloat::one().div(BigFloat::from_bignat(&BigNat::pow_u64(10, 500))),
        ] {
            let (m, e) = v.to_raw_parts();
            let back = BigFloat::from_raw_parts(m, e).unwrap();
            assert_eq!(back.to_raw_parts(), (m, e));
            assert_eq!(back.partial_cmp_total(&v), Ordering::Equal);
        }
        // Invalid bit patterns are refused, not normalized away.
        assert!(BigFloat::from_raw_parts(f64::NAN.to_bits(), 0).is_none());
        assert!(BigFloat::from_raw_parts(0.5f64.to_bits(), 3).is_none());
        assert!(BigFloat::from_raw_parts(2.0f64.to_bits(), 3).is_none());
        assert!(BigFloat::from_raw_parts((-1.5f64).to_bits(), 3).is_none());
        assert!(
            BigFloat::from_raw_parts(0, 7).is_none(),
            "nonzero exp on zero"
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(BigFloat::zero().to_string(), "0");
        let s = BigFloat::from_f64(2.0).to_string();
        assert_eq!(s, "2");
        let huge = BigFloat::from_bignat(&BigNat::pow_u64(10, 100));
        assert!(huge.to_string().contains("e+100"), "{huge}");
    }
}
