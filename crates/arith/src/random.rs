//! Small sampling helpers shared by the generators.

use rand::Rng;

/// Draws uniformly from `[0, bound)` for a `u64` bound via rejection, mirroring
/// [`crate::BigNat::uniform_below`] for the common small case.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn uniform_below_u64<R: Rng + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    assert!(bound > 0, "uniform_below_u64: bound must be positive");
    rng.gen_range(0..bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(uniform_below_u64(7, &mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        uniform_below_u64(0, &mut rng);
    }
}
