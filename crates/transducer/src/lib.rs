//! NL-transducers and the Lemma 13 compilation into NFAs.
//!
//! The paper's two classes are defined through nondeterministic logspace
//! transducers: `RelationNL` (Definition 1) and its unambiguous restriction
//! `RelationUL` (Definition 4). The pivotal Lemma 13 observes that on a fixed
//! input `x`, a logspace machine has only polynomially many configurations, so
//! its run space *is* a polynomial-size NFA `N_x` with `W_R(x) = L(N_x)` —
//! output-producing moves become labeled transitions, silent moves become
//! ε-transitions, and ε-removal normalizes the result.
//!
//! This crate realizes that compilation generically:
//!
//! * [`TransducerProgram`] — an NL-transducer presented by its configuration
//!   graph: an initial configuration, nondeterministic successors (optionally
//!   emitting one output symbol), and accepting configurations. The logspace
//!   bound corresponds to the *promise* that only polynomially many
//!   configurations are reachable, enforced at compile time by an explicit
//!   budget.
//! * [`configuration_nfa`] — Lemma 13: breadth-first exploration of reachable
//!   configurations into an ε-NFA, ε-removal, trimming.
//! * [`programs`] — concrete machines: the MEM-NFA membership transducer of
//!   §5.3.2 and a SUBSET-SUM witness transducer showing how a classic
//!   pseudo-polynomial counting problem drops into `RelationUL`.
//!
//! Downstream crates add more machines (`lsc-dnf` implements the SAT-DNF
//! transducer of §3).

#![forbid(unsafe_code)]

mod lemma13;
pub mod programs;
mod spanl;

pub use lemma13::{configuration_nfa, ConfigBudgetExceeded, TransducerProgram};
pub use spanl::{SpanLError, SpanLFunction};
