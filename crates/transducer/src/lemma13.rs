//! Lemma 13: an NL-transducer's run space on a fixed input is an NFA.

use std::collections::HashMap;
use std::hash::Hash;

use lsc_automata::{Alphabet, EpsNfa, Nfa, Symbol};

/// An NL-transducer on a fixed input, presented by its configuration graph.
///
/// A configuration packages everything the machine state depends on — control
/// state, input-head position, and the O(log n) work tape, which Appendix A.1
/// bounds by `|Q| · n · f(n) · |Γ|^{f(n)} = poly(n)` configurations. Rather
/// than fixing one tape encoding, implementors choose any `Config` type whose
/// reachable set is polynomial; [`configuration_nfa`] enforces the bound with
/// an explicit budget and fails loudly if a "transducer" turns out not to be
/// logspace-like.
pub trait TransducerProgram {
    /// The configuration type (control state + heads + work memory).
    type Config: Clone + Eq + Hash;

    /// The output alphabet Σ.
    fn alphabet(&self) -> Alphabet;

    /// The initial configuration on this input.
    fn initial(&self) -> Self::Config;

    /// Is this an accepting (halting) configuration?
    fn is_accepting(&self, config: &Self::Config) -> bool;

    /// All one-step successors, each optionally writing one output symbol
    /// (`None` = silent move → ε-transition in the configuration NFA).
    fn successors(&self, config: &Self::Config) -> Vec<(Option<Symbol>, Self::Config)>;
}

/// The configuration budget was exhausted: the program explored more
/// configurations than the declared polynomial bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigBudgetExceeded {
    /// The budget that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for ConfigBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "configuration graph exceeded budget of {} configurations (not logspace-like?)",
            self.budget
        )
    }
}

impl std::error::Error for ConfigBudgetExceeded {}

/// Lemma 13: compiles the reachable configuration graph into an ε-free,
/// trimmed NFA `N_x` with `L(N_x) = M(x)` (the transducer's output set).
///
/// Breadth-first from the initial configuration; every discovered
/// configuration becomes a state, every move a (possibly ε) transition. The
/// unambiguity claim of Lemma 13 carries over: if the machine is a
/// UL-transducer (one accepting run per output), distinct runs of `N_x` map to
/// distinct machine runs, so `N_x` is an unambiguous NFA — certified for
/// concrete programs by `lsc_automata::ops::is_unambiguous` in the tests.
///
/// # Errors
/// [`ConfigBudgetExceeded`] if more than `budget` configurations are reachable.
pub fn configuration_nfa<P: TransducerProgram>(
    program: &P,
    budget: usize,
) -> Result<Nfa, ConfigBudgetExceeded> {
    let alphabet = program.alphabet();
    let mut eps = EpsNfa::new(alphabet, 0);
    let mut ids: HashMap<P::Config, usize> = HashMap::new();
    let mut queue: Vec<P::Config> = Vec::new();

    let init = program.initial();
    let init_id = eps.add_state();
    eps.set_initial(init_id);
    ids.insert(init.clone(), init_id);
    queue.push(init);

    let mut head = 0;
    while head < queue.len() {
        let config = queue[head].clone();
        let id = ids[&config];
        head += 1;
        if program.is_accepting(&config) {
            eps.set_accepting(id);
        }
        for (out, succ) in program.successors(&config) {
            let succ_id = match ids.get(&succ) {
                Some(&i) => i,
                None => {
                    if ids.len() >= budget {
                        return Err(ConfigBudgetExceeded { budget });
                    }
                    let i = eps.add_state();
                    ids.insert(succ.clone(), i);
                    queue.push(succ);
                    i
                }
            };
            eps.add_transition(id, out, succ_id);
        }
    }
    Ok(eps.remove_epsilon())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy UL-transducer emitting all words of {0,1}^n with even parity:
    /// config = (position, parity), branching on each emitted bit, accepting
    /// only even parity at the end.
    struct EvenParity {
        n: usize,
    }

    impl TransducerProgram for EvenParity {
        type Config = (usize, bool);

        fn alphabet(&self) -> Alphabet {
            Alphabet::binary()
        }

        fn initial(&self) -> Self::Config {
            (0, false)
        }

        fn is_accepting(&self, &(pos, parity): &Self::Config) -> bool {
            pos == self.n && !parity
        }

        fn successors(&self, &(pos, parity): &Self::Config) -> Vec<(Option<Symbol>, Self::Config)> {
            if pos == self.n {
                return vec![];
            }
            vec![(Some(0), (pos + 1, parity)), (Some(1), (pos + 1, !parity))]
        }
    }

    #[test]
    fn even_parity_configuration_nfa() {
        let program = EvenParity { n: 6 };
        let nfa = configuration_nfa(&program, 1000).unwrap();
        assert!(
            lsc_automata::ops::is_unambiguous(&nfa),
            "UL-transducer → UFA"
        );
        let count = lsc_core::count::exact::count_ufa(&nfa, 6).unwrap();
        assert_eq!(count.to_u64(), Some(32)); // half of 2^6
        assert!(nfa.accepts(&[0, 0, 1, 1, 0, 0]));
        assert!(!nfa.accepts(&[1, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn budget_is_enforced() {
        let program = EvenParity { n: 1000 };
        let Err(err) = configuration_nfa(&program, 10) else {
            panic!("expected budget error");
        };
        assert_eq!(err, ConfigBudgetExceeded { budget: 10 });
    }

    /// A transducer with silent moves: emits 0^n but walks through 2 silent
    /// configs per emission — exercises ε-removal.
    struct SilentChain {
        n: usize,
    }

    impl TransducerProgram for SilentChain {
        type Config = (usize, u8);

        fn alphabet(&self) -> Alphabet {
            Alphabet::binary()
        }

        fn initial(&self) -> Self::Config {
            (0, 0)
        }

        fn is_accepting(&self, &(pos, phase): &Self::Config) -> bool {
            pos == self.n && phase == 0
        }

        fn successors(&self, &(pos, phase): &Self::Config) -> Vec<(Option<Symbol>, Self::Config)> {
            if pos == self.n {
                return vec![];
            }
            match phase {
                0 => vec![(None, (pos, 1))],
                1 => vec![(None, (pos, 2))],
                _ => vec![(Some(0), (pos + 1, 0))],
            }
        }
    }

    #[test]
    fn epsilon_moves_are_compiled_away() {
        let nfa = configuration_nfa(&SilentChain { n: 4 }, 1000).unwrap();
        assert!(nfa.accepts(&[0, 0, 0, 0]));
        assert!(!nfa.accepts(&[0, 0, 0]));
        assert!(!nfa.accepts(&[0, 1, 0, 0]));
        let count = lsc_core::count::exact::count_ufa(&nfa, 4).unwrap();
        assert!(count.is_one());
    }
}
