//! SpanL functions and Corollary 3: *every function in SpanL admits an FPRAS*.
//!
//! `f ∈ SpanL` iff `f(x) = |M(x)|` for an NL-transducer `M` — the number of
//! *distinct* outputs over all accepting runs (\[ÁJ93\]). The class contains
//! `#P`-complete functions (`#NFA` itself is SpanL-complete), was known to be
//! hard exactly, and the paper's welcome corollary is that all of it is
//! approximable. The proof is one line on top of this crate: compile the
//! configuration graph (Lemma 13), then run the #NFA FPRAS on the result.
//!
//! This module packages that line as [`SpanLFunction`].

use lsc_arith::BigFloat;
use lsc_core::fpras::{approx_count, FprasError, FprasParams};
use lsc_core::MemNfa;
use rand::Rng;

use crate::{configuration_nfa, ConfigBudgetExceeded, TransducerProgram};

/// Errors of the SpanL evaluation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanLError {
    /// The transducer exceeded its configuration budget (not logspace-like).
    Budget(ConfigBudgetExceeded),
    /// The FPRAS reported a failure event.
    Fpras(FprasError),
    /// The transducer's outputs are not all of one length.
    ///
    /// The paper normalizes witnesses to a common length by padding (§2.1);
    /// this implementation requires the transducer to do that padding itself
    /// and reports the offending pair of lengths otherwise.
    MixedOutputLengths(usize, usize),
}

impl std::fmt::Display for SpanLError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpanLError::Budget(e) => write!(f, "{e}"),
            SpanLError::Fpras(e) => write!(f, "{e}"),
            SpanLError::MixedOutputLengths(a, b) => write!(
                f,
                "SpanL transducer emitted outputs of lengths {a} and {b}; pad to a common length"
            ),
        }
    }
}

impl std::error::Error for SpanLError {}

/// A SpanL function presented by its transducer on a fixed input, with the
/// output length `ℓ` of the underlying p-relation.
pub struct SpanLFunction {
    instance: MemNfa,
}

impl SpanLFunction {
    /// Compiles the transducer (Lemma 13) and validates the fixed-length
    /// promise by inspecting the configuration NFA's accepting layers.
    ///
    /// # Errors
    /// [`SpanLError::Budget`] if the configuration graph is super-polynomial;
    /// [`SpanLError::MixedOutputLengths`] if outputs have differing lengths.
    pub fn compile<P: TransducerProgram>(
        program: &P,
        output_length: usize,
        budget: usize,
    ) -> Result<Self, SpanLError> {
        let nfa = configuration_nfa(program, budget).map_err(SpanLError::Budget)?;
        // The unrolled DAG at a *wrong* length accepting anything would mean
        // mixed lengths; check one shorter and one longer slice cheaply.
        for probe in [output_length.saturating_sub(1), output_length + 1] {
            if probe != output_length
                && !lsc_automata::unroll::UnrolledDag::build(&nfa, probe).is_empty()
            {
                return Err(SpanLError::MixedOutputLengths(output_length, probe));
            }
        }
        Ok(SpanLFunction {
            instance: MemNfa::new(nfa, output_length),
        })
    }

    /// The underlying MEM-NFA instance.
    pub fn mem_nfa(&self) -> &MemNfa {
        &self.instance
    }

    /// Corollary 3: an FPRAS estimate of `f(x) = |M(x)|`.
    ///
    /// # Errors
    /// Propagates FPRAS failure events.
    pub fn approximate<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<BigFloat, FprasError> {
        approx_count(self.instance.nfa(), self.instance.length(), params, rng)
    }

    /// The exact value, when the compiled automaton happens to be unambiguous
    /// (the function is then in the `#L`-style easy fragment — Theorem 5).
    pub fn exact(&self) -> Option<lsc_arith::BigNat> {
        self.instance.count_exact().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{NfaMembership, SubsetSum};
    use lsc_automata::families::{ambiguity_gap_nfa, blowup_nfa};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spanl_of_membership_transducer_is_sharp_nfa() {
        // f(N, 0^k) = |L_k(N)| — the SpanL-complete #NFA function itself.
        let nfa = ambiguity_gap_nfa(3);
        let k = 10;
        let f = SpanLFunction::compile(&NfaMembership::new(&nfa, k), k, 100_000).unwrap();
        let truth = lsc_core::count::exact::count_nfa_via_determinization(&nfa, k).to_f64();
        let mut rng = StdRng::seed_from_u64(1);
        let est = f
            .approximate(FprasParams::quick(), &mut rng)
            .unwrap()
            .to_f64();
        assert!(
            (est - truth).abs() / truth < 0.2,
            "est {est}, truth {truth}"
        );
    }

    #[test]
    fn unambiguous_fragment_is_exact() {
        let f = SpanLFunction::compile(&SubsetSum::new(vec![1, 2, 3, 4], 5), 4, 10_000).unwrap();
        // Subsets of {1,2,3,4} summing to 5: {1,4}, {2,3} → 2.
        assert_eq!(f.exact().unwrap().to_u64(), Some(2));
    }

    #[test]
    fn mixed_lengths_rejected() {
        // The membership transducer at k=5 only emits length-5 outputs, so
        // declaring length 4 must fail the probe.
        let nfa = blowup_nfa(2);
        let err = SpanLFunction::compile(&NfaMembership::new(&nfa, 5), 4, 10_000)
            .err()
            .expect("mixed lengths");
        assert!(matches!(err, SpanLError::MixedOutputLengths(4, 5)));
    }

    #[test]
    fn budget_error_propagates() {
        let nfa = blowup_nfa(2);
        let err = SpanLFunction::compile(&NfaMembership::new(&nfa, 500), 500, 5)
            .err()
            .expect("budget");
        assert!(matches!(err, SpanLError::Budget(_)));
    }
}
