//! Concrete NL-transducers.

use lsc_automata::{Alphabet, Nfa, Symbol};

use crate::TransducerProgram;

/// The MEM-NFA transducer of §5.3.2: on input `(N, 0^k)`, nondeterministically
/// guesses a word symbol by symbol while simulating `N` on the fly, accepting
/// when the counter hits `k` in an accepting state. Its configuration is
/// `(current state of N, symbols emitted)` — logarithmic space as the paper
/// argues (a state index plus a unary-bounded counter).
///
/// Compiling it through Lemma 13 must give back an automaton equivalent to the
/// unrolling of `N` itself — the round-trip the completeness proof of
/// Proposition 12 rests on, checked in the tests.
pub struct NfaMembership<'a> {
    nfa: &'a Nfa,
    k: usize,
}

impl<'a> NfaMembership<'a> {
    /// The transducer for input `(nfa, 0^k)`.
    pub fn new(nfa: &'a Nfa, k: usize) -> Self {
        NfaMembership { nfa, k }
    }
}

impl TransducerProgram for NfaMembership<'_> {
    /// (state of N, number of symbols emitted).
    type Config = (usize, usize);

    fn alphabet(&self) -> Alphabet {
        self.nfa.alphabet().clone()
    }

    fn initial(&self) -> Self::Config {
        (self.nfa.initial(), 0)
    }

    fn is_accepting(&self, &(q, emitted): &Self::Config) -> bool {
        emitted == self.k && self.nfa.is_accepting(q)
    }

    fn successors(&self, &(q, emitted): &Self::Config) -> Vec<(Option<Symbol>, Self::Config)> {
        if emitted == self.k {
            return vec![];
        }
        self.nfa
            .transitions_from(q)
            .iter()
            .map(|&(a, t)| (Some(a), (t, emitted + 1)))
            .collect()
    }
}

/// A SUBSET-SUM witness transducer: on input weights `w_1..w_n` and target
/// `t`, emits selection bitstrings `b ∈ {0,1}^n` with `Σ b_i·w_i = t`.
///
/// The configuration `(index, partial sum ≤ t)` is logspace for unary-bounded
/// weights — the textbook pseudo-polynomial regime — and each witness has
/// exactly one run, so the relation sits in `RelationUL`: Theorem 5 gives
/// exact counting, constant-delay enumeration, and exact uniform sampling of
/// subset-sum solutions for free. (This is our added example of the framework
/// beyond the paper's §4 applications.)
pub struct SubsetSum {
    weights: Vec<u64>,
    target: u64,
}

impl SubsetSum {
    /// The transducer for the given instance.
    pub fn new(weights: Vec<u64>, target: u64) -> Self {
        SubsetSum { weights, target }
    }

    /// Number of items (= witness length).
    pub fn num_items(&self) -> usize {
        self.weights.len()
    }
}

impl TransducerProgram for SubsetSum {
    /// (next item index, partial sum).
    type Config = (usize, u64);

    fn alphabet(&self) -> Alphabet {
        Alphabet::binary()
    }

    fn initial(&self) -> Self::Config {
        (0, 0)
    }

    fn is_accepting(&self, &(idx, sum): &Self::Config) -> bool {
        idx == self.weights.len() && sum == self.target
    }

    fn successors(&self, &(idx, sum): &Self::Config) -> Vec<(Option<Symbol>, Self::Config)> {
        if idx == self.weights.len() {
            return vec![];
        }
        let mut out = vec![(Some(0), (idx + 1, sum))];
        let with = sum + self.weights[idx];
        if with <= self.target {
            out.push((Some(1), (idx + 1, with)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configuration_nfa;
    use lsc_automata::families::blowup_nfa;
    use lsc_automata::ops::is_unambiguous;
    use lsc_core::count::exact::{count_nfa_via_determinization, count_ufa};
    use lsc_core::MemNfa;

    #[test]
    fn membership_transducer_roundtrip() {
        // Counting through the Lemma 13 pipeline equals counting on N itself.
        let n = blowup_nfa(3);
        let k = 8;
        let compiled = configuration_nfa(&NfaMembership::new(&n, k), 10_000).unwrap();
        assert_eq!(
            count_nfa_via_determinization(&compiled, k),
            count_nfa_via_determinization(&n, k)
        );
        // And word-for-word agreement on the whole slice.
        let direct: Vec<_> = MemNfa::new(n.clone(), k).enumerate().collect();
        let via_transducer: Vec<_> = MemNfa::new(compiled, k).enumerate().collect();
        assert_eq!(direct, via_transducer);
    }

    #[test]
    fn membership_transducer_preserves_unambiguity() {
        let n = blowup_nfa(4); // unambiguous
        assert!(is_unambiguous(&n));
        let compiled = configuration_nfa(&NfaMembership::new(&n, 9), 10_000).unwrap();
        assert!(is_unambiguous(&compiled), "UL in, UFA out (Lemma 13)");
    }

    #[test]
    fn subset_sum_counts_and_samples() {
        // Weights 1..=6, target 7: solutions counted by brute force = 14...
        // verify against explicit enumeration instead of trusting a constant.
        let weights = vec![1u64, 2, 3, 4, 5, 6];
        let target = 7u64;
        let brute: Vec<u32> = (0..64u32)
            .filter(|mask| {
                let sum: u64 = weights
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &w)| w)
                    .sum();
                sum == target
            })
            .collect();
        let program = SubsetSum::new(weights.clone(), target);
        let nfa = configuration_nfa(&program, 10_000).unwrap();
        assert!(is_unambiguous(&nfa), "subset-sum transducer is unambiguous");
        let count = count_ufa(&nfa, 6).unwrap();
        assert_eq!(count.to_u64(), Some(brute.len() as u64));

        // Enumerate with constant delay and cross-check the witnesses.
        let inst = MemNfa::new(nfa, 6);
        let mut words: Vec<Vec<u32>> = inst.enumerate_constant_delay().unwrap().collect();
        words.sort();
        let mut expected: Vec<Vec<u32>> = brute
            .iter()
            .map(|mask| (0..6).map(|i| (mask >> i) & 1).collect())
            .collect();
        expected.sort();
        assert_eq!(words, expected);
    }

    #[test]
    fn subset_sum_empty_instance() {
        let program = SubsetSum::new(vec![2, 4, 6], 5);
        let nfa = configuration_nfa(&program, 1000).unwrap();
        let inst = MemNfa::new(nfa, 3);
        assert!(!inst.exists_witness());
        assert!(inst.count_exact().unwrap().is_zero());
    }
}
