//! Spanner expressions: a combinator front end for building eVAs.
//!
//! The paper's §4.1 pipeline starts from an eVA; writing one transition by
//! transition is painful beyond toy examples, so this module provides the
//! regex-with-capture-variables surface syntax of the spanner literature
//! ("regex formulas" / variable-set regex of \[FKRV15\]): sequence, alternation,
//! iteration, and `x{ e }` capture. Compilation goes through a
//! Thompson-style automaton with ε-moves and marker moves, ε-removal, and a
//! *marker-chain collapse* so that between two letters at most one
//! variable-set transition fires — the alternation shape the paper's run
//! definition requires.
//!
//! Functionality is *not* guaranteed by construction (e.g. starring a capture
//! opens the variable repeatedly): [`crate::SpannerInstance::new`] still
//! checks it, exactly as the paper restricts to functional eVAs.

use lsc_automata::{Alphabet, StateSet, Symbol};

use crate::{Eva, Marker, MarkerSet};

/// A spanner expression over a document alphabet.
///
/// ```
/// use lsc_automata::Alphabet;
/// use lsc_spanners::{SpannerExpr, SpannerInstance};
///
/// // .* x{ a+ } .* — capture any nonempty block of a's.
/// let ab = Alphabet::from_chars(&['a', 'b']);
/// let expr = SpannerExpr::Seq(vec![
///     SpannerExpr::skip(),
///     SpannerExpr::Capture(0, Box::new(SpannerExpr::Plus(Box::new(SpannerExpr::Letter(0))))),
///     SpannerExpr::skip(),
/// ]);
/// let instance = SpannerInstance::new(expr.compile(&ab), "aba");
/// assert_eq!(instance.count_exact().unwrap().to_u64(), Some(2)); // [0,1) and [2,3)
/// ```
#[derive(Clone, Debug)]
pub enum SpannerExpr {
    /// Match one specific document symbol.
    Letter(Symbol),
    /// Match any single document symbol.
    AnyLetter,
    /// Concatenation.
    Seq(Vec<SpannerExpr>),
    /// Alternation.
    Alt(Vec<SpannerExpr>),
    /// Zero or more repetitions.
    Star(Box<SpannerExpr>),
    /// One or more repetitions.
    Plus(Box<SpannerExpr>),
    /// Zero or one.
    Opt(Box<SpannerExpr>),
    /// `x_v { e }`: open variable `v`, match `e`, close `v`.
    Capture(usize, Box<SpannerExpr>),
}

impl SpannerExpr {
    /// Convenience: the expression matching a literal string.
    pub fn literal(s: &str, alphabet: &Alphabet) -> SpannerExpr {
        SpannerExpr::Seq(
            s.chars()
                .map(|c| {
                    SpannerExpr::Letter(alphabet.symbol_of(c).expect("literal char in alphabet"))
                })
                .collect(),
        )
    }

    /// Convenience: `.*` — skip any amount of document.
    pub fn skip() -> SpannerExpr {
        SpannerExpr::Star(Box::new(SpannerExpr::AnyLetter))
    }

    /// Largest variable index mentioned, if any.
    fn max_var(&self) -> Option<usize> {
        match self {
            SpannerExpr::Letter(_) | SpannerExpr::AnyLetter => None,
            SpannerExpr::Seq(parts) | SpannerExpr::Alt(parts) => {
                parts.iter().filter_map(|p| p.max_var()).max()
            }
            SpannerExpr::Star(inner) | SpannerExpr::Plus(inner) | SpannerExpr::Opt(inner) => {
                inner.max_var()
            }
            SpannerExpr::Capture(v, inner) => Some(inner.max_var().map_or(*v, |i| i.max(*v))),
        }
    }

    /// Compiles to an eVA over `alphabet` (variables `0..=max_var`).
    pub fn compile(&self, alphabet: &Alphabet) -> Eva {
        let num_vars = self.max_var().map_or(0, |v| v + 1);
        let mut raw = RawAutomaton {
            edges: Vec::new(),
            num_states: 2,
        };
        raw.fragment(self, 0, 1);
        raw.into_eva(alphabet.clone(), num_vars)
    }
}

/// Edge labels of the intermediate automaton.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RawLabel {
    Eps,
    Letter(Symbol),
    AnyLetter,
    Markers(MarkerSet),
}

struct RawAutomaton {
    edges: Vec<(usize, RawLabel, usize)>,
    num_states: usize,
}

impl RawAutomaton {
    fn fresh(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    fn fragment(&mut self, e: &SpannerExpr, from: usize, to: usize) {
        match e {
            SpannerExpr::Letter(s) => self.edges.push((from, RawLabel::Letter(*s), to)),
            SpannerExpr::AnyLetter => self.edges.push((from, RawLabel::AnyLetter, to)),
            SpannerExpr::Seq(parts) => {
                if parts.is_empty() {
                    self.edges.push((from, RawLabel::Eps, to));
                    return;
                }
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.fresh()
                    };
                    self.fragment(p, cur, next);
                    cur = next;
                }
            }
            SpannerExpr::Alt(parts) => {
                for p in parts {
                    self.fragment(p, from, to);
                }
            }
            SpannerExpr::Star(inner) => {
                let hub = self.fresh();
                self.edges.push((from, RawLabel::Eps, hub));
                self.edges.push((hub, RawLabel::Eps, to));
                self.fragment(inner, hub, hub);
            }
            SpannerExpr::Plus(inner) => {
                let mid = self.fresh();
                self.fragment(inner, from, mid);
                self.edges.push((mid, RawLabel::Eps, to));
                self.fragment(inner, mid, mid);
            }
            SpannerExpr::Opt(inner) => {
                self.edges.push((from, RawLabel::Eps, to));
                self.fragment(inner, from, to);
            }
            SpannerExpr::Capture(v, inner) => {
                let s1 = self.fresh();
                let s2 = self.fresh();
                let open: MarkerSet = 1 << Marker::Open(*v).bit();
                let close: MarkerSet = 1 << Marker::Close(*v).bit();
                self.edges.push((from, RawLabel::Markers(open), s1));
                self.fragment(inner, s1, s2);
                self.edges.push((s2, RawLabel::Markers(close), to));
            }
        }
    }

    /// ε-closure of one state.
    fn eps_closure(&self, q: usize) -> StateSet {
        let mut seen = StateSet::new(self.num_states);
        seen.insert(q);
        let mut stack = vec![q];
        while let Some(p) = stack.pop() {
            for &(f, l, t) in &self.edges {
                if f == p && l == RawLabel::Eps && seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Finalizes: ε-removal, then marker-chain collapse so at most one
    /// variable-set transition separates two letters.
    fn into_eva(self, alphabet: Alphabet, num_vars: usize) -> Eva {
        // 1. ε-removal into (letter | marker) edges with closure at source;
        //    acceptance: state 1 (the global accept) through closures.
        let closures: Vec<StateSet> = (0..self.num_states).map(|q| self.eps_closure(q)).collect();
        let mut letters: Vec<(usize, Symbol, usize)> = Vec::new();
        let mut markers: Vec<(usize, MarkerSet, usize)> = Vec::new();
        let mut accepting = vec![false; self.num_states];
        for q in 0..self.num_states {
            if closures[q].contains(1) {
                accepting[q] = true;
            }
            for p in closures[q].iter() {
                for &(f, l, t) in &self.edges {
                    if f != p {
                        continue;
                    }
                    match l {
                        RawLabel::Eps => {}
                        RawLabel::Letter(s) => letters.push((q, s, t)),
                        RawLabel::AnyLetter => {
                            for s in 0..alphabet.len() as Symbol {
                                letters.push((q, s, t));
                            }
                        }
                        RawLabel::Markers(m) => markers.push((q, m, t)),
                    }
                }
            }
        }
        // 2. Marker-chain collapse: all marker-paths q ⇒ q' with unioned
        //    masks (skipping paths that repeat a marker — those runs are
        //    invalid regardless). Depth-first over (state, mask) pairs.
        let mut collapsed: Vec<(usize, MarkerSet, usize)> = Vec::new();
        for q in 0..self.num_states {
            let mut stack: Vec<(usize, MarkerSet)> = vec![(q, 0)];
            let mut seen: Vec<(usize, MarkerSet)> = vec![(q, 0)];
            while let Some((p, mask)) = stack.pop() {
                if mask != 0 && p != q {
                    collapsed.push((q, mask, p));
                }
                for &(f, m, t) in &markers {
                    if f != p || m & mask != 0 {
                        continue; // not from here, or repeats a marker
                    }
                    let next = (t, mask | m);
                    if !seen.contains(&next) {
                        seen.push(next);
                        stack.push(next);
                    }
                }
            }
        }
        collapsed.sort_unstable();
        collapsed.dedup();
        // 3. Assemble the eVA. Acceptance through trailing markers is the
        //    product's job; here a state is final iff accepting, and marker
        //    edges into accepting states are kept.
        let mut eva = Eva::new(self.num_states, num_vars, alphabet);
        eva.set_initial(0);
        for (q, acc) in accepting.iter().enumerate() {
            if *acc {
                eva.set_final(q);
            }
        }
        letters.sort_unstable();
        letters.dedup();
        for (q, s, t) in letters {
            eva.add_letter(q, s, t);
        }
        for (q, mask, t) in collapsed {
            let ms: Vec<Marker> = (0..num_vars)
                .flat_map(|v| {
                    let mut out = Vec::new();
                    if mask >> (2 * v) & 1 == 1 {
                        out.push(Marker::Open(v));
                    }
                    if mask >> (2 * v + 1) & 1 == 1 {
                        out.push(Marker::Close(v));
                    }
                    out
                })
                .collect();
            eva.add_varset(q, &ms, t);
        }
        eva
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Span, SpannerInstance};
    use lsc_automata::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::from_chars(&['a', 'b'])
    }

    /// `.* x{a+} .*` — the block spanner, written as an expression.
    fn block_expr() -> SpannerExpr {
        SpannerExpr::Seq(vec![
            SpannerExpr::skip(),
            SpannerExpr::Capture(
                0,
                Box::new(SpannerExpr::Plus(Box::new(SpannerExpr::Letter(0)))),
            ),
            SpannerExpr::skip(),
        ])
    }

    #[test]
    fn block_expression_matches_handwritten_spanner() {
        let doc = "aabaaab";
        let from_expr = SpannerInstance::new(block_expr().compile(&ab()), doc);
        let handwritten = SpannerInstance::new(crate::block_spanner(&ab(), 'a'), doc);
        let mut a: Vec<Span> = from_expr.mappings().map(|m| m.spans[0]).collect();
        let mut b: Vec<Span> = handwritten.mappings().map(|m| m.spans[0]).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn two_variable_extraction() {
        // x{a+} b y{a+}: two a-blocks separated by exactly one b.
        let expr = SpannerExpr::Seq(vec![
            SpannerExpr::skip(),
            SpannerExpr::Capture(
                0,
                Box::new(SpannerExpr::Plus(Box::new(SpannerExpr::Letter(0)))),
            ),
            SpannerExpr::Letter(1),
            SpannerExpr::Capture(
                1,
                Box::new(SpannerExpr::Plus(Box::new(SpannerExpr::Letter(0)))),
            ),
            SpannerExpr::skip(),
        ]);
        let eva = expr.compile(&ab());
        assert_eq!(eva.num_vars(), 2);
        let inst = SpannerInstance::new(eva, "aabaa");
        let mappings: Vec<_> = inst.mappings().collect();
        // x-blocks ending at position 2, y-blocks starting at 3:
        // x ∈ {[0,2), [1,2)}, y ∈ {[3,4), [3,5)} → 4 mappings.
        assert_eq!(mappings.len(), 4);
        for m in &mappings {
            assert!(
                m.spans[0].end == 2 && m.spans[1].start == 3,
                "{}",
                m.display()
            );
        }
    }

    #[test]
    fn empty_capture_is_an_empty_span() {
        // x{ε} at any position: n+1 mappings on a document of length n.
        let expr = SpannerExpr::Seq(vec![
            SpannerExpr::skip(),
            SpannerExpr::Capture(0, Box::new(SpannerExpr::Seq(vec![]))),
            SpannerExpr::skip(),
        ]);
        let inst = SpannerInstance::new(expr.compile(&ab()), "aba");
        let mut spans: Vec<Span> = inst.mappings().map(|m| m.spans[0]).collect();
        spans.sort();
        assert_eq!(spans, (0..=3).map(|i| Span::new(i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn adjacent_captures_share_a_position() {
        // x{a} y{a}: close x and open y fire in one marker set.
        let expr = SpannerExpr::Seq(vec![
            SpannerExpr::Capture(0, Box::new(SpannerExpr::Letter(0))),
            SpannerExpr::Capture(1, Box::new(SpannerExpr::Letter(0))),
        ]);
        let inst = SpannerInstance::new(expr.compile(&ab()), "aa");
        let mappings: Vec<_> = inst.mappings().collect();
        assert_eq!(mappings.len(), 1);
        assert_eq!(mappings[0].spans[0], Span::new(0, 1));
        assert_eq!(mappings[0].spans[1], Span::new(1, 2));
    }

    #[test]
    fn starred_capture_is_not_functional() {
        // (x{a})* reopens x: the instance constructor must reject it.
        let expr = SpannerExpr::Star(Box::new(SpannerExpr::Capture(
            0,
            Box::new(SpannerExpr::Letter(0)),
        )));
        let eva = expr.compile(&ab());
        assert!(!eva.is_functional());
    }

    #[test]
    fn literal_and_skip_helpers() {
        let expr = SpannerExpr::Seq(vec![
            SpannerExpr::skip(),
            SpannerExpr::Capture(0, Box::new(SpannerExpr::literal("ab", &ab()))),
            SpannerExpr::skip(),
        ]);
        let inst = SpannerInstance::new(expr.compile(&ab()), "abab");
        let mut spans: Vec<Span> = inst.mappings().map(|m| m.spans[0]).collect();
        spans.sort();
        assert_eq!(spans, vec![Span::new(0, 2), Span::new(2, 4)]);
    }
}
