//! Extended variable-set automata (eVAs).

use lsc_automata::{Alphabet, StateSet, Symbol};

use crate::Marker;

/// A set of markers fired simultaneously, as a bitmask (bit `2v` = `x_v⊢`,
/// bit `2v+1` = `⊣x_v`). The empty set is represented by `0` and never
/// appears on an explicit transition (the paper requires `S ≠ ∅`; an empty
/// `X_i` means "no variable transition taken").
pub type MarkerSet = u32;

/// An extended VA `A = (Q, q₀, F, δ)` over a document alphabet, with letter
/// transitions `(q, a, q')` and variable-set transitions `(q, S, q')` (§4.1).
#[derive(Clone, Debug)]
pub struct Eva {
    num_states: usize,
    num_vars: usize,
    alphabet: Alphabet,
    initial: usize,
    finals: Vec<bool>,
    letters: Vec<Vec<(Symbol, usize)>>,
    varsets: Vec<Vec<(MarkerSet, usize)>>,
}

impl Eva {
    /// An eVA with `num_states` states and `num_vars` capture variables.
    pub fn new(num_states: usize, num_vars: usize, alphabet: Alphabet) -> Self {
        assert!(num_vars <= 16, "marker sets are u32 bitmasks");
        Eva {
            num_states,
            num_vars,
            alphabet,
            initial: 0,
            finals: vec![false; num_states],
            letters: vec![Vec::new(); num_states],
            varsets: vec![Vec::new(); num_states],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of capture variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The document alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The initial state.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, q: usize) {
        assert!(q < self.num_states);
        self.initial = q;
    }

    /// Marks a final state.
    pub fn set_final(&mut self, q: usize) {
        self.finals[q] = true;
    }

    /// Is `q` final?
    pub fn is_final(&self, q: usize) -> bool {
        self.finals[q]
    }

    /// Adds a letter transition `q --a--> q'`.
    pub fn add_letter(&mut self, q: usize, a: Symbol, to: usize) {
        assert!((a as usize) < self.alphabet.len() && q < self.num_states && to < self.num_states);
        self.letters[q].push((a, to));
    }

    /// Adds a variable-set transition `q --S--> q'` for a nonempty marker set.
    pub fn add_varset(&mut self, q: usize, markers: &[Marker], to: usize) {
        assert!(!markers.is_empty(), "variable-set transitions need S ≠ ∅");
        let mut mask: MarkerSet = 0;
        for m in markers {
            match *m {
                Marker::Open(v) | Marker::Close(v) => {
                    assert!(v < self.num_vars, "marker for out-of-range variable")
                }
            }
            mask |= 1 << m.bit();
        }
        self.varsets[q].push((mask, to));
    }

    /// Letter transitions from `q`.
    pub fn letters_from(&self, q: usize) -> &[(Symbol, usize)] {
        &self.letters[q]
    }

    /// Variable-set transitions from `q`.
    pub fn varsets_from(&self, q: usize) -> &[(MarkerSet, usize)] {
        &self.varsets[q]
    }

    /// All distinct nonempty marker sets on transitions.
    pub fn used_marker_sets(&self) -> Vec<MarkerSet> {
        let mut sets: Vec<MarkerSet> = self
            .varsets
            .iter()
            .flat_map(|row| row.iter().map(|&(s, _)| s))
            .collect();
        sets.sort_unstable();
        sets.dedup();
        sets
    }

    /// Is the eVA *functional* — is every accepting run valid (each variable
    /// opened exactly once, then closed exactly once)?
    ///
    /// \[FRU+18\]'s precondition for polynomial evaluation, and the paper's
    /// hypothesis in Corollaries 6–7. Decided by exploring the product of the
    /// state space with per-variable status (unopened/open/closed): the eVA is
    /// functional iff no final state is reachable with an inconsistent or
    /// incomplete status. Exponential in the number of *variables* only
    /// (`3^V · |Q|`), which matches the usual parameter regime (few
    /// variables, large documents).
    pub fn is_functional(&self) -> bool {
        // Status encoding: 2 bits per variable — 0 unopened, 1 open, 2 closed.
        let status_of = |st: u64, v: usize| (st >> (2 * v)) & 3;
        let apply = |st: u64, mask: MarkerSet| -> Option<u64> {
            let mut out = st;
            for v in 0..self.num_vars {
                let open = mask >> (2 * v) & 1 == 1;
                let close = mask >> (2 * v + 1) & 1 == 1;
                match (open, close, status_of(st, v)) {
                    (false, false, _) => {}
                    (true, false, 0) => out = (out & !(3 << (2 * v))) | (1 << (2 * v)),
                    (false, true, 1) => out = (out & !(3 << (2 * v))) | (2 << (2 * v)),
                    // Open and close in the same set: the empty span [i, i).
                    (true, true, 0) => out = (out & !(3 << (2 * v))) | (2 << (2 * v)),
                    _ => return None, // reopened / closed twice / closed unopened
                }
            }
            Some(out)
        };
        let all_closed: u64 = (0..self.num_vars).map(|v| 2u64 << (2 * v)).sum();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![(self.initial, 0u64)];
        seen.insert((self.initial, 0u64));
        while let Some((q, st)) = stack.pop() {
            if self.finals[q] && st != all_closed {
                // Some document realizes this as an invalid accepting run.
                return false;
            }
            for &(_, to) in &self.letters[q] {
                if seen.insert((to, st)) {
                    stack.push((to, st));
                }
            }
            for &(mask, to) in &self.varsets[q] {
                // A marker misuse on a path that still reaches a final state
                // would only break validity if the run accepts; but any
                // misused transition can be extended to an accepting run only
                // through states we keep exploring — a `None` here kills this
                // branch, and acceptance through it is impossible anyway
                // (the run would be invalid at the final state *if* the
                // status were representable). Treat misuse as reaching final
                // states invalidly: conservatively explore a poisoned status.
                match apply(st, mask) {
                    Some(st2) => {
                        if seen.insert((to, st2)) {
                            stack.push((to, st2));
                        }
                    }
                    None => {
                        // Poison: if any final state is reachable from `to`,
                        // some accepting run is invalid.
                        if self.reaches_final(to) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Can any final state be reached from `q` (through any transitions)?
    fn reaches_final(&self, q: usize) -> bool {
        let mut seen = StateSet::new(self.num_states);
        let mut stack = vec![q];
        seen.insert(q);
        while let Some(p) = stack.pop() {
            if self.finals[p] {
                return true;
            }
            for &(_, to) in &self.letters[p] {
                if seen.insert(to) {
                    stack.push(to);
                }
            }
            for &(_, to) in &self.varsets[p] {
                if seen.insert(to) {
                    stack.push(to);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::from_chars(&['a', 'b'])
    }

    #[test]
    fn block_spanner_is_functional() {
        let eva = crate::block_spanner(&ab(), 'a');
        assert!(eva.is_functional());
        assert_eq!(eva.used_marker_sets(), vec![0b01, 0b10]);
    }

    #[test]
    fn missing_close_is_not_functional() {
        // Opens x but can accept without closing.
        let mut eva = Eva::new(2, 1, ab());
        eva.set_initial(0);
        eva.set_final(1);
        eva.add_varset(0, &[Marker::Open(0)], 1);
        eva.add_letter(1, 0, 1);
        assert!(!eva.is_functional());
    }

    #[test]
    fn double_open_is_not_functional() {
        let mut eva = Eva::new(3, 1, ab());
        eva.set_initial(0);
        eva.set_final(2);
        eva.add_varset(0, &[Marker::Open(0)], 1);
        eva.add_varset(1, &[Marker::Open(0)], 1); // reopen!
        eva.add_varset(1, &[Marker::Close(0)], 2);
        assert!(!eva.is_functional());
    }

    #[test]
    fn open_close_same_position_ok() {
        // Empty spans are valid: open and close in one marker set.
        let mut eva = Eva::new(2, 1, ab());
        eva.set_initial(0);
        eva.set_final(1);
        eva.add_varset(0, &[Marker::Open(0), Marker::Close(0)], 1);
        eva.add_letter(1, 0, 1);
        eva.add_letter(1, 1, 1);
        assert!(eva.is_functional());
    }

    #[test]
    fn misuse_on_dead_branch_is_still_functional() {
        // A double-open path that can never reach a final state is harmless.
        let mut eva = Eva::new(4, 1, ab());
        eva.set_initial(0);
        eva.set_final(3);
        eva.add_varset(0, &[Marker::Open(0)], 1);
        eva.add_varset(1, &[Marker::Close(0)], 3);
        eva.add_varset(1, &[Marker::Open(0)], 2); // dead end
        assert!(eva.is_functional());
    }
}
