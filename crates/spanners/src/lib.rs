//! Document spanners: the information-extraction application of the paper
//! (§4.1).
//!
//! `EVAL-eVA = {((A, d), µ) : A a functional eVA, d a document, µ ∈ ⟦A⟧(d)}`.
//! Witnesses are *mappings* assigning a span of the document to each capture
//! variable. Corollary 6 gives an FPRAS and a PLVUG for counting/sampling the
//! mappings of a functional eVA (both new results at the time); Corollary 7
//! upgrades unambiguous eVAs to the full `RelationUL` toolbox — exact
//! counting, constant-delay enumeration, exact uniform sampling.
//!
//! The reduction encodes a mapping as the sequence of *marker sets* fired at
//! document positions `0..=n` (the `X_i` of the paper's run definition); with
//! all variables total, mapping ↔ marker word is a bijection, so the product
//! of the eVA with the document is a MEM-NFA instance whose length-`(n+1)`
//! language is exactly `⟦A⟧(d)`.
//!
//! * [`Eva`] — extended variable-set automata with letter and variable-set
//!   transitions, plus the functionality and validity checks of \[FRU+18\];
//! * [`SpannerInstance`] — the document product, mapping decode, and the
//!   count/enumerate/sample pipelines;
//! * [`Span`], [`Mapping`], [`Marker`] — the data model.

#![forbid(unsafe_code)]

mod eva;
mod expr;
mod product;
mod span;

pub use eva::{Eva, MarkerSet};
pub use expr::SpannerExpr;
pub use product::SpannerInstance;
pub use span::{Mapping, Marker, Span};

use lsc_automata::Alphabet;

/// A ready-made example spanner: one variable `x` capturing every occurrence
/// of `pattern_char`-blocks — concretely, `x` spans any maximal-or-not run of
/// consecutive `pattern_char` symbols (nonempty). Unambiguous: a mapping
/// determines its run.
pub fn block_spanner(alphabet: &Alphabet, pattern_char: char) -> Eva {
    let sym = alphabet
        .symbol_of(pattern_char)
        .expect("pattern char must be in the alphabet");
    // States: 0 scan-before, 1 inside-x, 2 scan-after.
    let mut eva = Eva::new(3, 1, alphabet.clone());
    eva.set_initial(0);
    eva.set_final(2);
    for a in alphabet.symbols() {
        eva.add_letter(0, a, 0);
        eva.add_letter(2, a, 2);
    }
    eva.add_letter(1, sym, 1);
    eva.add_varset(0, &[Marker::Open(0)], 1);
    eva.add_varset(1, &[Marker::Close(0)], 2);
    eva
}
