//! The document product: `EVAL-eVA → MEM-NFA`.

use std::sync::Arc;

use lsc_arith::{BigFloat, BigNat};
use lsc_automata::{Alphabet, Nfa, Symbol};
use lsc_core::count::exact::NotUnambiguousError;
use lsc_core::engine::{domain_fingerprint, RoutedCount, RouterConfig};
use lsc_core::fpras::{FprasError, FprasParams};
use lsc_core::{MemNfa, Queryable};
use rand::Rng;

use crate::{Eva, Mapping, MarkerSet, Span};

/// An `EVAL-eVA` instance: a functional eVA evaluated over one document,
/// reduced to MEM-NFA.
///
/// Witness encoding: a word `S_0 S_1 … S_n` over the alphabet of marker sets
/// (including ∅), where `S_i` is the paper's `X_{i+1}` — the set fired at
/// document position `i`. Since mappings are total, the word determines the
/// mapping and vice versa; unambiguity of the product automaton coincides
/// with the paper's unambiguous-eVA notion over this document.
pub struct SpannerInstance {
    eva: Eva,
    document: Vec<Symbol>,
    /// Witness symbol id → marker-set mask (`sets[sym]`).
    sets: Vec<MarkerSet>,
    instance: MemNfa,
}

impl SpannerInstance {
    /// Builds the product of `eva` with `document`.
    ///
    /// # Panics
    /// Panics if the eVA is not functional (the paper's standing hypothesis —
    /// `⟦A⟧(d)` of a non-functional eVA requires the NP-hard validity check)
    /// or if the document contains characters outside the eVA's alphabet.
    pub fn new(eva: Eva, document: &str) -> Self {
        assert!(
            eva.is_functional(),
            "SpannerInstance requires a functional eVA"
        );
        let doc: Vec<Symbol> = document
            .chars()
            .map(|c| {
                eva.alphabet()
                    .symbol_of(c)
                    .expect("document character outside the eVA alphabet")
            })
            .collect();
        // Witness alphabet: ∅ first, then each used marker set.
        let mut sets = vec![0 as MarkerSet];
        sets.extend(eva.used_marker_sets());
        let n = doc.len();
        let m = eva.num_states();
        // Product states: (eva state, position 0..=n) plus an accept sink.
        let state_of = |q: usize, i: usize| i * m + q;
        let sink = (n + 1) * m;
        let mut b = Nfa::builder(Alphabet::sized(sets.len()), sink + 1);
        b.set_initial(state_of(eva.initial(), 0));
        b.set_accepting(sink);
        for i in 0..=n {
            for q in 0..m {
                // Choosing marker set S at position i: either ∅ (stay at q) or
                // an explicit varset transition.
                let mut after: Vec<(usize, usize)> = vec![(0, q)]; // (set idx, state)
                for &(mask, to) in eva.varsets_from(q) {
                    let idx = sets.iter().position(|&s| s == mask).expect("interned");
                    after.push((idx, to));
                }
                for (set_idx, p) in after {
                    if let Some(&expected) = doc.get(i) {
                        // ...then the letter d[i].
                        for &(a, to) in eva.letters_from(p) {
                            if a == expected {
                                b.add_transition(
                                    state_of(q, i),
                                    set_idx as Symbol,
                                    state_of(to, i + 1),
                                );
                            }
                        }
                    } else if eva.is_final(p) {
                        // Final marker set X_{n+1}, then accept.
                        b.add_transition(state_of(q, i), set_idx as Symbol, sink);
                    }
                }
            }
        }
        let nfa = b.build().trimmed();
        let instance = MemNfa::new(nfa, n + 1);
        SpannerInstance {
            eva,
            document: doc,
            sets,
            instance,
        }
    }

    /// The underlying MEM-NFA instance.
    pub fn mem_nfa(&self) -> &MemNfa {
        &self.instance
    }

    /// The document length `n`.
    pub fn document_len(&self) -> usize {
        self.document.len()
    }

    /// Is the spanner unambiguous over this document (Corollary 7's
    /// hypothesis)? Equivalent to unambiguity of the product automaton.
    pub fn is_unambiguous(&self) -> bool {
        self.instance.is_unambiguous()
    }

    /// Decodes a witness word into a mapping.
    fn decode(&self, word: &[Symbol]) -> Mapping {
        let vars = self.eva.num_vars();
        let mut starts = vec![usize::MAX; vars];
        let mut spans = vec![Span::new(0, 0); vars];
        for (i, &sym) in word.iter().enumerate() {
            let mask = self.sets[sym as usize];
            for v in 0..vars {
                if mask >> (2 * v) & 1 == 1 {
                    starts[v] = i;
                }
                if mask >> (2 * v + 1) & 1 == 1 {
                    debug_assert_ne!(starts[v], usize::MAX, "functional eVA closes after open");
                    spans[v] = Span::new(starts[v], i);
                }
            }
        }
        Mapping { spans }
    }

    /// Exact number of mappings for an unambiguous spanner (Corollary 7).
    ///
    /// # Errors
    /// [`NotUnambiguousError`] if the product is ambiguous.
    pub fn count_exact(&self) -> Result<BigNat, NotUnambiguousError> {
        self.instance.count_exact()
    }

    /// Ground-truth mapping count via determinization (test oracle).
    pub fn count_oracle(&self) -> BigNat {
        self.instance.count_oracle()
    }

    /// FPRAS estimate of `|⟦A⟧(d)|` (Corollary 6).
    ///
    /// # Errors
    /// Propagates FPRAS failure events.
    pub fn count_approx<R: Rng + ?Sized>(
        &self,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<BigFloat, FprasError> {
        self.instance.count_approx(params, rng)
    }

    /// Routed mapping count: exact for unambiguous (or small-product)
    /// spanners, FPRAS otherwise. The classification and determinization
    /// probe are cached on this instance — the information-extraction serving
    /// pattern evaluates one spanner against many requests, and only the
    /// first pays for the routing decision.
    ///
    /// # Errors
    /// Propagates FPRAS failure events when the FPRAS route fires.
    pub fn count_routed<R: Rng + ?Sized>(
        &self,
        config: &RouterConfig,
        rng: &mut R,
    ) -> Result<RoutedCount, FprasError> {
        self.instance.count_routed(config, rng)
    }

    /// Enumerates all mappings (polynomial delay; constant delay via
    /// [`MemNfa::enumerate_constant_delay`] when unambiguous).
    pub fn mappings(&self) -> impl Iterator<Item = Mapping> + '_ {
        self.instance.enumerate().map(|w| self.decode(&w))
    }

    /// Draws uniform mappings via the Las Vegas generator (Corollary 6).
    ///
    /// # Errors
    /// Propagates FPRAS failure events from preprocessing.
    pub fn sample_mappings<R: Rng + ?Sized>(
        &self,
        how_many: usize,
        params: FprasParams,
        rng: &mut R,
    ) -> Result<Vec<Mapping>, FprasError> {
        let generator = self.instance.las_vegas_generator(params, rng)?;
        let mut out = Vec::with_capacity(how_many);
        for _ in 0..how_many {
            if let Some(w) = generator.generate(rng).witness() {
                out.push(self.decode(&w));
            }
        }
        Ok(out)
    }
}

/// A spanner-over-document instance is directly queryable: the generic
/// engine entry points serve mapping counts (Corollary 6/7), streaming
/// mapping enumeration (pageable via resume tokens), and uniform mapping
/// samples, decoded to [`Mapping`] values. The session is keyed by the
/// already-built document product, so evaluating one spanner against many
/// requests — the information-extraction serving pattern — shares one
/// prepared artifact engine-wide.
impl Queryable for SpannerInstance {
    type Output = Mapping;

    fn to_instance(&self) -> (Arc<Nfa>, usize) {
        (
            self.instance.prepared().nfa_arc().clone(),
            self.instance.length(),
        )
    }

    fn decode(&self, word: &[Symbol]) -> Mapping {
        SpannerInstance::decode(self, word)
    }

    fn domain_fingerprint(&self) -> u64 {
        domain_fingerprint("eval-eva", [self.instance.prepared().fingerprint()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{block_spanner, Marker};
    use lsc_automata::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ab() -> Alphabet {
        Alphabet::from_chars(&['a', 'b'])
    }

    #[test]
    fn block_spanner_mappings() {
        // Document "aaba": a-blocks are all nonempty runs of a's:
        // [0,1), [0,2), [1,2), [3,4).
        let inst = SpannerInstance::new(block_spanner(&ab(), 'a'), "aaba");
        let mut got: Vec<Span> = inst.mappings().map(|m| m.spans[0]).collect();
        got.sort();
        let expected = vec![
            Span::new(0, 1),
            Span::new(0, 2),
            Span::new(1, 2),
            Span::new(3, 4),
        ];
        assert_eq!(got, expected);
        assert_eq!(inst.count_oracle().to_u64(), Some(4));
        assert!(inst.is_unambiguous(), "one run per mapping");
        assert_eq!(inst.count_exact().unwrap().to_u64(), Some(4));
    }

    #[test]
    fn empty_document() {
        let inst = SpannerInstance::new(block_spanner(&ab(), 'a'), "");
        // No nonempty a-block exists in ε.
        assert_eq!(inst.count_oracle().to_u64(), Some(0));
        assert_eq!(inst.mappings().count(), 0);
    }

    #[test]
    fn sampling_returns_valid_mappings() {
        let inst = SpannerInstance::new(block_spanner(&ab(), 'a'), "aabaaab");
        let truth = inst.count_oracle().to_u64().unwrap();
        assert!(truth > 0);
        let mut rng = StdRng::seed_from_u64(5);
        let samples = inst
            .sample_mappings(30, FprasParams::quick(), &mut rng)
            .unwrap();
        assert!(!samples.is_empty());
        for m in samples {
            let span = m.spans[0];
            assert!(!span.is_empty());
            assert!("aabaaab"[span.start..span.end].chars().all(|c| c == 'a'));
        }
    }

    #[test]
    fn routed_counts_reuse_the_prepared_product() {
        use std::sync::Arc;
        let inst = SpannerInstance::new(block_spanner(&ab(), 'a'), "aabaaab");
        let dag = Arc::as_ptr(inst.mem_nfa().prepared().dag());
        let mut rng = StdRng::seed_from_u64(11);
        let config = RouterConfig::default();
        let first = inst.count_routed(&config, &mut rng).unwrap();
        assert!(first.is_exact(), "unambiguous block spanner routes exact");
        for _ in 0..3 {
            let again = inst.count_routed(&config, &mut rng).unwrap();
            assert_eq!(again.exact, first.exact);
            assert_eq!(again.route, first.route);
        }
        assert_eq!(
            Arc::as_ptr(inst.mem_nfa().prepared().dag()),
            dag,
            "repeated routed counts share one compiled product"
        );
    }

    #[test]
    fn typed_engine_queries_return_mappings() {
        use lsc_core::Engine;
        let inst = SpannerInstance::new(block_spanner(&ab(), 'a'), "aaba");
        let engine = Engine::with_defaults();
        let direct: Vec<Mapping> = inst.mappings().collect();
        // The unambiguous product streams constant-delay through the typed
        // cursor; page it across a token boundary.
        let mut cursor = engine.enumerate(&inst);
        let first: Vec<Mapping> = cursor.by_ref().take(2).collect();
        let rest: Vec<Mapping> = engine.resume(&inst, &cursor.token()).unwrap().collect();
        let mut stitched: Vec<Mapping> = first.into_iter().chain(rest).collect();
        let mut expected = direct.clone();
        stitched.sort();
        expected.sort();
        assert_eq!(stitched, expected);
        assert_eq!(
            engine.count(&inst).unwrap().exact.unwrap().to_u64(),
            Some(4)
        );
        for m in engine.sample(&inst, 3).unwrap().take(5) {
            assert!(!m.spans[0].is_empty());
        }
        assert_eq!(engine.stats().misses, 1, "one session serves everything");
    }

    #[test]
    fn fpras_matches_oracle_on_longer_document() {
        let doc = "aabaaabaaaabab";
        let inst = SpannerInstance::new(block_spanner(&ab(), 'a'), doc);
        let truth = inst.count_oracle().to_f64();
        let mut rng = StdRng::seed_from_u64(6);
        let est = inst.count_approx(FprasParams::quick(), &mut rng).unwrap();
        assert!(
            (est.to_f64() - truth).abs() / truth < 0.15,
            "est {est}, truth {truth}"
        );
    }

    /// An ambiguous functional eVA: after closing x it scans the tail through
    /// two redundant states, so each mapping has multiple accepting runs.
    #[test]
    fn ambiguous_eva_detected_and_still_countable() {
        let alphabet = ab();
        // States: 0 scan, 1 in-x, 2 tail-a, 3 tail-b (2 and 3 both loop on
        // everything — redundant nondeterminism).
        let mut eva = Eva::new(4, 1, alphabet.clone());
        eva.set_initial(0);
        eva.set_final(2);
        eva.set_final(3);
        for a in alphabet.symbols() {
            eva.add_letter(0, a, 0);
            eva.add_letter(2, a, 2);
            eva.add_letter(2, a, 3);
            eva.add_letter(3, a, 3);
            eva.add_letter(3, a, 2);
        }
        eva.add_letter(1, 0, 1);
        eva.add_varset(0, &[Marker::Open(0)], 1);
        eva.add_varset(1, &[Marker::Close(0)], 2);
        eva.add_varset(1, &[Marker::Close(0)], 3);
        assert!(eva.is_functional());
        let inst = SpannerInstance::new(eva, "aab");
        assert!(!inst.is_unambiguous());
        assert!(inst.count_exact().is_err());
        // Distinct mappings are still counted once by the oracle and listed
        // once by polynomial-delay enumeration: blocks [0,1), [0,2), [1,2).
        assert_eq!(inst.count_oracle().to_u64(), Some(3));
        assert_eq!(inst.mappings().count(), 3);
    }

    #[test]
    #[should_panic(expected = "functional")]
    fn non_functional_eva_rejected() {
        let mut eva = Eva::new(2, 1, ab());
        eva.set_initial(0);
        eva.set_final(1);
        eva.add_varset(0, &[Marker::Open(0)], 1);
        SpannerInstance::new(eva, "a");
    }
}
