//! Spans, mappings, and markers.

use std::fmt;

/// A span `[start, end)` of a document, 0-based (the paper writes `[i, j⟩`
/// 1-based; we keep Rust slice conventions). `start == end` is the empty span
/// at a position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Inclusive start position.
    pub start: usize,
    /// Exclusive end position.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "span [{start}, {end}) is inverted");
        Span { start, end }
    }

    /// The spanned substring of a document.
    pub fn content<'d>(&self, document: &'d str) -> &'d str {
        &document[self.start..self.end]
    }

    /// Span length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True iff the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A mapping `µ`: one span per variable (the paper's mappings are total on
/// the variable set).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mapping {
    /// `spans[v]` is the span of variable `v`.
    pub spans: Vec<Span>,
}

impl Mapping {
    /// Renders as `x0 ↦ [1, 3), x1 ↦ [0, 0)`.
    pub fn display(&self) -> String {
        self.spans
            .iter()
            .enumerate()
            .map(|(v, s)| format!("x{v} ↦ {s}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A variable marker: `x⊢` (open) or `⊣x` (close).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Marker {
    /// `x⊢`: variable `.0` opens here.
    Open(usize),
    /// `⊣x`: variable `.0` closes here.
    Close(usize),
}

impl Marker {
    /// Bit index in a marker-set mask: open = `2v`, close = `2v + 1`.
    pub fn bit(&self) -> u32 {
        match *self {
            Marker::Open(v) => 2 * v as u32,
            Marker::Close(v) => 2 * v as u32 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(2, 5);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.content("abcdefg"), "cde");
        assert_eq!(s.to_string(), "[2, 5)");
        assert!(Span::new(3, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_span_panics() {
        Span::new(4, 2);
    }

    #[test]
    fn marker_bits() {
        assert_eq!(Marker::Open(0).bit(), 0);
        assert_eq!(Marker::Close(0).bit(), 1);
        assert_eq!(Marker::Open(3).bit(), 6);
        assert_eq!(Marker::Close(3).bit(), 7);
    }

    #[test]
    fn mapping_display() {
        let m = Mapping {
            spans: vec![Span::new(1, 3), Span::new(0, 0)],
        };
        assert_eq!(m.display(), "x0 ↦ [1, 3), x1 ↦ [0, 0)");
    }
}
